"""Property-based tests for the simulation substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Scheduler, SimClock

delays = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestSchedulerProperties:
    @settings(deadline=None)
    @given(st.lists(st.lists(delays, min_size=1, max_size=10),
                    min_size=1, max_size=6))
    def test_clock_ends_at_longest_process(self, process_delays):
        """With independent processes, final time = max process timeline."""
        sched = Scheduler()

        def proc(steps):
            for dt in steps:
                yield Delay(dt)

        for i, steps in enumerate(process_delays):
            sched.spawn(f"p{i}", proc(steps))
        sched.run()
        assert sched.clock.now == pytest.approx(
            max(sum(steps) for steps in process_delays))

    @settings(deadline=None)
    @given(st.lists(st.lists(delays, min_size=1, max_size=8),
                    min_size=1, max_size=5))
    def test_clock_monotone_during_run(self, process_delays):
        observed = []
        sched = Scheduler()

        def proc(steps):
            for dt in steps:
                yield Delay(dt)
                observed.append(sched.clock.now)

        for i, steps in enumerate(process_delays):
            sched.spawn(f"p{i}", proc(steps))
        sched.run()
        assert observed == sorted(observed)

    @settings(deadline=None)
    @given(st.lists(delays, min_size=1, max_size=20))
    def test_clock_advances_total(self, steps):
        clock = SimClock()
        for dt in steps:
            clock.advance(dt)
        assert clock.now == pytest.approx(sum(steps))

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_all_processes_complete(self, n):
        def gen(i):
            yield Delay(0.1 * i)

        sched = Scheduler()
        handles = [sched.spawn(f"p{i}", gen(i)) for i in range(n)]
        sched.run()
        assert all(h.done for h in handles)


class TestDeterminism:
    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_identical_seeds_identical_workloads(self, seed):
        from repro.workloads.generator import short_select_workload
        a = short_select_workload(20, orders_rows=50,
                                  lineitem_keys=[(1, 1), (2, 1)], seed=seed)
        b = short_select_workload(20, orders_rows=50,
                                  lineitem_keys=[(1, 1), (2, 1)], seed=seed)
        assert [s.sql for s in a] == [s.sql for s in b]
