"""Unit tests for the event bus and the transaction manager."""

import pytest

from repro.engine.catalog import ColumnDef, TableSchema
from repro.engine.events import EventBus
from repro.engine.locks import LockManager
from repro.engine.storage import Table
from repro.engine.txn import (IsolationLevel, Transaction,
                              TransactionManager, TxnState)
from repro.engine.types import SQLType
from repro.errors import TransactionError
from repro.sim import CostModel, SimClock


class TestEventBus:
    def test_subscribe_publish(self):
        bus = EventBus()
        seen = []
        bus.subscribe("query.commit", lambda e, p: seen.append((e, p["x"])))
        bus.publish("query.commit", {"x": 1})
        assert seen == [("query.commit", 1)]

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe("query.explode", lambda e, p: None)

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", lambda e, p: seen.append(e))
        bus.publish("query.start", {})
        bus.publish("txn.commit", {})
        assert seen == ["query.start", "txn.commit"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = lambda e, p: seen.append(e)  # noqa: E731
        bus.subscribe("query.commit", handler)
        bus.unsubscribe("query.commit", handler)
        bus.publish("query.commit", {})
        assert seen == []

    def test_handlers_called_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("query.commit", lambda e, p: order.append(1))
        bus.subscribe("query.commit", lambda e, p: order.append(2))
        bus.publish("query.commit", {})
        assert order == [1, 2]

    def test_has_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers("query.commit")
        bus.subscribe("query.commit", lambda e, p: None)
        assert bus.has_subscribers("query.commit")

    def test_published_count(self):
        bus = EventBus()
        bus.publish("query.start", {})
        bus.publish("query.start", {})
        assert bus.published_count == 2


@pytest.fixture
def txn_world():
    clock = SimClock()
    locks = LockManager(clock)
    txns = TransactionManager(clock, locks, CostModel())
    schema = TableSchema("t", [
        ColumnDef("id", SQLType.INTEGER, nullable=False),
        ColumnDef("v", SQLType.FLOAT),
    ], primary_key=["id"])
    table = Table(schema)
    return clock, locks, txns, {"t": table}


class TestTransactionManager:
    def test_begin_assigns_increasing_ids(self, txn_world):
        __, __, txns, __ = txn_world
        t1 = txns.begin(1)
        t2 = txns.begin(1)
        assert t2.txn_id > t1.txn_id
        assert t1.active and t2.active

    def test_commit_releases_locks(self, txn_world):
        __, locks, txns, __ = txn_world
        txn = txns.begin(1)
        locks.request(txn.txn_id, ("row", "t", 1), "X")
        cost = txns.commit(txn)
        assert cost > 0
        assert txn.state is TxnState.COMMITTED
        assert locks.locks_held(txn.txn_id) == set()

    def test_commit_twice_rejected(self, txn_world):
        __, __, txns, tables = txn_world
        txn = txns.begin(1)
        txns.commit(txn)
        with pytest.raises(TransactionError):
            txns.commit(txn)
        with pytest.raises(TransactionError):
            txns.rollback(txn, tables)

    def test_rollback_applies_undo_in_reverse(self, txn_world):
        __, __, txns, tables = txn_world
        table = tables["t"]
        txn = txns.begin(1)
        rowid = table.insert([1, 5.0])
        txn.record_undo("insert", "t", rowid)
        before = table.update(rowid, {1: 9.0})
        txn.record_undo("update", "t", rowid, before)
        txns.rollback(txn, tables)
        # update undone first, then insert undone
        assert table.row_count == 0
        assert txn.state is TxnState.ABORTED

    def test_record_undo_after_end_rejected(self, txn_world):
        __, __, txns, tables = txn_world
        txn = txns.begin(1)
        txns.commit(txn)
        with pytest.raises(TransactionError):
            txn.record_undo("insert", "t", 1)

    def test_read_committed_releases_statement_read_locks(self, txn_world):
        __, locks, txns, __ = txn_world
        txn = txns.begin(1)
        locks.request(txn.txn_id, ("row", "t", 1), "S")
        txn.statement_read_locks.append(("row", "t", 1))
        locks.request(txn.txn_id, ("row", "t", 2), "X")
        txns.release_statement_read_locks(txn)
        held = locks.locks_held(txn.txn_id)
        assert ("row", "t", 1) not in held
        assert ("row", "t", 2) in held

    def test_repeatable_read_keeps_read_locks(self, txn_world):
        __, locks, txns, __ = txn_world
        txn = txns.begin(1, isolation=IsolationLevel.REPEATABLE_READ)
        locks.request(txn.txn_id, ("row", "t", 1), "S")
        txn.statement_read_locks.append(("row", "t", 1))
        txns.release_statement_read_locks(txn)
        assert ("row", "t", 1) in locks.locks_held(txn.txn_id)
        assert txn.statement_read_locks == []

    def test_active_transactions_listing(self, txn_world):
        __, __, txns, __ = txn_world
        t1 = txns.begin(1)
        t2 = txns.begin(2)
        assert txns.active_transactions == [t1, t2]
        txns.commit(t1)
        assert txns.active_transactions == [t2]
        assert txns.get(t1.txn_id) is None
        assert txns.get(t2.txn_id) is t2
