"""Tests for LAT aggregation functions and block-based aging."""

import math

import pytest

from repro.core.aggregates import (AgingSpec, AgingState, aggregate_function,
                                   aggregate_names)
from repro.errors import LATError


def run_agg(name, values):
    func = aggregate_function(name)
    state = func.new_state()
    for value in values:
        state = func.update(state, value)
    return func.result(state)


class TestStandardFunctions:
    def test_count_skips_nulls(self):
        assert run_agg("COUNT", [1, None, 2]) == 2

    def test_sum(self):
        assert run_agg("SUM", [1, 2, 3]) == 6
        assert run_agg("SUM", []) is None
        assert run_agg("SUM", [None]) is None

    def test_avg(self):
        assert run_agg("AVG", [2, 4]) == 3
        assert run_agg("AVG", []) is None

    def test_min_max(self):
        assert run_agg("MIN", [3, 1, 2]) == 1
        assert run_agg("MAX", [3, 1, 2]) == 3
        assert run_agg("MIN", [None]) is None

    def test_stdev_matches_sample_formula(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        mean = sum(values) / len(values)
        expected = math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1))
        assert run_agg("STDEV", values) == pytest.approx(expected)

    def test_stdev_needs_two_values(self):
        assert run_agg("STDEV", [5.0]) is None

    def test_first_and_last(self):
        assert run_agg("FIRST", ["a", "b", "c"]) == "a"
        assert run_agg("LAST", ["a", "b", "c"]) == "c"
        assert run_agg("FIRST", []) is None

    def test_case_insensitive_lookup(self):
        assert aggregate_function("avg").name == "AVG"

    def test_unknown_function(self):
        with pytest.raises(LATError):
            aggregate_function("MEDIAN")

    def test_all_functions_listed(self):
        assert set(aggregate_names()) == {
            "COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV", "FIRST", "LAST",
        }

    def test_combine_merges_partial_states(self):
        for name in aggregate_names():
            func = aggregate_function(name)
            s1 = func.new_state()
            s2 = func.new_state()
            for v in (1.0, 2.0):
                s1 = func.update(s1, v)
            for v in (3.0, 4.0):
                s2 = func.update(s2, v)
            combined = func.combine(s1, s2)
            straight = func.new_state()
            for v in (1.0, 2.0, 3.0, 4.0):
                straight = func.update(straight, v)
            assert func.result(combined) == pytest.approx(
                func.result(straight))


class TestAgingSpec:
    def test_validation(self):
        with pytest.raises(LATError):
            AgingSpec(window=0, delta=1)
        with pytest.raises(LATError):
            AgingSpec(window=10, delta=20)

    def test_max_blocks_bound(self):
        spec = AgingSpec(window=10.0, delta=2.0)
        assert spec.max_blocks == 6  # ceil(t/Δ) + 1 ≤ 2t/Δ for Δ ≤ t


class TestAgingState:
    def test_values_age_out(self):
        state = AgingState(aggregate_function("SUM"),
                           AgingSpec(window=10.0, delta=1.0))
        state.update(5.0, now=0.0)
        state.update(7.0, now=8.0)
        assert state.result(now=9.0) == 12.0
        # at t=15 the first block (t=0) is outside the 10s window
        assert state.result(now=15.0) == 7.0
        # at t=25 everything is gone
        assert state.result(now=25.0) is None

    def test_avg_ages(self):
        state = AgingState(aggregate_function("AVG"),
                           AgingSpec(window=10.0, delta=1.0))
        state.update(10.0, now=0.0)
        state.update(20.0, now=9.0)
        assert state.result(now=9.5) == 15.0
        assert state.result(now=12.0) == 20.0

    def test_count_ages(self):
        state = AgingState(aggregate_function("COUNT"),
                           AgingSpec(window=5.0, delta=1.0))
        for t in range(10):
            state.update(1.0, now=float(t))
        # window [5, 10): values at t=5..9 (block at 4 expired when 4+1 <= 5)
        assert state.result(now=10.0) == 5

    def test_same_block_values_grouped(self):
        state = AgingState(aggregate_function("COUNT"),
                           AgingSpec(window=10.0, delta=5.0))
        state.update(1.0, now=1.0)
        state.update(1.0, now=2.0)
        state.update(1.0, now=3.0)
        assert state.block_count == 1

    def test_block_count_bounded(self):
        spec = AgingSpec(window=10.0, delta=1.0)
        state = AgingState(aggregate_function("SUM"), spec)
        for i in range(100):
            state.update(1.0, now=float(i) * 0.5)
        assert state.block_count <= spec.max_blocks

    def test_min_ages_out_old_minimum(self):
        state = AgingState(aggregate_function("MIN"),
                           AgingSpec(window=10.0, delta=1.0))
        state.update(1.0, now=0.0)   # the old minimum
        state.update(50.0, now=9.0)
        assert state.result(now=9.0) == 1.0
        assert state.result(now=15.0) == 50.0

    def test_first_ages_to_next_surviving_block(self):
        state = AgingState(aggregate_function("FIRST"),
                           AgingSpec(window=10.0, delta=1.0))
        state.update("old", now=0.0)
        state.update("new", now=9.0)
        assert state.result(now=9.0) == "old"
        assert state.result(now=15.0) == "new"
