"""Tests for the SQLCM rule engine: dispatch, scope, ordering, actions."""

import pytest

from repro import (CancelAction, InsertAction, LATDefinition, PersistAction,
                   ResetAction, Rule, SendMailAction, SetTimerAction,
                   SQLCM, Statement)
from repro.core.actions import CallbackAction, RunExternalAction
from repro.errors import LATError, RuleError, SchemaError


@pytest.fixture
def monitored(items_server):
    return items_server, SQLCM(items_server)


def _run(server, sql, params=None):
    session = server.create_session()
    result = session.execute(sql, params)
    server.close_session(session)
    return result


class TestRuleManagement:
    def test_add_and_remove(self, monitored):
        server, sqlcm = monitored
        rule = Rule(name="r1", event="Query.Commit",
                    actions=[SendMailAction("hi", "a@b")])
        sqlcm.add_rule(rule)
        assert "r1" in sqlcm.rules
        sqlcm.remove_rule("r1")
        assert "r1" not in sqlcm.rules
        with pytest.raises(RuleError):
            sqlcm.remove_rule("r1")

    def test_duplicate_name_rejected(self, monitored):
        __, sqlcm = monitored
        sqlcm.add_rule(Rule(name="r", event="Query.Commit",
                            actions=[SendMailAction("x", "a@b")]))
        with pytest.raises(RuleError):
            sqlcm.add_rule(Rule(name="R", event="Query.Commit",
                                actions=[SendMailAction("x", "a@b")]))

    def test_unknown_event_rejected(self, monitored):
        __, sqlcm = monitored
        with pytest.raises(SchemaError):
            sqlcm.add_rule(Rule(name="r", event="Query.Nonsense",
                                actions=[SendMailAction("x", "a@b")]))

    def test_rule_requires_actions(self):
        with pytest.raises(RuleError):
            Rule(name="r", event="Query.Commit", actions=[])

    def test_condition_bound_at_registration(self, monitored):
        __, sqlcm = monitored
        with pytest.raises(SchemaError):
            sqlcm.add_rule(Rule(
                name="bad", event="Query.Commit",
                condition="Query.NoSuchAttr > 1",
                actions=[SendMailAction("x", "a@b")],
            ))

    def test_insert_action_requires_existing_lat(self, monitored):
        __, sqlcm = monitored
        with pytest.raises(LATError):
            sqlcm.add_rule(Rule(name="r", event="Query.Commit",
                                actions=[InsertAction("NoSuchLat")]))

    def test_remove_rule_drops_health_record(self, monitored):
        """Regression: removing a rule used to leak its RuleHealth entry,
        so a re-added rule with the same name inherited the old error
        count (and could start life quarantined)."""
        server, sqlcm = monitored

        def boom(s, c):
            raise RuntimeError("nope")

        sqlcm.add_rule(Rule(name="flaky", event="Query.Commit",
                            actions=[CallbackAction(boom)]))
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert sqlcm.health.health_of("flaky").error_count > 0
        sqlcm.remove_rule("flaky")
        assert "flaky" not in [h.name for h in sqlcm.health.known()]
        # the reincarnated rule starts with a clean history
        sqlcm.add_rule(Rule(name="flaky", event="Query.Commit",
                            actions=[SendMailAction("ok", "a@b")]))
        assert sqlcm.health.health_of("flaky").error_count == 0
        assert not sqlcm.health.health_of("flaky").quarantined

    def test_signatures_needed_ignores_string_literals(self, monitored):
        """Regression: the flag used to substring-scan condition text, so
        a string literal or alias containing "signature" forced signature
        computation onto every query."""
        __, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="r", event="Query.Commit",
            condition="Query.Application = 'signature_service'",
            actions=[SendMailAction("x", "a@b")]))
        assert not sqlcm.signatures_needed
        # a real bound reference still flips it
        sqlcm.add_rule(Rule(
            name="r2", event="Query.Commit",
            condition="Query.Number_of_instances > 1",
            actions=[SendMailAction("x", "a@b")]))
        assert sqlcm.signatures_needed

    def test_signatures_needed_cache_invalidation(self, monitored):
        """The flag is memoized off the hot path; registration changes
        must drop the cache in both directions."""
        __, sqlcm = monitored
        assert not sqlcm.signatures_needed
        sqlcm.create_lat(LATDefinition(
            name="Sig_LAT", monitored_class="Query",
            grouping=["Query.Logical_Signature AS Sig"],
            aggregations=["COUNT(Query.ID) AS N"]))
        assert sqlcm.signatures_needed
        sqlcm.drop_lat("Sig_LAT")
        assert not sqlcm.signatures_needed
        sqlcm.enable_signatures(True)
        assert sqlcm.signatures_needed
        sqlcm.enable_signatures(False)
        assert not sqlcm.signatures_needed

    def test_enable_disable(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="toggle", event="Query.Commit",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        sqlcm.enable_rule("toggle", False)
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert len(fired) == 1
        sqlcm.enable_rule("toggle", True)
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert len(fired) == 2


class TestEventScope:
    def test_rule_fires_on_matching_event_only(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="on_commit", event="Query.Commit",
            actions=[CallbackAction(
                lambda s, c: fired.append(c["query"].get("Query_Type")))],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        _run(server, "UPDATE items SET qty = 2 WHERE id = 1")
        assert fired == ["SELECT", "UPDATE"]

    def test_condition_filters_firing(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="updates_only", event="Query.Commit",
            condition="Query.Query_Type = 'UPDATE'",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        _run(server, "UPDATE items SET qty = 3 WHERE id = 1")
        assert len(fired) == 1

    def test_rules_evaluated_in_registration_order(self, monitored):
        server, sqlcm = monitored
        order = []
        for name in ("first", "second", "third"):
            sqlcm.add_rule(Rule(
                name=name, event="Query.Commit",
                actions=[CallbackAction(
                    lambda s, c, n=name: order.append(n))],
            ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert order == ["first", "second", "third"]

    def test_actions_execute_in_sequence(self, monitored):
        server, sqlcm = monitored
        order = []
        sqlcm.add_rule(Rule(
            name="multi", event="Query.Commit",
            actions=[
                CallbackAction(lambda s, c: order.append("a")),
                CallbackAction(lambda s, c: order.append("b")),
            ],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert order == ["a", "b"]

    def test_timer_event_iterates_active_queries(self, monitored):
        server, sqlcm = monitored
        seen = []
        sqlcm.add_rule(Rule(
            name="watch", event="Timer.Alert",
            condition="Query.Duration >= 0",
            actions=[CallbackAction(
                lambda s, c: seen.append(c["query"].get("ID")),
                required=("Query",))],
        ))
        sqlcm.set_timer("t", interval=0.5, repeats=3)
        # a long-ish blocked query would be observable; here, with no
        # active queries at alert time, the rule evaluates zero times
        server.run(until=2.0)
        assert seen == []
        assert sqlcm.rules["watch"].evaluation_count == 0

    def test_transaction_event_context(self, monitored):
        server, sqlcm = monitored
        stats = []
        sqlcm.add_rule(Rule(
            name="txn_watch", event="Transaction.Commit",
            actions=[CallbackAction(
                lambda s, c: stats.append(
                    c["transaction"].get("Statement_Count")))],
        ))
        session = server.create_session()
        session.execute("BEGIN")
        session.execute("SELECT id FROM items WHERE id = 1")
        session.execute("UPDATE items SET qty = 9 WHERE id = 1")
        session.execute("COMMIT")
        assert stats == [2]


class TestLATIntegration:
    def test_insert_then_condition_on_lat(self, monitored):
        server, sqlcm = monitored
        sqlcm.create_lat(LATDefinition(
            name="AppLat",
            grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("AppLat")]))
        hits = []
        sqlcm.add_rule(Rule(
            name="frequent", event="Query.Commit",
            condition="AppLat.N >= 3",
            actions=[CallbackAction(lambda s, c: hits.append(1))],
        ))
        for __ in range(4):
            _run(server, "SELECT id FROM items WHERE id = 1")
        # rule sees LAT state after the tracking insert: fires on 3rd & 4th
        assert len(hits) == 2

    def test_rule_order_matters_for_lat_reads(self, monitored):
        server, sqlcm = monitored
        sqlcm.create_lat(LATDefinition(
            name="Lat2",
            grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        hits = []
        # reader registered BEFORE the tracker: sees state before insert
        sqlcm.add_rule(Rule(
            name="reader", event="Query.Commit",
            condition="Lat2.N >= 1",
            actions=[CallbackAction(lambda s, c: hits.append(1))],
        ))
        sqlcm.add_rule(Rule(name="tracker", event="Query.Commit",
                            actions=[InsertAction("Lat2")]))
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert hits == []  # no row yet at evaluation time (∃ → false)
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert len(hits) == 1

    def test_reset_action(self, monitored):
        server, sqlcm = monitored
        sqlcm.create_lat(LATDefinition(
            name="Lat3",
            grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("Lat3")]))
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert len(sqlcm.lat("Lat3")) == 1
        sqlcm.lat("Lat3").reset()
        assert len(sqlcm.lat("Lat3")) == 0

    def test_drop_lat_referenced_by_rule_rejected(self, monitored):
        server, sqlcm = monitored
        sqlcm.create_lat(LATDefinition(
            name="Lat4",
            grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(
            name="uses_lat", event="Query.Commit",
            condition="Lat4.N > 0",
            actions=[SendMailAction("x", "a@b")],
        ))
        with pytest.raises(LATError):
            sqlcm.drop_lat("Lat4")

    def test_eviction_raises_deferred_event(self, monitored):
        server, sqlcm = monitored
        sqlcm.create_lat(LATDefinition(
            name="Tiny",
            grouping=["Query.ID AS Qid"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_rows=1,
        ))
        sqlcm.add_rule(Rule(name="fill", event="Query.Commit",
                            actions=[InsertAction("Tiny")]))
        evicted = []
        sqlcm.add_rule(Rule(
            name="on_evict", event="Evicted.Evict",
            actions=[CallbackAction(
                lambda s, c: evicted.append(c["evicted"].get("Qid")))],
        ))
        for __ in range(3):
            _run(server, "SELECT id FROM items WHERE id = 1")
        assert len(evicted) == 2


class TestSideEffectActions:
    def test_sendmail_substitution(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="mail", event="Query.Commit",
            actions=[SendMailAction(
                "type={Query.Query_Type} user={Query.User}", "dba@corp")],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        mail = sqlcm.outbox[-1]
        assert mail.address == "dba@corp"
        assert "type=SELECT" in mail.body

    def test_run_external_journal_and_handler(self, monitored):
        server, sqlcm = monitored
        launched = []
        sqlcm.external_handler = launched.append
        sqlcm.add_rule(Rule(
            name="ext", event="Query.Commit",
            actions=[RunExternalAction("analyze.exe {Query.ID}")],
        ))
        result = _run(server, "SELECT id FROM items WHERE id = 1")
        assert sqlcm.command_journal[-1].command == \
            f"analyze.exe {result.query.query_id}"
        assert launched == [f"analyze.exe {result.query.query_id}"]

    def test_set_timer_action(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="arm", event="Query.Commit",
            actions=[SetTimerAction("later", interval=1.0, repeats=2)],
        ))
        fired = []
        sqlcm.add_rule(Rule(
            name="on_alert", event="Timer.Alert",
            actions=[CallbackAction(
                lambda s, c: fired.append(c["timer"].get("Name")))],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        server.run(until=5.0)
        assert fired == ["later", "later"]

    def test_cancel_action_on_commit_is_too_late(self, monitored):
        """Cancelling at commit has no effect: the query already finished."""
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="futile", event="Query.Commit",
            actions=[CancelAction(target="Query")],
        ))
        result = _run(server, "SELECT id FROM items WHERE id = 1")
        assert result.ok

    def test_cancel_action_on_start_kills_query(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="kill_updates", event="Query.Start",
            actions=[CancelAction(target="Query")],
        ))
        result = _run(server, "SELECT id FROM items WHERE id = 1")
        assert result.error is not None
        assert "cancel" in result.error.lower()

    def test_monitoring_cost_charged(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="r", event="Query.Commit",
            condition="Query.Duration >= 0",
            actions=[CallbackAction(lambda s, c: None)],
        ))
        before = server.clock.now
        baseline = _run(server, "SELECT id FROM items WHERE id = 1")
        assert sqlcm.rules["r"].fire_count == 1
        assert server.clock.now > before
