"""Tests for the interactive shell (repro.cli)."""

import io

import pytest

from repro.cli import Shell


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(out=out), out


def output_of(shell_pair) -> str:
    __, out = shell_pair
    return out.getvalue()


class TestSQLExecution:
    def test_create_insert_select_roundtrip(self, shell):
        sh, __ = shell
        sh.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY, b FLOAT);"
            "INSERT INTO t VALUES (1, 2.5), (2, 3.5);"
            "SELECT a, b FROM t ORDER BY a;"
        )
        text = output_of(shell)
        assert "(2 rows affected)" in text
        assert "1 | 2.5" in text
        assert "(2 rows)" in text

    def test_error_reported_not_raised(self, shell):
        sh, __ = shell
        sh.execute_line("SELECT broken FROM nowhere")
        assert "error:" in output_of(shell)

    def test_syntax_error_reported(self, shell):
        sh, __ = shell
        sh.execute_line("SELEKT 1")
        assert "error:" in output_of(shell)

    def test_blank_lines_and_comments_skipped(self, shell):
        sh, __ = shell
        sh.execute_line("")
        sh.execute_line("-- just a comment")
        assert output_of(shell) == ""


class TestMetaCommands:
    def test_help(self, shell):
        sh, __ = shell
        sh.execute_line(".help")
        assert ".monitor topk" in output_of(shell)

    def test_clock(self, shell):
        sh, __ = shell
        sh.execute_line(".clock")
        assert "virtual time" in output_of(shell)

    def test_lats_empty_then_populated(self, shell):
        sh, __ = shell
        sh.execute_line(".lats")
        assert "(no LATs)" in output_of(shell)
        sh.execute_line(".monitor topk 3")
        sh.execute_line(".lats")
        assert "TopK_LAT" in output_of(shell)

    def test_monitor_topk_end_to_end(self, shell):
        sh, __ = shell
        sh.run_script(
            ".monitor topk 2\n"
            "CREATE TABLE t (a INT PRIMARY KEY, b FLOAT);\n"
            "INSERT INTO t VALUES (1, 1.0);\n"
            "SELECT a FROM t;\n"
            "SELECT b FROM t;\n"
            ".lat TopK_LAT\n"
        )
        text = output_of(shell)
        assert "Duration=" in text

    def test_rules_listing(self, shell):
        sh, __ = shell
        sh.execute_line(".monitor outliers")
        sh.execute_line(".rules")
        text = output_of(shell)
        assert "ON Query.Commit" in text

    def test_queries_history(self, shell):
        sh, __ = shell
        sh.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY);"
            "INSERT INTO t VALUES (1);"
        )
        sh.execute_line(".queries")
        assert "INSERT INTO t" in output_of(shell)

    def test_unknown_meta(self, shell):
        sh, __ = shell
        sh.execute_line(".frobnicate")
        assert "unknown meta-command" in output_of(shell)

    def test_unknown_lat(self, shell):
        sh, __ = shell
        sh.execute_line(".lat Ghost")
        assert "error:" in output_of(shell)

    def test_outbox_empty(self, shell):
        sh, __ = shell
        sh.execute_line(".outbox")
        assert "(empty)" in output_of(shell)


class TestScriptParsing:
    def test_multiline_statement_joined(self, shell):
        sh, __ = shell
        sh.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY,\n"
            "                b FLOAT);\n"
            "INSERT INTO t\n"
            "VALUES (1, 2.0);\n"
            "SELECT COUNT(*) FROM t;"
        )
        assert "(1 rows)" in output_of(shell)

    def test_meta_flushes_pending_sql(self, shell):
        sh, __ = shell
        sh.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY);\n"
            "INSERT INTO t VALUES (7)\n"
            ".queries\n"
        )
        assert "INSERT INTO t" in output_of(shell)
