"""Fuzz-style property tests: random conditions and queries never break
the invariants (boolean results, consistent plans, no crashes)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.condition import bind_condition
from repro.core.objects import MonitoredObject
from repro.core.schema import SCHEMA
from repro.errors import ReproError

# ---------------------------------------------------------------------------
# condition-language fuzz
# ---------------------------------------------------------------------------

_NUMERIC_ATTRS = ["Query.Duration", "Query.Estimated_Cost",
                  "Query.Times_Blocked", "Query.Time_Blocked"]

_terms = st.one_of(
    st.sampled_from(_NUMERIC_ATTRS),
    st.integers(min_value=0, max_value=1000).map(str),
    st.floats(min_value=0, max_value=100, allow_nan=False).map(
        lambda v: f"{v:.3f}"),
)

_conditions = st.recursive(
    st.tuples(_terms, st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
              _terms).map(lambda t: f"{t[0]} {t[1]} {t[2]}"),
    lambda inner: st.one_of(
        st.tuples(inner, st.sampled_from(["AND", "OR"]), inner).map(
            lambda t: f"({t[0]}) {t[1]} ({t[2]})"),
        inner.map(lambda c: f"NOT ({c})"),
    ),
    max_leaves=6,
)


def _query_obj(**attrs):
    extra = {k.lower(): v for k, v in attrs.items()}
    return MonitoredObject(SCHEMA.monitored_class("Query"), {}, extra)


class TestConditionFuzz:
    @settings(deadline=None, max_examples=200)
    @given(_conditions,
           st.floats(min_value=0, max_value=100, allow_nan=False),
           st.floats(min_value=0, max_value=100, allow_nan=False),
           st.integers(min_value=0, max_value=10))
    def test_random_conditions_evaluate_to_bool(self, text, duration,
                                                cost, blocked):
        compiled = bind_condition(text, SCHEMA, set(), lambda n: set())
        context = {"query": _query_obj(
            Duration=duration, Estimated_Cost=cost,
            Times_Blocked=blocked, Time_Blocked=0.0,
        )}
        result = compiled.evaluate(context, {})
        assert isinstance(result, bool)

    @settings(deadline=None, max_examples=100)
    @given(_conditions,
           st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_double_negation_stable(self, text, duration):
        """NOT NOT C ≡ C for conditions over non-NULL values."""
        context = {"query": _query_obj(
            Duration=duration, Estimated_Cost=1.0,
            Times_Blocked=0, Time_Blocked=0.0,
        )}
        plain = bind_condition(text, SCHEMA, set(), lambda n: set())
        double = bind_condition(f"NOT (NOT ({text}))", SCHEMA, set(),
                                lambda n: set())
        assert plain.evaluate(context, {}) == double.evaluate(context, {})

    @settings(deadline=None, max_examples=100)
    @given(_conditions)
    def test_atomic_count_positive(self, text):
        compiled = bind_condition(text, SCHEMA, set(), lambda n: set())
        assert compiled.atomic_count >= 1


# ---------------------------------------------------------------------------
# query-pipeline fuzz
# ---------------------------------------------------------------------------

_columns = st.sampled_from(["id", "name", "price", "qty", "segment"])
_numeric_columns = st.sampled_from(["id", "price", "qty"])

_predicates = st.one_of(
    st.tuples(_numeric_columns,
              st.sampled_from(["=", "<", ">", "<=", ">=", "!="]),
              st.integers(min_value=-5, max_value=600)).map(
        lambda t: f"{t[0]} {t[1]} {t[2]}"),
    st.tuples(_numeric_columns, st.integers(0, 50), st.integers(0, 600)).map(
        lambda t: f"{t[0]} BETWEEN {min(t[1], t[2])} AND {max(t[1], t[2])}"),
    _columns.map(lambda c: f"{c} IS NOT NULL"),
)


@st.composite
def _select_queries(draw):
    cols = draw(st.lists(_columns, min_size=1, max_size=3, unique=True))
    parts = [f"SELECT {', '.join(cols)} FROM items"]
    predicates = draw(st.lists(_predicates, max_size=3))
    if predicates:
        parts.append("WHERE " + " AND ".join(predicates))
    if draw(st.booleans()):
        direction = "DESC" if draw(st.booleans()) else "ASC"
        parts.append(f"ORDER BY {draw(_columns)} {direction}")
    limit = draw(st.one_of(st.none(), st.integers(0, 10)))
    if limit is not None:
        parts.append(f"LIMIT {limit}")
    return " ".join(parts)


class TestQueryFuzz:
    @settings(deadline=None, max_examples=120,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(sql=_select_queries())
    def test_random_selects_execute(self, items_server, sql):
        """Any generated SELECT parses, plans, and runs; results are rows
        of the right width; plan-cached re-execution matches."""
        session = items_server.create_session()
        first = session.execute(sql)
        second = session.execute(sql)  # via the plan cache
        assert first.rows == second.rows
        n_cols = sql.split(" FROM ")[0].count(",") + 1
        for row in first.rows:
            assert len(row) == n_cols

    @settings(deadline=None, max_examples=120,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(sql=_select_queries())
    def test_signatures_stable_across_executions(self, items_server, sql):
        from repro import SQLCM
        sqlcm = getattr(items_server, "_fuzz_sqlcm", None)
        if sqlcm is None:
            sqlcm = SQLCM(items_server)
            sqlcm.enable_signatures(True)
            items_server._fuzz_sqlcm = sqlcm
        session = items_server.create_session()
        a = session.execute(sql).query.logical_signature
        b = session.execute(sql).query.logical_signature
        assert a == b
        assert a is not None
