"""Concurrency integration tests: blocking, deadlocks, cancellation."""

import pytest

from repro import DatabaseServer, ServerConfig, Statement


@pytest.fixture
def bank():
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    server.execute_ddl(
        "CREATE TABLE acct (id INT NOT NULL PRIMARY KEY, bal FLOAT)"
    )
    loader = server.create_session()
    loader.execute("INSERT INTO acct VALUES (1, 100.0), (2, 200.0), "
                   "(3, 300.0)")
    return server


class TestBlocking:
    def test_reader_waits_for_writer(self, bank):
        writer = bank.create_session(user="w")
        reader = bank.create_session(user="r")
        writer.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1", think_time=0.1),
        ])
        bank.run()
        # reader saw the committed value, after waiting
        assert reader.results[-1].rows == [(0.0,)]
        qctx = reader.results[-1].query
        assert qctx.times_blocked == 1
        assert qctx.time_blocked > 0.5

    def test_writer_waits_for_writer(self, bank):
        w1 = bank.create_session()
        w2 = bank.create_session()
        w1.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = bal + 1 WHERE id = 1",
            Statement("COMMIT", think_time=0.5),
        ])
        w2.submit_script([
            Statement("UPDATE acct SET bal = bal * 2 WHERE id = 1",
                      think_time=0.1),
        ])
        bank.run()
        check = bank.create_session()
        # serialized: (100 + 1) * 2
        assert check.execute(
            "SELECT bal FROM acct WHERE id = 1").rows == [(202.0,)]

    def test_readers_do_not_block_readers(self, bank):
        r1 = bank.create_session()
        r2 = bank.create_session()
        r1.submit_script(["SELECT bal FROM acct WHERE id = 1"])
        r2.submit_script(["SELECT bal FROM acct WHERE id = 1"])
        bank.run()
        assert r1.results[-1].query.times_blocked == 0
        assert r2.results[-1].query.times_blocked == 0

    def test_different_rows_do_not_conflict(self, bank):
        w1 = bank.create_session()
        w2 = bank.create_session()
        w1.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 1 WHERE id = 1",
            Statement("COMMIT", think_time=0.5),
        ])
        w2.submit_script([
            Statement("UPDATE acct SET bal = 2 WHERE id = 2",
                      think_time=0.05),
        ])
        bank.run()
        assert w2.results[-1].query.times_blocked == 0

    def test_blocked_event_carries_blocker(self, bank):
        events = []
        bank.events.subscribe(
            "query.blocked",
            lambda e, p: events.append(
                (p["query"].user, [b.user for b in p["blockers"]])),
        )
        writer = bank.create_session(user="writer")
        reader = bank.create_session(user="reader")
        writer.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=0.3),
        ])
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1", think_time=0.1),
        ])
        bank.run()
        assert events == [("reader", ["writer"])]

    def test_block_released_reports_wait_time(self, bank):
        waits = []
        bank.events.subscribe(
            "query.block_released",
            lambda e, p: waits.append(p["wait_time"]))
        writer = bank.create_session()
        reader = bank.create_session()
        writer.submit_script([
            "BEGIN", "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=0.4),
        ])
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1", think_time=0.1),
        ])
        bank.run()
        assert len(waits) == 1
        assert waits[0] == pytest.approx(0.3, abs=0.05)

    def test_blocker_gets_blocking_counters(self, bank):
        writer = bank.create_session()
        reader = bank.create_session()
        writer.submit_script([
            "BEGIN", "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=0.4),
        ])
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1", think_time=0.1),
        ])
        bank.run()
        update_q = writer.results[1].query
        assert update_q.queries_blocked == 1
        assert update_q.time_blocking_others > 0.2


class TestDeadlock:
    def test_deadlock_aborts_one_victim(self, bank):
        s1 = bank.create_session()
        s2 = bank.create_session()
        s1.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = bal + 1 WHERE id = 1",
            Statement("UPDATE acct SET bal = bal + 1 WHERE id = 2",
                      think_time=0.2),
            "COMMIT",
        ])
        s2.submit_script([
            "BEGIN",
            Statement("UPDATE acct SET bal = bal + 10 WHERE id = 2",
                      think_time=0.1),
            Statement("UPDATE acct SET bal = bal + 10 WHERE id = 1",
                      think_time=0.2),
            "COMMIT",
        ])
        bank.run()
        errors = [r.error for r in s1.results + s2.results if r.error]
        assert any("deadlock" in e for e in errors)
        assert bank.locks.deadlocks_detected >= 1
        # exactly one transaction's effects survive
        check = bank.create_session()
        rows = check.execute(
            "SELECT bal FROM acct WHERE id IN (1, 2) ORDER BY id").rows
        assert rows in ([(101.0,), (201.0,)], [(110.0,), (210.0,)])

    def test_victim_session_continues_after_deadlock(self, bank):
        s1 = bank.create_session()
        s2 = bank.create_session()
        s1.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 1 WHERE id = 1",
            Statement("UPDATE acct SET bal = 1 WHERE id = 2",
                      think_time=0.2),
            "COMMIT",
            "SELECT bal FROM acct WHERE id = 3",
        ])
        s2.submit_script([
            "BEGIN",
            Statement("UPDATE acct SET bal = 2 WHERE id = 2",
                      think_time=0.1),
            Statement("UPDATE acct SET bal = 2 WHERE id = 1",
                      think_time=0.2),
            "COMMIT",
            "SELECT bal FROM acct WHERE id = 3",
        ])
        bank.run()
        # both sessions ran their final select regardless of the deadlock
        assert s1.results[-1].rows == [(300.0,)]
        assert s2.results[-1].rows == [(300.0,)]


class TestCancellation:
    def test_cancel_running_query(self, bank):
        session = bank.create_session()
        cancelled = []
        bank.events.subscribe("query.start", lambda e, p: (
            bank.cancel_query(p["query"]),
            cancelled.append(p["query"].query_id),
        ))
        result = session.execute("SELECT COUNT(*) FROM acct")
        assert result.error is not None
        assert "cancel" in result.error.lower()
        assert cancelled

    def test_cancel_blocked_query_releases_it(self, bank):
        writer = bank.create_session()
        reader = bank.create_session()
        writer.submit_script([
            "BEGIN", "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=5.0),
        ])

        def cancel_when_blocked(event, payload):
            bank.cancel_query(payload["query"])

        bank.events.subscribe("query.blocked", cancel_when_blocked)
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1", think_time=0.1),
        ])
        bank.run()
        result = reader.results[-1]
        assert result.error is not None
        # the reader was released well before the writer's 5s hold
        assert bank.clock.now < 6.0

    def test_cancel_finished_query_is_noop(self, bank):
        session = bank.create_session()
        result = session.execute("SELECT bal FROM acct WHERE id = 1")
        assert bank.cancel_query(result.query) is False
