"""Differential testing: the full engine pipeline vs a naive evaluator.

Hypothesis generates structured query descriptions; each is rendered to SQL
and run through the real pipeline (parser → optimizer → executor, with plan
cache and locking), and *also* evaluated by a deliberately naive reference
interpreter working directly on the raw rows. Results must agree exactly.
This catches whole classes of bugs — access-path selection, predicate
pushdown, NULL handling, sort order — that example-based tests miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DatabaseServer, ServerConfig

# the reference table: fixed, with NULLs and duplicate values on purpose
_ROWS = [
    # (id, grp, val, tag)
    (1, 10, 5.0, "red"),
    (2, 10, 3.0, "blue"),
    (3, 20, None, "red"),
    (4, 20, 8.0, None),
    (5, 30, 3.0, "green"),
    (6, None, 1.0, "red"),
    (7, 30, None, None),
    (8, 10, 9.0, "blue"),
]
_COLUMNS = ["id", "grp", "val", "tag"]
_NUMERIC = ["id", "grp", "val"]


@dataclass(frozen=True)
class Predicate:
    column: str
    op: str  # '=', '!=', '<', '>', '<=', '>=', 'isnull', 'notnull'
    value: float | int | str | None = None

    def sql(self) -> str:
        if self.op == "isnull":
            return f"{self.column} IS NULL"
        if self.op == "notnull":
            return f"{self.column} IS NOT NULL"
        literal = (f"'{self.value}'" if isinstance(self.value, str)
                   else str(self.value))
        return f"{self.column} {self.op} {literal}"

    def matches(self, row: dict) -> bool:
        value = row[self.column]
        if self.op == "isnull":
            return value is None
        if self.op == "notnull":
            return value is not None
        if value is None:
            return False  # SQL: NULL comparisons are unknown
        if isinstance(value, str) != isinstance(self.value, str):
            return False  # generated predicates are type-consistent anyway
        return {
            "=": value == self.value,
            "!=": value != self.value,
            "<": value < self.value,
            ">": value > self.value,
            "<=": value <= self.value,
            ">=": value >= self.value,
        }[self.op]


@dataclass(frozen=True)
class QuerySpec:
    select: tuple[str, ...]
    predicates: tuple[Predicate, ...]
    order_by: tuple[tuple[str, bool], ...]  # (column, descending)
    limit: int | None

    def sql(self) -> str:
        parts = [f"SELECT {', '.join(self.select)} FROM ref"]
        if self.predicates:
            parts.append(
                "WHERE " + " AND ".join(p.sql() for p in self.predicates))
        if self.order_by:
            keys = ", ".join(
                f"{col} {'DESC' if desc else 'ASC'}"
                for col, desc in self.order_by
            )
            parts.append(f"ORDER BY {keys}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def reference_result(self) -> list[tuple]:
        """Naive evaluation over the raw rows."""
        rows = [dict(zip(_COLUMNS, r)) for r in _ROWS]
        rows = [r for r in rows
                if all(p.matches(r) for p in self.predicates)]
        for col, desc in reversed(self.order_by):
            rows.sort(
                key=lambda r: ((0, 0) if r[col] is None else (1, r[col])),
                reverse=desc,
            )
        if self.limit is not None:
            rows = rows[:self.limit]
        return [tuple(r[c] for c in self.select) for r in rows]


_predicates = st.one_of(
    st.tuples(st.sampled_from(_NUMERIC),
              st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
              st.integers(min_value=-1, max_value=35)).map(
        lambda t: Predicate(t[0], t[1], t[2])),
    st.tuples(st.just("tag"), st.sampled_from(["=", "!="]),
              st.sampled_from(["red", "blue", "green", "absent"])).map(
        lambda t: Predicate(t[0], t[1], t[2])),
    st.tuples(st.sampled_from(_COLUMNS),
              st.sampled_from(["isnull", "notnull"])).map(
        lambda t: Predicate(t[0], t[1])),
)

_specs = st.builds(
    QuerySpec,
    select=st.lists(st.sampled_from(_COLUMNS), min_size=1, max_size=4,
                    unique=True).map(tuple),
    predicates=st.lists(_predicates, max_size=3).map(tuple),
    # always order by the unique id last so expected order is total
    order_by=st.lists(
        st.tuples(st.sampled_from(_COLUMNS), st.booleans()),
        max_size=2,
    ).map(lambda keys: tuple(keys) + (("id", False),)),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
)


@pytest.fixture(scope="module")
def ref_server():
    server = DatabaseServer(ServerConfig())
    server.execute_ddl(
        "CREATE TABLE ref (id INT NOT NULL PRIMARY KEY, grp INT, "
        "val FLOAT, tag VARCHAR(10))"
    )
    server.bulk_load("ref", [list(r) for r in _ROWS])
    return server


class TestDifferential:
    @settings(deadline=None, max_examples=250,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(spec=_specs)
    def test_engine_matches_reference(self, ref_server, spec):
        session = ref_server.create_session()
        engine_rows = session.execute(spec.sql()).rows
        assert engine_rows == spec.reference_result(), spec.sql()

    @settings(deadline=None, max_examples=100,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(spec=_specs)
    def test_count_star_matches_reference(self, ref_server, spec):
        where = (" WHERE " + " AND ".join(p.sql() for p in spec.predicates)
                 if spec.predicates else "")
        session = ref_server.create_session()
        engine_count = session.execute(
            f"SELECT COUNT(*) FROM ref{where}").rows[0][0]
        rows = [dict(zip(_COLUMNS, r)) for r in _ROWS]
        expected = sum(1 for r in rows
                       if all(p.matches(r) for p in spec.predicates))
        assert engine_count == expected

    @settings(deadline=None, max_examples=100,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(spec=_specs, column=st.sampled_from(_NUMERIC))
    def test_aggregates_match_reference(self, ref_server, spec, column):
        where = (" WHERE " + " AND ".join(p.sql() for p in spec.predicates)
                 if spec.predicates else "")
        session = ref_server.create_session()
        engine = session.execute(
            f"SELECT SUM({column}), MIN({column}), MAX({column}) "
            f"FROM ref{where}").rows[0]
        rows = [dict(zip(_COLUMNS, r)) for r in _ROWS]
        values = [r[column] for r in rows
                  if all(p.matches(r) for p in spec.predicates)
                  and r[column] is not None]
        expected = ((sum(values) if values else None),
                    (min(values) if values else None),
                    (max(values) if values else None))
        assert engine == pytest.approx(expected) if values else \
            engine == (None, None, None)
