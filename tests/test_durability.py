"""Crash-safe durability: checkpoints, the journal, and the kill matrix.

Every recovery test follows the same protocol: build a live monitor with
real subsystems attached (LATs, rules, a stream query, incidents, the
governor, timers), attach a :class:`DurabilityManager`, run workload,
*crash* at an injected fault site, and rebuild from disk.
:class:`DigestTap` records the state digest at every journal group
commit; :func:`verify_recovery` asserts the rebuilt monitor's digest
equals the digest at the last commit marker the disk saw — a crash may
lose the uncommitted tail, nothing more.
"""

from __future__ import annotations

import zlib

import pytest

from repro import (DatabaseServer, InsertAction, LATDefinition, Rule,
                   ServerConfig, ShardedSQLCM, SQLCM)
from repro.core.actions import CallbackAction
from repro.core.durability import (DigestTap, DurabilityManager,
                                   read_journal, verify_recovery)
from repro.core.resilience import FaultInjected, FaultInjector
from repro.errors import DurabilityError

#: every crash site the durability layer exposes, in both failure modes
CRASH_SITES = [
    ("durability.append", "exception"),
    ("durability.append", "partial"),
    ("durability.checkpoint", "exception"),
    ("durability.checkpoint", "partial"),
]

#: journal shapes at the moment of the crash
JOURNAL_STATES = ["empty", "long", "torn"]


def build_monitor():
    """A monitor exercising every journaled subsystem."""
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    server.execute_ddl(
        "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, "
        "name VARCHAR(30), price FLOAT)")
    loader = server.create_session()
    loader.execute(
        "INSERT INTO items (id, name, price) VALUES (1, 'a', 1.5), "
        "(2, 'b', 2.0)")
    server.close_session(loader)
    sqlcm = SQLCM(server)
    sqlcm.set_fault_injector(FaultInjector(seed=7))
    sqlcm.create_lat(LATDefinition(
        name="Q_LAT", monitored_class="Query",
        grouping=["Query.User AS U"],
        aggregations=["COUNT(Query.ID) AS N",
                      "AVG(Query.Duration) AS D"]))
    sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                        actions=[InsertAction("Q_LAT")]))
    sqlcm.stream_engine().register(
        "STREAM s1 FROM Query.Commit GROUP BY Query.User AS U "
        "WINDOW TUMBLING(2) AGG COUNT(*) AS N "
        "ANOMALY DEVIATION(N, 2, 2)")
    sqlcm.incident_manager()
    sqlcm.enable_governor()
    sqlcm.set_timer("t1", 5.0, 3)
    return server, sqlcm


def work(server, n):
    """Run n one-query sessions (each commit journals a record group)."""
    for i in range(n):
        session = server.create_session(user=f"u{i % 3}")
        session.execute("SELECT id FROM items WHERE id = 1")
        server.close_session(session)


def attach(target, directory):
    manager = DurabilityManager(target, str(directory))
    manager.attach()
    return manager, DigestTap(manager)


def tear_tail(manager):
    """Simulate a torn OS write: half a line lands at the journal tail."""
    with open(manager.journal.path, "a", encoding="utf-8") as handle:
        handle.write("c0ffee00 (999, 'counts', Tru")


def crash(manager, sqlcm, server, site, mode):
    """Kill the monitor at ``site``; nothing after this reaches the disk."""
    sqlcm.faults.fail_next(site, mode=mode)
    if site == "durability.checkpoint":
        with pytest.raises(FaultInjected):
            manager.checkpoint()
    else:
        work(server, 4)  # the first journal append dies
        assert manager.journal.dead


# ---------------------------------------------------------------------------
# journal file format
# ---------------------------------------------------------------------------

def _line(seq, kind, commit, time, data):
    payload = repr((seq, kind, commit, time, data))
    return f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"


class TestJournalFormat:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.wal")) == ([], 0)

    def test_torn_tail_and_uncommitted_group_discarded(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_text(
            _line(1, "counts", True, 1.0, {"events": 1})
            + _line(2, "lat_insert", False, 2.0, {"lat": "L"})
            + _line(3, "counts", True, 3.0, {"events": 2})[:20],
            encoding="utf-8")
        records, discarded = read_journal(str(path))
        assert [r.seq for r in records] == [1]
        assert discarded == 2  # the uncommitted record + the torn line

    def test_bit_flip_stops_the_read(self, tmp_path):
        good = _line(1, "counts", True, 1.0, {"events": 1})
        bad = _line(2, "counts", True, 2.0, {"events": 2})
        bad = bad.replace("counts", "c0unts", 1)  # payload no longer matches CRC
        after = _line(3, "counts", True, 3.0, {"events": 3})
        path = tmp_path / "j.wal"
        path.write_text(good + bad + after, encoding="utf-8")
        records, discarded = read_journal(str(path))
        assert [r.seq for r in records] == [1]
        assert discarded == 1

    def test_group_commit_semantics(self, tmp_path, server):
        """Mid-dispatch records stay uncommitted until the counts marker."""
        sqlcm = SQLCM(server)
        sqlcm.create_lat(LATDefinition(
            name="L", grouping=["Query.User AS U"],
            aggregations=["COUNT(Query.ID) AS N"]))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("L")]))
        manager, __ = attach(sqlcm, tmp_path)
        session = server.create_session(user="u1")
        session.execute("SELECT 1")
        server.close_session(session)
        manager.detach()
        records, discarded = read_journal(manager.journal.path)
        assert discarded == 0
        groups = [r.kind for r in records if r.commit]
        assert groups, "expected at least one commit marker"
        assert all(r.kind == "counts" for r in records if r.commit)
        assert any(r.kind == "lat_insert" and not r.commit for r in records)


# ---------------------------------------------------------------------------
# atomic checkpoints
# ---------------------------------------------------------------------------

class TestAtomicCheckpoint:
    def test_exception_fault_publishes_nothing(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)  # generation 1
        work(server, 8)
        sqlcm.faults.fail_next("durability.checkpoint")
        with pytest.raises(FaultInjected):
            manager.checkpoint()
        assert not list(tmp_path.glob("checkpoint-0002.ckpt"))
        assert not list(tmp_path.glob("*.tmp"))  # temp never leaks
        report = verify_recovery(str(tmp_path), tap)
        assert report.generation == 1
        assert report.records_replayed > 0

    def test_partial_fault_falls_back_a_generation(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)  # generation 1
        work(server, 8)
        manager.checkpoint()                    # generation 2 (good)
        work(server, 6)
        sqlcm.faults.fail_next("durability.checkpoint", mode="partial")
        with pytest.raises(FaultInjected):
            manager.checkpoint()                # generation 3 lands torn
        names = {p.name for p in tmp_path.glob("checkpoint-*.ckpt")}
        assert "checkpoint-0003.ckpt" in names  # the torn file is visible
        report = verify_recovery(str(tmp_path), tap)
        assert report.generation == 2           # CRC-rejected gen 3
        assert report.records_replayed > 0      # gen 2's journal replayed

    def test_generations_pruned_to_last_two(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, __ = attach(sqlcm, tmp_path)   # generation 1
        for __ in range(4):
            work(server, 3)
            manager.checkpoint()                # generations 2..5
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*.ckpt"))
        assert names == ["checkpoint-0004.ckpt", "checkpoint-0005.ckpt"]

    def test_checkpoint_rotates_the_journal(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, __ = attach(sqlcm, tmp_path)
        work(server, 5)
        old_path = manager.journal.path
        manager.checkpoint()
        assert manager.journal.path != old_path
        assert manager.journal.records_written == 0 or \
            manager.journal.path.endswith("journal-0002.wal")


# ---------------------------------------------------------------------------
# clean recovery
# ---------------------------------------------------------------------------

class TestCleanRecovery:
    def test_clean_kill_restores_exact_digest(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)
        work(server, 20)
        server.clock.advance(10.0)
        work(server, 5)
        report = verify_recovery(str(tmp_path), tap)
        assert report.records_discarded == 0
        report.sqlcm.server.clock.advance_to(server.clock.now)
        assert report.sqlcm.state_digest() == sqlcm.state_digest()

    def test_recover_twice_is_bit_stable(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)
        work(server, 12)
        first = verify_recovery(str(tmp_path), tap)
        second = verify_recovery(str(tmp_path), tap)
        assert first.sqlcm.state_digest() == second.sqlcm.state_digest()
        assert first.records_replayed == second.records_replayed

    def test_detached_journal_recovers_without_discards(self, tmp_path):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)
        work(server, 10)
        manager.detach()  # clean shutdown: journal closed mid-generation
        report = verify_recovery(str(tmp_path), tap)
        assert report.records_discarded == 0
        assert report.records_replayed > 0


# ---------------------------------------------------------------------------
# the kill matrix: every crash site x every journal shape
# ---------------------------------------------------------------------------

class TestCrashMatrix:
    @pytest.mark.parametrize("state", JOURNAL_STATES)
    @pytest.mark.parametrize("site,mode", CRASH_SITES)
    def test_serial_recovery_digest(self, tmp_path, site, mode, state):
        server, sqlcm = build_monitor()
        manager, tap = attach(sqlcm, tmp_path)
        if state != "empty":
            work(server, 20)
            server.clock.advance(10.0)
            work(server, 5)
        crash(manager, sqlcm, server, site, mode)
        if state == "torn":
            tear_tail(manager)
        report = verify_recovery(str(tmp_path), tap)
        if state != "empty":
            assert report.records_replayed > 0
        if state == "torn" or (site == "durability.append"
                               and mode == "partial"):
            assert report.records_discarded >= 1


class TestShardedCrashMatrix:
    def _facade(self, n_shards=3):
        server = DatabaseServer(ServerConfig(track_completed_queries=True))
        server.execute_ddl("CREATE TABLE items (id INT PRIMARY KEY, v INT)")
        facade = ShardedSQLCM(server, n_shards=n_shards)
        facade.create_lat(LATDefinition(
            name="Q_LAT", monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=["AVG(Query.Duration) AS D",
                          "COUNT(Query.ID) AS N"]))
        facade.add_rule(Rule(name="track", event="Query.Commit",
                             actions=[InsertAction("Q_LAT")]))
        facade.shards[0].sqlcm.set_fault_injector(FaultInjector(seed=7))
        return server, facade

    def _drive(self, server, statements, base=0):
        session = server.create_session(user="u1")
        script = []
        for i in range(base, base + statements):
            script.append(f"INSERT INTO items VALUES ({i}, {i * 2})")
            script.append(f"SELECT v FROM items WHERE id = {i}")
        proc = session.submit_script(script)
        server.scheduler.run_until_done(proc)

    def test_clean_sharded_recovery(self, tmp_path):
        server, facade = self._facade()
        manager, tap = attach(facade, tmp_path)
        self._drive(server, 25)
        report = verify_recovery(str(tmp_path), tap)
        assert report.records_replayed > 0
        assert report.records_discarded == 0

    @pytest.mark.parametrize("state", JOURNAL_STATES)
    @pytest.mark.parametrize("site,mode", CRASH_SITES)
    def test_sharded_recovery_digest(self, tmp_path, site, mode, state):
        server, facade = self._facade()
        manager, tap = attach(facade, tmp_path)
        control = facade.shards[0].sqlcm
        if state != "empty":
            self._drive(server, 15)
        control.faults.fail_next(site, mode=mode)
        if site == "durability.checkpoint":
            with pytest.raises(FaultInjected):
                manager.checkpoint()
        else:
            self._drive(server, 5, base=100)
            assert manager.journal.dead
        if state == "torn":
            tear_tail(manager)
        report = verify_recovery(str(tmp_path), tap)
        if state != "empty":
            assert report.records_replayed > 0


# ---------------------------------------------------------------------------
# what cannot round-trip: pure-callback rules need the setup hook
# ---------------------------------------------------------------------------

class TestCallbackRules:
    @staticmethod
    def _cb_rule(sink):
        return Rule(name="cb", event="Query.Commit",
                    actions=[CallbackAction(
                        lambda monitor, context: sink.append(1))])

    def test_recovery_without_setup_detects_the_gap(self, tmp_path):
        server, sqlcm = build_monitor()
        fired: list[int] = []
        sqlcm.add_rule(self._cb_rule(fired))
        manager, tap = attach(sqlcm, tmp_path)
        work(server, 6)
        assert fired
        with pytest.raises(DurabilityError):
            verify_recovery(str(tmp_path), tap)

    def test_setup_hook_restores_digest_equality(self, tmp_path):
        server, sqlcm = build_monitor()
        fired: list[int] = []
        sqlcm.add_rule(self._cb_rule(fired))
        manager, tap = attach(sqlcm, tmp_path)
        work(server, 6)
        report = verify_recovery(
            str(tmp_path), tap,
            setup=lambda monitor: monitor.add_rule(self._cb_rule(fired)))
        assert "cb" not in report.placeholder_rules

    def test_skipped_rules_are_reported(self, tmp_path):
        server, sqlcm = build_monitor()
        sqlcm.add_rule(self._cb_rule([]))
        manager, tap = attach(sqlcm, tmp_path)
        report = DurabilityManager.recover(str(tmp_path))
        assert "cb" in report.placeholder_rules
