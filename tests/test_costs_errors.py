"""Tests for the cost model helpers and the exception hierarchy."""

import pytest

from repro import CostModel
from repro.errors import (ActionError, BindError, CatalogError,
                          ConditionSyntaxError, ConstraintError,
                          DeadlockError, EngineError, ExecutionError,
                          LATError, PlanError, QueryCancelledError,
                          ReproError, RuleError, SchemaError, SQLCMError,
                          SQLSyntaxError, TransactionError,
                          TypeMismatchError)


class TestCostModel:
    def test_defaults_positive(self):
        costs = CostModel()
        for name, value in vars(costs).items():
            if isinstance(value, (int, float)):
                assert value >= 0, name

    def test_sort_cost_scales_n_log_n(self):
        costs = CostModel()
        small = costs.sort_cost(100)
        large = costs.sort_cost(10_000)
        assert large > 100 * small / 2  # superlinear
        assert costs.sort_cost(0) == costs.sort_cost(1)

    def test_fetch_cost_interpolates(self):
        costs = CostModel()
        hot = costs.fetch_cost(1.0)
        cold = costs.fetch_cost(0.0)
        mid = costs.fetch_cost(0.5)
        assert hot == costs.row_fetch_cached
        assert cold == costs.row_fetch_io / costs.rows_per_page
        assert hot < mid < cold

    def test_fetch_cost_clamps_ratio(self):
        costs = CostModel()
        assert costs.fetch_cost(2.0) == costs.fetch_cost(1.0)
        assert costs.fetch_cost(-1.0) == costs.fetch_cost(0.0)

    def test_monitoring_cheaper_than_logging(self):
        """The calibration that drives Figure 3: one rule + LAT insert is
        orders of magnitude below one synchronous log write."""
        costs = CostModel()
        per_rule = (costs.rule_eval_base + costs.action_dispatch
                    + costs.lat_insert + 3 * costs.lat_latch)
        assert per_rule * 1000 < costs.log_write_row_sync


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        EngineError, SQLSyntaxError, BindError, PlanError, ExecutionError,
        TypeMismatchError, ConstraintError, CatalogError, TransactionError,
        DeadlockError, QueryCancelledError, SQLCMError, SchemaError,
        RuleError, ConditionSyntaxError, ActionError, LATError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_engine_vs_sqlcm_families(self):
        assert issubclass(DeadlockError, EngineError)
        assert issubclass(LATError, SQLCMError)
        assert not issubclass(LATError, EngineError)

    def test_syntax_errors_carry_position(self):
        err = SQLSyntaxError("bad", position=7)
        assert err.position == 7
        err2 = ConditionSyntaxError("bad", position=3)
        assert err2.position == 3

    def test_cancel_is_execution_error(self):
        assert issubclass(QueryCancelledError, ExecutionError)

    def test_deadlock_is_transaction_error(self):
        assert issubclass(DeadlockError, TransactionError)

    def test_one_handler_catches_everything(self, items_server):
        session = items_server.create_session()
        with pytest.raises(ReproError):
            session.execute("SELEKT broken")
        with pytest.raises(ReproError):
            session.execute("SELECT ghost FROM items")
