"""Tests for the four signature kinds (paper Section 4.2)."""

import pytest

from repro import DatabaseServer, SQLCM
from repro.core.signatures import (SignatureRegistry, digest,
                                   linearize_expr, linearize_logical,
                                   sequence_signature)
from repro.engine.catalog import ProcedureDef
from repro.engine.planner.logical import build_logical_plan
from repro.engine.sqlparse.parser import parse_statement


@pytest.fixture
def sig_server(items_server):
    sqlcm = SQLCM(items_server)
    sqlcm.enable_signatures(True)
    return items_server, sqlcm


def _logical_sig(server, sql):
    logical = build_logical_plan(parse_statement(sql), server.catalog)
    return digest(linearize_logical(logical))


class TestExprLinearization:
    def test_constants_become_wildcards(self):
        a = parse_statement("SELECT a FROM t WHERE a = 5").where
        b = parse_statement("SELECT a FROM t WHERE a = 99").where
        assert linearize_expr(a) == linearize_expr(b)

    def test_different_columns_differ(self):
        a = parse_statement("SELECT a FROM t WHERE a = 5").where
        b = parse_statement("SELECT a FROM t WHERE b = 5").where
        assert linearize_expr(a) != linearize_expr(b)

    def test_parameters_stay_symbolic(self):
        a = parse_statement("SELECT a FROM t WHERE a = @x").where
        b = parse_statement("SELECT a FROM t WHERE a = @y").where
        assert linearize_expr(a) != linearize_expr(b)
        c = parse_statement("SELECT a FROM t WHERE a = @x").where
        assert linearize_expr(a) == linearize_expr(c)

    def test_conjunct_order_normalized(self):
        a = parse_statement(
            "SELECT a FROM t WHERE a = 1 AND b = 2").where
        b = parse_statement(
            "SELECT a FROM t WHERE b = 7 AND a = 3").where
        assert linearize_expr(a) == linearize_expr(b)

    def test_commutative_operands_normalized(self):
        a = parse_statement("SELECT a FROM t WHERE a = b").where
        b = parse_statement("SELECT a FROM t WHERE b = a").where
        assert linearize_expr(a) == linearize_expr(b)

    def test_non_commutative_preserved(self):
        a = parse_statement("SELECT a FROM t WHERE a < b").where
        b = parse_statement("SELECT a FROM t WHERE b < a").where
        assert linearize_expr(a) != linearize_expr(b)


class TestLogicalSignature:
    def test_same_template_same_signature(self, items_server):
        a = _logical_sig(items_server,
                         "SELECT name FROM items WHERE id = 1")
        b = _logical_sig(items_server,
                         "SELECT name FROM items WHERE id = 42")
        assert a == b

    def test_different_shape_differs(self, items_server):
        a = _logical_sig(items_server,
                         "SELECT name FROM items WHERE id = 1")
        b = _logical_sig(items_server,
                         "SELECT name, price FROM items WHERE id = 1")
        assert a != b

    def test_formatting_insensitive(self, items_server):
        a = _logical_sig(items_server,
                         "SELECT name FROM items WHERE id = 1")
        b = _logical_sig(items_server,
                         "select   name from ITEMS where ID=7")
        assert a == b

    def test_predicate_order_insensitive(self, items_server):
        a = _logical_sig(
            items_server,
            "SELECT name FROM items WHERE id = 1 AND price > 2")
        b = _logical_sig(
            items_server,
            "SELECT name FROM items WHERE price > 5 AND id = 9")
        assert a == b


class TestSignaturesThroughEngine:
    def test_signature_available_after_commit(self, sig_server):
        server, __ = sig_server
        session = server.create_session()
        result = session.execute("SELECT name FROM items WHERE id = 1")
        assert result.query.logical_signature is not None
        assert result.query.physical_signature is not None

    def test_signature_cached_with_plan(self, sig_server):
        server, __ = sig_server
        session = server.create_session()
        first = session.execute("SELECT name FROM items WHERE id = 1")
        entry = server.plan_cache.get("SELECT name FROM items WHERE id = 1")
        assert entry.logical_signature == first.query.logical_signature
        second = session.execute("SELECT name FROM items WHERE id = 1")
        assert second.query.logical_signature == \
            first.query.logical_signature

    def test_physical_differs_when_plan_differs(self, sig_server):
        server, __ = sig_server
        session = server.create_session()
        seek = session.execute("SELECT name FROM items WHERE id = 1")
        scan = session.execute("SELECT name FROM items WHERE qty = 10")
        assert seek.query.physical_signature != scan.query.physical_signature

    def test_no_signatures_when_not_needed(self, items_server):
        SQLCM(items_server)  # no rules/LATs referencing signatures
        session = items_server.create_session()
        result = session.execute("SELECT name FROM items WHERE id = 1")
        assert result.query.logical_signature is None

    def test_instance_counting(self, sig_server):
        server, sqlcm = sig_server
        session = server.create_session()
        result = None
        for i in range(5):
            result = session.execute(f"SELECT name FROM items WHERE id = {i}")
        # 5 instances share the template signature... but distinct texts
        # compile separately; all share one logical signature
        assert sqlcm.instance_count(result.query.logical_signature) == 5


class TestTransactionSignatures:
    def test_same_statement_sequence_same_signature(self, sig_server):
        server, sqlcm = sig_server
        captured = []
        server.events.subscribe(
            "txn.commit",
            lambda e, p: captured.append(
                sqlcm.transaction_signature(p["statements"],
                                            physical=False)),
        )
        session = server.create_session()
        for __ in range(2):
            session.execute("BEGIN")
            session.execute("SELECT name FROM items WHERE id = 1")
            session.execute("UPDATE items SET qty = 5 WHERE id = 2")
            session.execute("COMMIT")
        assert captured[0] == captured[1]

    def test_different_code_paths_differ(self, sig_server):
        server, sqlcm = sig_server
        server.create_procedure(ProcedureDef(
            name="twopath",
            params=("mode",),
            body=[],
        ))
        captured = []
        server.events.subscribe(
            "txn.commit",
            lambda e, p: captured.append(
                sqlcm.transaction_signature_ids(p["statements"])),
        )
        session = server.create_session()
        session.execute("BEGIN")
        session.execute("SELECT name FROM items WHERE id = 1")
        session.execute("COMMIT")
        session.execute("BEGIN")
        session.execute("SELECT qty FROM items WHERE id = 1")
        session.execute("COMMIT")
        assert captured[0] != captured[1]

    def test_sequence_signature_order_sensitive(self):
        assert sequence_signature([1, 2]) != sequence_signature([2, 1])
        assert sequence_signature([1, 2]) == sequence_signature([1, 2])


class TestSignatureRegistry:
    def test_stable_ids(self):
        registry = SignatureRegistry()
        a = registry.id_of(b"aaa")
        b = registry.id_of(b"bbb")
        assert a != b
        assert registry.id_of(b"aaa") == a
        assert len(registry) == 2

    def test_none_maps_to_zero(self):
        assert SignatureRegistry().id_of(None) == 0
