"""Driver conformance suite: one contract, every backend.

Every :class:`~repro.drivers.base.ProbeDriver` implementation runs the
same tests — event ordering, signature stability, blocker pairs, the
snapshot catalog, accuracy ground truth — parametrized over the backend.
A new driver earns its place by passing this file unchanged.
"""

import pytest

from repro import SQLCM, DatabaseServer, LATDefinition, Rule, ServerConfig
from repro.core import InsertAction
from repro.drivers import (SNAPSHOT_CATALOG, DriverCapabilities,
                           InMemoryDriver, ProbeDriver, SQLiteDriver,
                           from_url)
from repro.errors import DriverError
from repro.monitoring import (PullMonitor, missed_top_k,
                              top_k_ground_truth)

DRIVERS = ("inmemory", "sqlite")

RECORDED = ("query.start", "query.commit", "query.rollback",
            "query.cancel", "query.blocked", "query.block_released",
            "txn.begin", "txn.commit", "txn.rollback")


class Recorder:
    """Flat, ordered capture of every lifecycle event on the host bus."""

    def __init__(self, bus):
        self.events = []
        for name in RECORDED:
            bus.subscribe(name, self._make(name))

    def _make(self, name):
        return lambda event, payload: self.events.append((name, payload))

    def names(self):
        return [name for name, __ in self.events]

    def of(self, name):
        return [payload for n, payload in self.events if n == name]


class Rig:
    """One backend under test: driver + wired SQLCM + event recorder."""

    def __init__(self, kind, driver):
        self.kind = kind
        self.driver = driver
        self.sqlcm = SQLCM(driver=driver)
        self.sqlcm.enable_signatures(True)
        self.recorder = Recorder(driver.host.events)


@pytest.fixture(params=DRIVERS)
def rig(request, tmp_path):
    if request.param == "inmemory":
        server = DatabaseServer(ServerConfig(track_completed_queries=True))
        server.execute_ddl(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v FLOAT)")
        driver = InMemoryDriver(server)
    else:
        driver = SQLiteDriver(str(tmp_path / "conformance.db"))
        driver.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
    built = Rig(request.param, driver)
    yield built
    driver.close()


def load_rows(rig, n=8):
    for i in range(1, n + 1):
        result = rig.driver.execute(f"INSERT INTO t VALUES ({i}, {float(i)})")
        assert result.ok, result.error


class TestEventContract:
    def test_start_precedes_exactly_one_terminal(self, rig):
        load_rows(rig, 3)
        rig.driver.execute("SELECT v FROM t WHERE id = 2")
        names = rig.recorder.names()
        starts = [p["query"].query_id for p in rig.recorder.of("query.start")]
        commits = [p["query"].query_id
                   for p in rig.recorder.of("query.commit")]
        assert starts == commits  # same queries, same order, all committed
        for qid in starts:
            first_start = next(i for i, (n, p) in
                               enumerate(rig.recorder.events)
                               if n == "query.start"
                               and p["query"].query_id == qid)
            terminals = [i for i, (n, p) in enumerate(rig.recorder.events)
                         if n in ("query.commit", "query.rollback",
                                  "query.cancel")
                         and p["query"].query_id == qid]
            assert len(terminals) == 1
            assert terminals[0] > first_start
        assert names.count("txn.commit") == 4  # one autocommit per stmt

    def test_autocommit_txn_commit_follows_query_commit(self, rig):
        load_rows(rig, 1)
        names = rig.recorder.names()
        assert names.index("query.commit") < names.index("txn.commit")
        payload = rig.recorder.of("txn.commit")[0]
        assert [q.query_id for q in payload["statements"]] == \
            [rig.recorder.of("query.commit")[0]["query"].query_id]

    def test_times_are_monotone_and_durations_positive(self, rig):
        load_rows(rig, 4)
        committed = [p["query"] for p in rig.recorder.of("query.commit")]
        starts = [q.start_time for q in committed]
        assert starts == sorted(starts)
        for qctx in committed:
            assert qctx.end_time >= qctx.start_time

    def test_error_reports_and_rolls_back(self, rig):
        load_rows(rig, 1)
        result = rig.driver.execute("INSERT INTO t VALUES (1, 9.0)")
        assert not result.ok
        assert result.error
        rollbacks = rig.recorder.of("query.rollback")
        assert len(rollbacks) == 1
        assert rollbacks[0]["query"].error

    def test_explicit_transaction_events(self, rig):
        conn = (rig.driver if rig.kind == "inmemory"
                else rig.driver._primary)
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (50, 5.0)")
        conn.execute("COMMIT")
        names = rig.recorder.names()
        assert "txn.begin" in names
        assert names.index("txn.begin") < names.index("query.start")
        assert names.index("query.commit") < names.index("txn.commit")
        payload = rig.recorder.of("txn.commit")[0]
        assert len(payload["statements"]) == 1


class TestSignatures:
    def test_same_template_same_logical_signature(self, rig):
        load_rows(rig, 4)
        rig.driver.execute("SELECT v FROM t WHERE id = 1")
        rig.driver.execute("SELECT v FROM t WHERE id = 3")
        selects = [q for q in rig.driver.completed_queries()
                   if q.query_type == "SELECT"]
        assert len(selects) == 2
        assert selects[0].logical_signature is not None
        assert selects[0].logical_signature == selects[1].logical_signature

    def test_different_templates_differ(self, rig):
        load_rows(rig, 4)
        rig.driver.execute("SELECT v FROM t WHERE id = 1")
        rig.driver.execute("SELECT v FROM t")
        lookup, scan = [q for q in rig.driver.completed_queries()
                        if q.query_type == "SELECT"]
        assert lookup.logical_signature != scan.logical_signature

    def test_plan_text_is_stable_per_template(self, rig):
        a = rig.driver.plan_text("SELECT v FROM t WHERE id = 1")
        b = rig.driver.plan_text("SELECT v FROM t WHERE id = 2")
        assert a and a == b

    def test_lat_groups_by_signature_across_backends(self, rig):
        rig.sqlcm.create_lat(LATDefinition(
            name="Sig_LAT",
            monitored_class="Query",
            grouping=["Query.Logical_Signature AS Sig"],
            aggregations=["AVG(Query.Duration) AS Avg_Duration"],
        ))
        rig.sqlcm.add_rule(Rule(
            name="track", event="Query.Commit",
            actions=[InsertAction("Sig_LAT")],
        ))
        load_rows(rig, 4)
        rig.driver.execute("SELECT v FROM t WHERE id = 1")
        rig.driver.execute("SELECT v FROM t WHERE id = 2")
        lat = rig.sqlcm.lat("Sig_LAT")
        sigs = {row["Sig"] for row in lat.rows()}
        # 4 identical INSERT templates fold into one group, both lookups
        # into another
        assert len(sigs) == 2


class TestBlocking:
    def blocking_scenario(self, rig):
        """Writer holds the lock; a second statement waits, then wins."""
        captured = {}
        if rig.kind == "inmemory":
            from repro import Statement
            server = rig.driver.host

            def on_blocked(event, payload):
                pairs, edges = rig.driver.blocking_pairs()
                captured["pairs"] = pairs
                captured["edges"] = edges
                captured["chains"] = rig.driver.snapshot("blocking_chains")
            server.events.subscribe("query.blocked", on_blocked)
            load_rows(rig, 2)
            writer = server.create_session(user="writer")
            waiter = server.create_session(user="waiter")
            writer.submit_script([
                "BEGIN", "UPDATE t SET v = 0 WHERE id = 1",
                Statement("COMMIT", think_time=0.5),
            ])
            waiter.submit_script([
                Statement("SELECT v FROM t WHERE id = 1", think_time=0.1),
            ])
            server.run()
        else:
            writer = rig.driver.connect(user="writer")
            waiter = rig.driver.connect(user="waiter")
            writer.execute("BEGIN")
            writer.execute("INSERT INTO t VALUES (900, 1.0)")

            def hook(driver, qctx, attempt):
                if attempt == 1:
                    pairs, edges = driver.blocking_pairs()
                    captured["pairs"] = pairs
                    captured["edges"] = edges
                    captured["chains"] = driver.snapshot("blocking_chains")
                elif attempt == 2:
                    writer.execute("COMMIT")
            rig.driver.busy_hook = hook
            result = waiter.execute("INSERT INTO t VALUES (901, 2.0)")
            assert result.ok, result.error
        return captured

    def test_blocked_then_released_events(self, rig):
        self.blocking_scenario(rig)
        names = rig.recorder.names()
        assert names.index("query.blocked") < \
            names.index("query.block_released")
        blocked = rig.recorder.of("query.blocked")[0]
        assert blocked["query"].user == "waiter"
        assert [b.user for b in blocked["blockers"]] == ["writer"]
        released = rig.recorder.of("query.block_released")[0]
        assert released["wait_time"] > 0
        assert released["blocker"].user == "writer"

    def test_blocking_pairs_shape_during_wait(self, rig):
        captured = self.blocking_scenario(rig)
        assert captured["edges"] == 1
        [(blocker, blocked, resource, wait)] = captured["pairs"]
        assert blocker.user == "writer"
        assert blocked.user == "waiter"
        assert wait >= 0
        [chain] = captured["chains"]
        assert set(chain) == {"blocker_query_id", "blocked_query_id",
                              "resource", "wait_seconds"}
        assert chain["blocker_query_id"] == blocker.query_id
        assert chain["blocked_query_id"] == blocked.query_id
        assert chain["resource"] == str(resource)


class TestSnapshotCatalog:
    def test_catalog_names(self, rig):
        assert rig.driver.snapshot_names() == SNAPSHOT_CATALOG
        assert rig.driver.capabilities().snapshots == SNAPSHOT_CATALOG

    def test_unknown_snapshot_refused(self, rig):
        with pytest.raises(DriverError, match="no snapshot"):
            rig.driver.snapshot("secret_dmv")

    def test_active_queries_snapshot_shape(self, rig):
        captured = {}

        def on_start(event, payload):
            captured["snap"] = rig.driver.snapshot("active_queries")
        rig.driver.host.events.subscribe("query.start", on_start)
        load_rows(rig, 1)
        [row] = captured["snap"]
        assert {"query_id", "session_id", "text", "state", "elapsed",
                "user", "application", "times_blocked",
                "time_blocked"} <= set(row)
        assert row["elapsed"] >= 0
        assert rig.driver.snapshot("active_queries") == []  # all done

    def test_memory_pressure_snapshot_shape(self, rig):
        load_rows(rig, 4)
        snap = rig.driver.snapshot("memory_pressure")
        assert isinstance(snap["pages_total"], (int, float))
        assert isinstance(snap["pages_free"], (int, float))
        assert snap["pages_total"] >= 0
        assert snap["pages_free"] >= 0


class TestAccuracyGroundTruth:
    def workload(self, rig):
        load_rows(rig, 8)
        for i in range(6):
            rig.driver.execute(f"SELECT v FROM t WHERE id = {i % 8 + 1}")
        if rig.kind == "inmemory":
            expensive = ("SELECT AVG(t1.v) FROM t t1 "
                         "JOIN t t2 ON t1.id = t2.id")
        else:
            expensive = ("SELECT avg(t1.v) FROM t t1, t t2, t t3 "
                         "WHERE t1.id < t2.id AND t2.id < t3.id")
        result = rig.driver.execute(expensive)
        assert result.ok, result.error
        return expensive

    def test_top_k_ground_truth_accepts_driver(self, rig):
        expensive = self.workload(rig)
        truth = top_k_ground_truth(rig.driver, 3)
        assert len(truth) == 3
        assert truth[0][1] == expensive
        assert truth[0][2] >= truth[1][2] >= truth[2][2]
        assert missed_top_k(truth, truth) == 0

    def test_driver_and_server_ground_truth_agree(self, rig):
        if rig.kind != "inmemory":
            pytest.skip("bare-server form only exists in-memory")
        self.workload(rig)
        assert top_k_ground_truth(rig.driver, 5) == \
            top_k_ground_truth(rig.driver.host, 5)


class TestIntrospection:
    def test_capabilities_and_describe(self, rig):
        caps = rig.driver.capabilities()
        assert isinstance(caps, DriverCapabilities)
        assert caps.events and caps.plan_signatures and caps.blocker_pairs
        assert caps.virtual_clock == (rig.kind == "inmemory")
        assert caps.in_engine_cost == (rig.kind == "inmemory")
        described = rig.driver.describe()
        assert described["driver"] == rig.driver.name
        assert set(described) == {"driver", "backend", "capabilities",
                                  "counters"}
        assert described["capabilities"] == caps.as_dict()

    def test_counters_advance(self, rig):
        before = dict(rig.driver.counters())
        load_rows(rig, 2)
        after = rig.driver.counters()
        assert after != before
        assert all(isinstance(v, (int, float)) for v in after.values())

    def test_now_is_monotone_under_work(self, rig):
        t0 = rig.driver.now()
        load_rows(rig, 2)
        assert rig.driver.now() > t0


class TestFromUrl:
    def test_memory_scheme(self):
        driver = from_url("memory:")
        assert isinstance(driver, InMemoryDriver)

    def test_sqlite_scheme(self, tmp_path):
        path = str(tmp_path / "real.db")
        with from_url(f"sqlite:{path}") as driver:
            assert isinstance(driver, SQLiteDriver)
            assert driver.path == path
            assert driver.execute("CREATE TABLE x (a INTEGER)").ok

    def test_sqlite_private_memory(self):
        with from_url("sqlite::memory:") as driver:
            assert driver.path == ":memory:"

    def test_sqlite_needs_a_path(self):
        with pytest.raises(DriverError, match="needs a path"):
            from_url("sqlite")

    def test_unknown_scheme_refused(self):
        with pytest.raises(DriverError, match="unknown driver scheme"):
            from_url("oracle:tns")


class TestInMemoryEquivalence:
    """The driver seam must not change the embedded monitor's behavior."""

    def run_monitored(self, wrap):
        server = DatabaseServer(ServerConfig(track_completed_queries=True))
        server.execute_ddl(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v FLOAT)")
        sqlcm = (SQLCM(driver=InMemoryDriver(server)) if wrap
                 else SQLCM(server))
        sqlcm.create_lat(LATDefinition(
            name="Duration_LAT",
            monitored_class="Query",
            grouping=["Query.Logical_Signature AS Sig"],
            aggregations=["AVG(Query.Duration) AS Avg_Duration"],
            ordering=["Avg_Duration DESC"],
            max_rows=50,
        ))
        sqlcm.add_rule(Rule(
            name="track", event="Query.Commit",
            actions=[InsertAction("Duration_LAT")],
        ))
        session = server.create_session(application="app")
        session.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {float(i)})" for i in range(1, 51)))
        for i in range(12):
            session.execute(f"SELECT v FROM t WHERE id = {i % 50 + 1}")
        session.execute("SELECT AVG(v) FROM t")
        return server.clock.now, sqlcm.state_digest()

    def test_digest_identical_with_and_without_driver_seam(self):
        assert self.run_monitored(wrap=False) == \
            self.run_monitored(wrap=True)


class TestPollingOverSqlite:
    def test_pull_monitor_rides_driver_ticks(self, tmp_path):
        with SQLiteDriver(str(tmp_path / "poll.db")) as driver:
            driver.execute("CREATE TABLE big (a INTEGER PRIMARY KEY, "
                           "b REAL)")
            driver.execute("INSERT INTO big VALUES " + ", ".join(
                f"({i}, {float(i)})" for i in range(1, 201)))
            monitor = PullMonitor(driver, interval=0.01)
            monitor.start()
            long_sql = ("SELECT sum(t1.b) FROM big t1, big t2 "
                        "WHERE t1.a < t2.a")
            result = driver.execute(long_sql)
            assert result.ok, result.error
            monitor.stop()
            assert monitor.poll_count > 0
            observed = {o.text for o in monitor.observed.values()}
            assert long_sql in observed

    def test_pull_misses_queries_shorter_than_the_interval(self, tmp_path):
        with SQLiteDriver(str(tmp_path / "miss.db")) as driver:
            driver.execute("CREATE TABLE small (a INTEGER PRIMARY KEY, "
                           "b REAL)")
            driver.execute("INSERT INTO small VALUES (1, 1.0)")
            monitor = PullMonitor(driver, interval=5.0)
            monitor.start()
            for __ in range(10):
                driver.execute("SELECT b FROM small WHERE a = 1")
            monitor.stop()
            # PK lookups finish inside one progress window: invisible
            assert monitor.observed == {}
