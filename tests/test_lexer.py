"""Tests for the SQL tokenizer."""

import pytest

from repro.engine.sqlparse.lexer import Token, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != "EOF"]


class TestTokenize:
    def test_keywords_uppercase(self):
        assert kinds("select from")[0] == ("KEYWORD", "SELECT")
        assert kinds("SeLeCt")[0] == ("KEYWORD", "SELECT")

    def test_identifiers_preserve_case(self):
        assert kinds("myTable")[0] == ("IDENT", "myTable")

    def test_integer_and_float(self):
        assert kinds("42")[0] == ("NUMBER", 42)
        assert kinds("4.5")[0] == ("NUMBER", 4.5)
        assert kinds("1e3")[0] == ("NUMBER", 1000.0)
        assert kinds("2.5e-2")[0] == ("NUMBER", 0.025)

    def test_string_literal(self):
        assert kinds("'hello'")[0] == ("STRING", "hello")

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'")[0] == ("STRING", "it's")

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_parameter(self):
        assert kinds("@name")[0] == ("PARAM", "name")

    def test_bare_at_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("@ x")

    def test_two_char_operators(self):
        ops = [v for k, v in kinds("<= >= <> !=") if k == "OP"]
        assert ops == ["<=", ">=", "<>", "!="]

    def test_comment_skipped(self):
        tokens = kinds("SELECT -- a comment\n 1")
        assert tokens == [("KEYWORD", "SELECT"), ("NUMBER", 1)]

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT #")

    def test_eof_token_present(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].kind == "EOF"

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_matches_helper(self):
        token = Token("KEYWORD", "SELECT", 0)
        assert token.matches("KEYWORD")
        assert token.matches("KEYWORD", "SELECT")
        assert not token.matches("KEYWORD", "FROM")
        assert not token.matches("IDENT")
