"""Tests for the sharded parallel dispatch tier (repro.shard).

Covers the replay-stable partitioner, event-trace recording, the LAT /
window / attribution merge boundary, and the determinism proof: a
sharded run — live or replayed, on any shard count, under either
executor — digest-equals the serial run on the same trace whenever the
monitored group keys align with the partition key.  The proof tests are
marked ``shard_determinism`` so CI can run them as a named tier-1 step.
"""

from __future__ import annotations

import itertools

import pytest

from repro import (LATDefinition, Rule, ServerConfig, SQLCM, DatabaseServer,
                   ShardedSQLCM, EventTrace, Partitioner,
                   SerialShardExecutor, ThreadShardExecutor)
from repro.core import InsertAction
from repro.core.lat import LAT
from repro.engine.query import QueryContext
from repro.errors import LATError
from repro.sim import SimClock
from repro.stream.windows import WindowState

_IDS = itertools.count(1)


def commit(server, t, duration, *, sig=None, user="u", app="tests",
           text="SELECT 1", qtype="SELECT", rows=0):
    """Advance the clock to ``t`` and publish one synthetic query.commit."""
    server.clock.advance_to(t)
    qctx = QueryContext(
        query_id=next(_IDS), session_id=1, text=text, user=user,
        application=app, query_type=qtype, start_time=t - duration,
        end_time=t, logical_signature=sig, rows_affected=rows)
    server.events.publish("query.commit", {"query": qctx})
    return qctx


def build_server():
    srv = DatabaseServer(ServerConfig(track_completed_queries=True))
    srv.execute_ddl("CREATE TABLE items (id INT PRIMARY KEY, v INT)")
    return srv


def qid_lat():
    return LATDefinition(
        name="Q_LAT", monitored_class="Query",
        grouping=["Query.ID AS Qid"],
        aggregations=["AVG(Query.Duration) AS D",
                      "COUNT(Query.ID) AS N"])


def track_rule():
    return Rule(name="track", event="Query.Commit",
                actions=[InsertAction("Q_LAT")])


def drive(server, statements=40):
    """Run a deterministic INSERT+SELECT mix to completion."""
    session = server.create_session(user="u1")
    script = []
    for i in range(statements):
        script.append(f"INSERT INTO items VALUES ({i}, {i * 2})")
        script.append(f"SELECT v FROM items WHERE id = {i}")
    proc = session.submit_script(script)
    server.scheduler.run_until_done(proc)


def serial_reference():
    """A serial monitored run; returns (digest, trace)."""
    server = build_server()
    monitor = SQLCM(server)
    monitor.create_lat(qid_lat())
    monitor.add_rule(track_rule())
    trace = EventTrace().attach(server)
    drive(server)
    trace.detach()
    return monitor.state_digest(), trace


def replay_facade(n_shards, **kwargs):
    facade = ShardedSQLCM(build_server(), n_shards=n_shards,
                          subscribe=False, **kwargs)
    facade.create_lat(qid_lat())
    facade.add_rule(track_rule())
    return facade


# ---------------------------------------------------------------------------
# partitioner
# ---------------------------------------------------------------------------

class TestPartitioner:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Partitioner(0)
        with pytest.raises(ValueError, match="query_key"):
            Partitioner(4, query_key="bogus")

    def test_single_shard_short_circuits(self):
        part = Partitioner(1)
        assert part.shard_of("query.commit", {}) == 0

    def test_query_lifecycle_colocates(self):
        part = Partitioner(8)
        qctx = QueryContext(query_id=77, session_id=1, text="SELECT 1",
                            user="u", application="a", query_type="SELECT")
        payload = {"query": qctx}
        shards = {part.shard_of(event, payload)
                  for event in ("query.start", "query.commit",
                                "query.cancel", "query.blocked")}
        assert len(shards) == 1

    def test_signature_mode_colocates_instances(self):
        part = Partitioner(8, query_key="signature")
        sig = b"\x01\x02"
        a = QueryContext(query_id=1, session_id=1, text="SELECT 1",
                         user="u", application="a", query_type="SELECT",
                         logical_signature=sig)
        b = QueryContext(query_id=2, session_id=9, text="SELECT 1",
                         user="v", application="b", query_type="SELECT",
                         logical_signature=sig)
        assert part.key_of("query.commit", {"query": a}) == \
            part.key_of("query.commit", {"query": b}) == "sig:" + sig.hex()
        # pre-compilation fallback: the statement text
        c = QueryContext(query_id=3, session_id=1, text="SELECT 2",
                         user="u", application="a", query_type="SELECT")
        assert part.key_of("query.start", {"query": c}) == "text:SELECT 2"

    def test_replay_stability(self):
        part_a, part_b = Partitioner(8), Partitioner(8)
        qctx = QueryContext(query_id=5, session_id=1, text="SELECT 1",
                            user="u", application="a", query_type="SELECT")
        payload = {"query": qctx}
        assert part_a.shard_of("query.commit", payload) == \
            part_b.shard_of("query.commit", payload)

    def test_query_mode_spreads_distinct_instances(self):
        part = Partitioner(4)
        shards = set()
        for qid in range(64):
            qctx = QueryContext(query_id=qid, session_id=1, text="SELECT 1",
                                user="u", application="a",
                                query_type="SELECT")
            shards.add(part.shard_of("query.commit", {"query": qctx}))
        assert shards == {0, 1, 2, 3}

    def test_non_query_keys(self):
        part = Partitioner(4)
        assert part.key_of("session.login_failed",
                           {"user": "eve"}) == "user:eve"
        assert part.key_of("sqlcm.stream_alert",
                           {"stream": "s", "group": ("a",)}) == \
            "stream:s:('a',)"
        assert part.key_of("lat.evict", {"lat": "L"}) == "lat:L"
        assert part.key_of("unknown.event", {}) == "unknown.event"


# ---------------------------------------------------------------------------
# event trace
# ---------------------------------------------------------------------------

class TestEventTrace:
    def test_records_engine_events_with_times(self):
        server = build_server()
        trace = EventTrace().attach(server)
        commit(server, 1.0, 0.1)
        commit(server, 2.0, 0.2)
        trace.detach()
        commit(server, 3.0, 0.3)  # after detach: not recorded
        assert len(trace) == 2
        assert [t for __, __, t in trace.events] == [1.0, 2.0]
        assert trace.end_time == 2.0

    def test_monitor_meta_events_excluded(self):
        server = build_server()
        trace = EventTrace().attach(server)
        server.events.publish("sqlcm.stream_alert", {"stream": "s"})
        trace.detach()
        assert len(trace) == 0

    def test_double_attach_rejected(self):
        server = build_server()
        trace = EventTrace().attach(server)
        with pytest.raises(RuntimeError, match="already attached"):
            trace.attach(server)
        trace.detach()


# ---------------------------------------------------------------------------
# merge boundary
# ---------------------------------------------------------------------------

def make_lat(clock, **overrides):
    spec = dict(
        name="M", monitored_class="Query",
        grouping=["Query.Application AS App"],
        aggregations=["COUNT(Query.ID) AS N",
                      "SUM(Query.Duration) AS S",
                      "AVG(Query.Duration) AS Avg_D",
                      "STDEV(Query.Duration) AS Sd",
                      "MIN(Query.Duration) AS Lo",
                      "MAX(Query.Duration) AS Hi"],
    )
    spec.update(overrides)
    return LAT(LATDefinition(**spec), clock)


class TestLATMerge:
    def test_partitioned_insert_merges_to_serial_state(self):
        clock = SimClock()
        serial = make_lat(clock)
        left, right = make_lat(clock), make_lat(clock)
        rows = [("a", i, 0.5 + 0.25 * i) for i in range(8)] + \
               [("b", 100 + i, 2.0 * i) for i in range(5)]
        for index, (app, qid, dur) in enumerate(rows):
            source = {"application": app, "id": qid, "duration": dur}
            serial.insert(source)
            (left if index % 2 else right).insert(source)
        left.merge_from(right)
        assert left.integrity_signature() == serial.integrity_signature()
        merged = {row["App"]: row for row in left.rows()}
        reference = {row["App"]: row for row in serial.rows()}
        for app, row in reference.items():
            for col in ("N", "S", "Avg_D", "Sd", "Lo", "Hi"):
                assert merged[app][col] == pytest.approx(row[col])

    def test_disjoint_groups_copy_over(self):
        clock = SimClock()
        left, right = make_lat(clock), make_lat(clock)
        left.insert({"application": "a", "id": 1, "duration": 1.0})
        right.insert({"application": "b", "id": 2, "duration": 2.0})
        left.merge_from(right)
        assert {row["App"] for row in left.rows()} == {"a", "b"}
        # the source LAT is untouched by the merge
        assert {row["App"] for row in right.rows()} == {"b"}

    def test_shape_mismatch_rejected(self):
        clock = SimClock()
        lat = make_lat(clock)
        other = LAT(LATDefinition(
            name="Other", monitored_class="Query",
            grouping=["Query.User AS U"],
            aggregations=["COUNT(Query.ID) AS C"]), clock)
        with pytest.raises(LATError, match="merge"):
            lat.merge_from(other)

    def test_size_limit_enforced_at_merge_boundary(self):
        clock = SimClock()
        def bounded():
            return make_lat(
                clock,
                aggregations=["COUNT(Query.ID) AS N"],
                ordering=["N DESC"], max_rows=3)
        left, right = bounded(), bounded()
        for i in range(3):
            left.insert({"application": f"l{i}", "id": i, "duration": 0.1})
            right.insert({"application": f"r{i}", "id": 10 + i,
                          "duration": 0.1})
        evicted = left.merge_from(right)
        assert len(left) == 3
        assert len(evicted) == 3

    def test_window_merge_equals_serial_panes(self):
        from repro.stream import parse_stream_query
        from repro.core.aggregates import aggregate_function
        spec = parse_stream_query(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(10) AGG COUNT(*) AS N, SUM(Query.Duration) AS S")
        funcs = [aggregate_function(a.func) for a in spec.aggs]
        serial = WindowState(spec.window, funcs)
        left = WindowState(spec.window, funcs)
        right = WindowState(spec.window, funcs)
        samples = [(("alice",), 1.0, 0.2), (("bob",), 2.0, 0.4),
                   (("alice",), 12.0, 0.6), (("alice",), 13.0, 0.8),
                   (("bob",), 14.0, 1.0)]
        for index, (key, t, dur) in enumerate(samples):
            serial.observe(key, [1, dur], t)
            (left if index % 2 else right).observe(key, [1, dur], t)
        left.merge_from(right)
        assert left.group_count == serial.group_count
        for key, panes in serial.groups.items():
            assert sorted(dict(panes).items()) == \
                sorted(dict(left.groups[key]).items())


# ---------------------------------------------------------------------------
# facade: control plane + governor wiring
# ---------------------------------------------------------------------------

class TestFacadeControlPlane:
    def test_registrations_fan_out(self):
        facade = replay_facade(4)
        for shard in facade.shards:
            assert shard.sqlcm.has_lat("Q_LAT")
            assert "track" in shard.sqlcm.rules
        # per-shard rules are clones: the template carries no statistics
        clones = {id(shard.sqlcm.rules["track"]) for shard in facade.shards}
        assert len(clones) == facade.n_shards
        facade.remove_rule("track")
        for shard in facade.shards:
            assert "track" not in shard.sqlcm.rules
            assert not shard.sqlcm._rules_by_event

    def test_shard_count_must_match_partitioner(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedSQLCM(build_server(), n_shards=4,
                         partitioner=Partitioner(2), subscribe=False)

    def test_live_governor_is_one_shared_ladder(self):
        server = build_server()
        facade = ShardedSQLCM(server, n_shards=4)
        governor = facade.enable_governor()
        assert server.governor is governor
        assert all(shard.sqlcm.governor is governor
                   for shard in facade.shards)
        assert governor.server is server
        facade.disable_governor()
        assert server.governor is None
        assert all(shard.sqlcm.governor is None for shard in facade.shards)

    def test_run_trace_requires_replay_mode(self):
        facade = ShardedSQLCM(build_server(), n_shards=2)
        with pytest.raises(RuntimeError, match="subscribe=False"):
            facade.run_trace([])


# ---------------------------------------------------------------------------
# determinism proof: sharded ≡ serial
# ---------------------------------------------------------------------------

@pytest.mark.shard_determinism
class TestDeterminismProof:
    def test_live_sharded_run_matches_serial_digest(self):
        serial_digest, __ = serial_reference()
        server = build_server()
        facade = ShardedSQLCM(server, n_shards=4)
        facade.create_lat(qid_lat())
        facade.add_rule(track_rule())
        drive(server)
        assert facade.state_digest() == serial_digest
        assert sum(s.events_routed for s in facade.shards) == \
            facade.events_routed
        # work actually spread: no shard saw everything
        assert max(s.events_routed for s in facade.shards) < \
            facade.events_routed

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("executor_cls",
                             [SerialShardExecutor, ThreadShardExecutor])
    def test_replay_matches_serial_digest(self, n_shards, executor_cls):
        serial_digest, trace = serial_reference()
        facade = replay_facade(n_shards)
        result = facade.run_trace(trace, executor=executor_cls())
        assert facade.state_digest() == serial_digest
        assert result["events"] == len(trace)
        assert sum(result["shard_events"]) == len(trace)

    def test_replay_cost_is_conserved_and_makespan_shrinks(self):
        __, trace = serial_reference()
        single = replay_facade(1).run_trace(trace)
        quad_facade = replay_facade(4)
        quad = quad_facade.run_trace(trace)
        assert sum(quad["shard_costs"]) == pytest.approx(
            single["makespan"], rel=1e-9)
        assert quad["makespan"] < single["makespan"]
        # per-shard attribution satisfies the conservation invariant
        merged = quad_facade.merged_attribution()
        assert merged.attributed_total() == pytest.approx(
            merged.total, rel=1e-9)
        assert merged.total == pytest.approx(sum(quad["shard_costs"]),
                                             rel=1e-9)

    def test_merged_lat_and_rule_stats_match_serial(self):
        server = build_server()
        serial = SQLCM(server)
        serial.create_lat(qid_lat())
        serial.add_rule(track_rule())
        trace = EventTrace().attach(server)
        drive(server)
        trace.detach()
        facade = replay_facade(4)
        facade.run_trace(trace)
        serial_rows = {row["Qid"]: row for row in serial.lat("Q_LAT").rows()}
        merged_rows = {row["Qid"]: row
                       for row in facade.merged_lat_rows("Q_LAT")}
        assert merged_rows.keys() == serial_rows.keys()
        for qid, row in serial_rows.items():
            assert merged_rows[qid]["N"] == row["N"]
            assert merged_rows[qid]["D"] == pytest.approx(row["D"])
        reference = serial.rules["track"]
        assert facade.rule_stats("track") == \
            (reference.fire_count, reference.evaluation_count)

    def test_streams_replay_aligned_groups_match_serial(self):
        """Stream + sink-LAT + alert-consuming rule, signature-aligned."""
        stream_text = ("STREAM hot FROM Query.Commit "
                       "GROUP BY Query.Logical_Signature AS Sig "
                       "WINDOW TUMBLING(10) AGG COUNT(*) AS N "
                       "HAVING Window.N >= 2")
        sink = LATDefinition(
            name="Alerts", monitored_class="StreamAlert",
            grouping=["StreamAlert.Group_Key AS G"],
            aggregations=["COUNT(StreamAlert.Kind) AS N"])

        def install(monitor):
            monitor.create_lat(sink)
            if isinstance(monitor, ShardedSQLCM):
                monitor.register_stream(stream_text, sink_lat="Alerts")
            else:
                monitor.stream_engine().register(stream_text,
                                                 sink_lat="Alerts")
            monitor.add_rule(Rule(
                name="note", event="StreamAlert.Alert",
                actions=[InsertAction("Alerts")]))

        def workload(server):
            sigs = [b"\x01", b"\x02", b"\x03"]
            t = 0.0
            for round_no in range(6):
                for sig in sigs:
                    t += 1.0
                    commit(server, t, 0.1 * (round_no + 1), sig=sig)
            server.clock.advance_to(40.0)  # cross the final boundary
            commit(server, 41.0, 0.1, sig=sigs[0])

        serial_server = build_server()
        serial = SQLCM(serial_server)
        install(serial)
        trace = EventTrace().attach(serial_server)
        workload(serial_server)
        trace.detach()

        facade = ShardedSQLCM(build_server(), n_shards=3,
                              subscribe=False, query_key="signature")
        install(facade)
        facade.run_trace(trace)
        assert facade.state_digest() == serial.state_digest()
        merged = facade.merged_window("hot")
        reference = serial._streams.query("hot").window
        assert merged.group_count == reference.group_count
