"""Tests for the self-observability layer: attribution, spans, metrics.

The load-bearing property is *conservation*: with observability enabled,
every virtual second charged to the monitor pool is tallied against
exactly one component, so per-component costs sum to the pool total (up
to float associativity).  The layer must also be genuinely free when
disabled — the shipping default.
"""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (DatabaseServer, InsertAction, LATDefinition,
                   PersistAction, Rule, ServerConfig, SQLCM)
from repro.cli import Shell
from repro.monitoring.report import full_report, top_offenders
from repro.obs import (NULL_OBS, CostAttribution, Histogram, TraceRecorder,
                       UNATTRIBUTED)
from repro.sim import SimClock


@pytest.fixture
def observed(items_server):
    items_server.enable_observability()
    return items_server, SQLCM(items_server)


def _install_monitoring(sqlcm: SQLCM) -> None:
    sqlcm.create_lat(LATDefinition(
        name="Dur_LAT", monitored_class="Query",
        grouping=["Query.Logical_Signature AS Sig"],
        aggregations=["AVG(Query.Duration) AS Avg_Dur"],
        ordering=["Avg_Dur DESC"], max_rows=3))
    sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                        actions=[InsertAction("Dur_LAT")]))
    sqlcm.add_rule(Rule(name="persist_slow", event="Query.Commit",
                        condition="Query.Duration >= 0.0",
                        actions=[PersistAction("slow_queries",
                                               source="Dur_LAT")]))
    sqlcm.stream_engine().register(
        "STREAM rates FROM Query.Commit GROUP BY Query.User AS U "
        "WINDOW TUMBLING(1) AGG COUNT(*) AS N")


def _run_queries(server, n: int = 20) -> None:
    session = server.create_session(user="app")
    for i in range(n):
        result = session.execute(
            f"SELECT price FROM items WHERE id = {1 + i % 6}")
        assert result.error is None
    server.clock.advance(2.0)


class TestConservation:
    def test_attributed_costs_sum_to_pool_total(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server)
        sqlcm.stream_engine().flush()
        sqlcm.set_timer("tick", 0.5, 2)
        server.scheduler.run(until=server.clock.now + 3.0)

        attribution = server.obs.attribution
        attributed = attribution.attributed_total()
        assert server.monitor_cost_total > 0
        assert math.isclose(attributed, server.monitor_cost_total,
                            rel_tol=1e-9)
        # and the running total agrees with a fresh fsum over components
        assert math.isclose(
            math.fsum(cost for __, __n, cost, __c
                      in attribution.components()),
            server.monitor_cost_total, rel_tol=1e-9)

    def test_every_kind_sees_traffic(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server)
        sqlcm.stream_engine().flush()
        by_kind = server.obs.attribution.by_kind()
        assert set(by_kind) >= {"rule", "lat", "stream", "engine"}
        assert all(cost > 0 for cost in by_kind.values())

    def test_lat_leads_attribution(self, observed):
        """The paper calls LAT maintenance "the biggest factor"; the
        attribution board must be able to show that for a LAT-heavy
        configuration."""
        server, sqlcm = observed
        sqlcm.create_lat(LATDefinition(
            name="Big_LAT", monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS D"],
            ordering=["Qid DESC"], max_rows=5))
        sqlcm.add_rule(Rule(name="r", event="Query.Commit",
                            actions=[InsertAction("Big_LAT")]))
        _run_queries(server)
        top = server.obs.attribution.top(5)
        assert ("lat", "big_lat") in [(k, n) for k, n, __, __c in top]


class TestAttribution:
    def test_innermost_frame_wins(self):
        attribution = CostAttribution()
        with_pool = []
        attribution.push("rule", "Outer")
        attribution.account(1.0)
        attribution.push("lat", "inner")
        attribution.account(0.25)
        attribution.pop()
        attribution.account(1.0)
        attribution.pop()
        with_pool.append(attribution.totals)
        assert attribution.totals[("rule", "outer")] == 2.0
        assert attribution.totals[("lat", "inner")] == 0.25

    def test_unattributed_fallback(self):
        attribution = CostAttribution()
        attribution.account(0.5)
        assert attribution.totals[UNATTRIBUTED] == 0.5

    def test_pop_on_empty_raises(self):
        with pytest.raises(IndexError):
            CostAttribution().pop()

    def test_unknown_kind_rejected(self, observed):
        server, __ = observed
        with pytest.raises(ValueError, match="unknown attribution kind"):
            server.obs.attrib("nonsense", "x")

    def test_self_charges_are_attributed(self, observed):
        """The obs layer's own charges flow through the pool and land in
        some component — conservation covers the instrument itself."""
        server, __ = observed
        with server.obs.attrib("rule", "r"):
            pass
        attribution = server.obs.attribution
        assert math.isclose(attribution.attributed_total(),
                            server.monitor_cost_total, rel_tol=1e-9)
        # the attrib charge lands in the *enclosing* (empty -> fallback)
        # frame, not the frame being opened
        assert UNATTRIBUTED in attribution.totals


class TestHistogram:
    def test_bucket_edges_are_le(self):
        hist = Histogram("h", bounds=[1.0, 2.0, 4.0])
        for value in [0.5, 1.0, 1.5, 2.0, 4.0, 9.0]:
            hist.observe(value)
        # le semantics: a value equal to a bound lands in that bound's
        # bucket, one past it lands in the next
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.vmax == 9.0

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
        hist.observe(5.0)
        hist.observe(5.0)
        assert hist.vmin <= hist.p50 <= hist.vmax
        assert hist.p95 <= hist.vmax
        assert hist.quantile(0.0) >= hist.vmin

    def test_overflow_bucket_reports_max(self):
        hist = Histogram("h", bounds=[1.0])
        hist.observe(50.0)
        assert hist.p95 == 50.0

    def test_empty_summary(self):
        hist = Histogram("h", bounds=[1.0])
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_quantile_rejects_out_of_range_q(self):
        hist = Histogram("h", bounds=[1.0])
        hist.observe(0.5)
        for bad in (-0.1, 1.1, 2.0):
            with pytest.raises(ValueError, match="quantile"):
                hist.quantile(bad)

    def test_empty_histogram_quantile_is_zero(self):
        hist = Histogram("h", bounds=[1.0])
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0

    def test_single_observation_every_quantile_is_it(self):
        hist = Histogram("h", bounds=[1.0, 10.0, 100.0])
        hist.observe(7.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 7.0

    def test_q_extremes_hit_observed_min_and_max(self):
        hist = Histogram("h", bounds=[1.0, 2.0, 4.0, 8.0])
        for value in (0.5, 1.5, 3.0, 6.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 6.0

    def test_overflow_bucket_quantiles_clamp_to_max(self):
        hist = Histogram("h", bounds=[1.0])
        hist.observe(0.5)
        hist.observe(30.0)
        hist.observe(50.0)
        # any quantile landing in the overflow bucket reports the max
        assert hist.quantile(0.6) == 50.0
        assert hist.quantile(1.0) == 50.0

    def test_interpolation_clamped_to_observed_range(self):
        # one wide bucket: linear interpolation would leave [vmin, vmax]
        hist = Histogram("h", bounds=[100.0])
        hist.observe(40.0)
        hist.observe(60.0)
        for q in (0.01, 0.5, 0.99):
            assert 40.0 <= hist.quantile(q) <= 60.0

    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=500.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_quantile_monotone_in_q(self, values):
        hist = Histogram("h", bounds=[0.5, 1.0, 5.0, 10.0, 50.0, 100.0])
        for value in values:
            hist.observe(value)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        estimates = [hist.quantile(q) for q in qs]
        assert all(a <= b for a, b in zip(estimates, estimates[1:]))
        assert all(hist.vmin <= e <= hist.vmax for e in estimates)

    def test_default_latency_bounds_cover_cost_scale(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server)
        hist = server.obs.metrics.histogram("sqlcm.dispatch.cost")
        assert hist.count > 0
        # dispatch costs are sub-millisecond virtual charges; the default
        # buckets must resolve them (not dump everything in one bucket)
        assert hist.p95 < 1e-3
        assert hist.p50 > 0


class TestTracing:
    def test_ring_is_bounded(self):
        clock = SimClock()
        trace = TraceRecorder(clock, capacity=4)
        for i in range(10):
            span = trace.begin(f"s{i}", "test")
            clock.advance(0.001)
            trace.end(span)
        assert len(trace) == 4
        assert trace.dropped == 6
        assert trace.completed == 10
        assert [s.name for s in trace.spans(4)] == ["s6", "s7", "s8", "s9"]

    def test_chrome_export_structure(self, observed, tmp_path):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server, n=4)
        path = tmp_path / "trace.json"
        with open(path, "w", encoding="utf-8") as fp:
            server.obs.trace.export_json(fp)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
        categories = {e["cat"] for e in events}
        assert {"dispatch", "rule", "lat"} <= categories

    def test_spans_carry_monitor_cost_delta(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server, n=2)
        dispatch = [s for s in server.obs.trace.spans(0)
                    if s.category == "dispatch"]
        assert dispatch
        assert any(s.args["cost_us"] > 0 for s in dispatch)

    def test_tracing_can_be_switched_off_independently(self, observed):
        server, sqlcm = observed
        server.obs.tracing_enabled = False
        _install_monitoring(sqlcm)
        _run_queries(server, n=3)
        assert len(server.obs.trace) == 0
        # attribution still collects
        assert server.obs.attribution.attributed_total() > 0


class TestDisabled:
    def test_obs_is_null_object_by_default(self, server):
        assert server.obs is NULL_OBS
        assert not server.observability_enabled
        assert not server.obs.enabled

    def test_disabled_observability_charges_nothing(self, items_server):
        """Same monitoring work, observability off vs on: the off run's
        pool total must be exactly the cost of the monitoring itself."""
        def run(enable: bool) -> float:
            server = DatabaseServer(
                ServerConfig(track_completed_queries=True))
            server.execute_ddl(
                "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, "
                "name VARCHAR(30), price FLOAT, qty INT, "
                "segment VARCHAR(10))")
            loader = server.create_session()
            loader.execute("INSERT INTO items (id, name, price, qty, "
                           "segment) VALUES (1, 'apple', 1.5, 10, 'fruit')")
            if enable:
                server.enable_observability()
            sqlcm = SQLCM(server)
            _install_monitoring(sqlcm)
            session = server.create_session(user="app")
            for __ in range(10):
                session.execute("SELECT price FROM items WHERE id = 1")
            return server.monitor_cost_total

        off_a, off_b, on = run(False), run(False), run(True)
        assert off_a == off_b  # deterministic
        assert on > off_a      # the layer charges for itself when on

    def test_null_obs_contexts_are_noops(self, server):
        with server.obs.attrib("rule", "r") as frame:
            assert frame is None
        with server.obs.span("x") as span:
            assert span is None
        server.obs.count("c")
        server.obs.gauge("g", 1.0)
        server.obs.observe("h", 1.0)
        assert server.monitor_cost_total == 0.0

    def test_disable_reenable(self, items_server):
        items_server.enable_observability()
        first = items_server.obs
        assert items_server.enable_observability() is first  # idempotent
        items_server.disable_observability()
        assert items_server.obs is NULL_OBS
        assert items_server.enable_observability() is not first


class TestMetricsAndReport:
    def test_dispatch_metrics_populate(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server, n=6)
        snap = server.obs.metrics.snapshot()
        assert snap["counters"]["sqlcm.events.dispatched"] >= 6
        assert snap["counters"]["sqlcm.rules.fired"] >= 6
        assert snap["counters"]["sqlcm.lat.inserts"] >= 6
        assert "sqlcm.lat.rows.dur_lat" in snap["gauges"]
        assert snap["gauges"]["sqlcm.lat.occupancy.dur_lat"] <= 1.0
        assert snap["histograms"]["sqlcm.dispatch.cost"]["count"] >= 6

    def test_rule_error_counter(self, observed):
        server, sqlcm = observed
        from repro.core.actions import CallbackAction

        def boom(s, c):
            raise RuntimeError("nope")

        sqlcm.add_rule(Rule(name="bad", event="Query.Commit",
                            actions=[CallbackAction(boom)]))
        _run_queries(server, n=2)
        snap = server.obs.metrics.snapshot()
        assert snap["counters"]["sqlcm.rules.errors"] >= 2

    def test_top_offenders_report(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server)
        text = top_offenders(server, sqlcm)
        assert "TOP OFFENDERS" in text
        assert "lat:dur_lat" in text
        assert "monitor pool total" in text
        assert "TOP OFFENDERS" in full_report(server, sqlcm)

    def test_top_offenders_when_disabled(self, items_server):
        sqlcm = SQLCM(items_server)
        text = top_offenders(items_server, sqlcm)
        assert "disabled" in text
        assert "TOP OFFENDERS" not in full_report(items_server, sqlcm)

    def test_snapshot_shape(self, observed):
        server, sqlcm = observed
        _install_monitoring(sqlcm)
        _run_queries(server, n=3)
        snap = server.obs.snapshot()
        assert set(snap) == {"metrics", "attribution", "trace"}
        assert snap["trace"]["capacity"] == 4096
        assert snap["attribution"]["total"] > 0


class TestCLI:
    def _shell(self, script: str) -> str:
        out = io.StringIO()
        shell = Shell(out=out)
        shell.run_script(
            "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b FLOAT);\n"
            "INSERT INTO t VALUES (1, 2.0), (2, 3.0);\n"
            ".monitor topk 5\n"
            "SELECT * FROM t;\n" + script)
        return out.getvalue()

    def test_metrics_command(self):
        text = self._shell(".metrics\n")
        assert "sqlcm.events.dispatched" in text
        assert "TOP OFFENDERS" in text
        assert "sqlcm.dispatch.cost" in text

    def test_trace_command(self):
        text = self._shell(".trace 3\n")
        assert "[dispatch] dispatch:query.commit" in text

    def test_trace_export(self, tmp_path):
        path = tmp_path / "out.json"
        text = self._shell(f".trace export {path}\n")
        assert "wrote" in text
        data = json.loads(path.read_text())
        assert data["traceEvents"]

    def test_trace_usage_errors(self):
        assert "usage" in self._shell(".trace export\n")
        assert "usage" in self._shell(".trace bogus\n")
