"""Unit tests for ExecContext and QueryContext."""

import pytest

from repro.engine.exec.context import ExecContext
from repro.engine.query import QueryContext, QueryState
from repro.errors import QueryCancelledError
from repro.sim.scheduler import WaitLock


@pytest.fixture
def ctx(items_server):
    txn = items_server.txns.begin(1)
    qctx = QueryContext(query_id=1, session_id=1, text="SELECT 1")
    return ExecContext(items_server, txn, qctx, {"p": 5})


class TestCharging:
    def test_charges_accumulate(self, ctx):
        ctx.charge(0.25)
        ctx.charge(0.75)
        assert ctx.pending_cost == pytest.approx(1.0)
        assert ctx.take_cost() == pytest.approx(1.0)
        assert ctx.pending_cost == 0.0

    def test_cancel_raises_at_charge(self, ctx):
        ctx.qctx.cancel_requested = True
        with pytest.raises(QueryCancelledError):
            ctx.charge(0.1)

    def test_fetch_charge_uses_hit_ratio(self, ctx):
        ctx.fetch_charge("items")
        hot = ctx.take_cost()
        ctx.server.reserve_memory_pages(
            "t", ctx.server.costs.buffer_pool_pages)
        ctx.fetch_charge("items")
        cold = ctx.take_cost()
        ctx.server.reserve_memory_pages("t", 0)
        assert cold > hot


class TestLockAcquisition:
    def test_uncontended_lock_no_suspension(self, ctx):
        items = list(ctx.acquire_table_lock("items", "S"))
        assert items == []  # no WaitLock yielded
        assert ("table", "items") in ctx.server.locks.locks_held(
            ctx.txn.txn_id)

    def test_read_locks_remembered_for_statement_release(self, ctx):
        list(ctx.acquire_table_lock("items", "S"))
        list(ctx.acquire_row_lock("items", 1, "S"))
        assert len(ctx.txn.statement_read_locks) == 2

    def test_write_locks_not_statement_released(self, ctx):
        list(ctx.acquire_table_lock("items", "IX"))
        list(ctx.acquire_row_lock("items", 1, "X"))
        assert ctx.txn.statement_read_locks == []

    def test_contended_lock_yields_waitlock(self, ctx, items_server):
        other = items_server.txns.begin(2)
        items_server.locks.request(other.txn_id, ("table", "items"), "X")
        gen = ctx.acquire_table_lock("items", "S")
        item = next(gen)
        assert isinstance(item, WaitLock)
        assert not item.ticket.granted


class TestQueryContext:
    def test_duration_uses_end_time_when_finished(self):
        qctx = QueryContext(query_id=1, session_id=1, text="x")
        qctx.start_time = 10.0
        qctx.end_time = 12.5
        assert qctx.duration_at(now=100.0) == 2.5

    def test_duration_live_when_running(self):
        qctx = QueryContext(query_id=1, session_id=1, text="x")
        qctx.start_time = 10.0
        assert qctx.duration_at(now=11.0) == 1.0

    def test_state_predicates(self):
        qctx = QueryContext(query_id=1, session_id=1, text="x")
        assert qctx.active and not qctx.finished
        qctx.state = QueryState.BLOCKED
        assert qctx.active
        qctx.state = QueryState.COMMITTED
        assert qctx.finished and not qctx.active
        qctx.state = QueryState.CANCELLED
        assert qctx.finished
