"""Tests for TPC-H-lite generation and the paper workload mixes."""

import pytest

from repro import DatabaseServer
from repro.workloads import (TPCHConfig, WorkloadMix, mixed_paper_workload,
                             register_order_procedures,
                             short_select_workload)
from repro.workloads.generator import join_query, lineitem_key_sample
from repro.workloads.tpch import create_tpch_schema, load_tpch, setup_tpch


class TestTPCHGeneration:
    def test_row_counts_match_config(self, tpch_server, tiny_tpch_config):
        counts = tpch_server.tpch_counts
        assert counts["orders"] == tiny_tpch_config.orders_rows
        assert counts["part"] == tiny_tpch_config.part_rows
        assert counts["customer"] == tiny_tpch_config.customer_rows
        assert counts["lineitem"] == tiny_tpch_config.lineitem_rows

    def test_deterministic_generation(self, tiny_tpch_config):
        s1 = DatabaseServer()
        s2 = DatabaseServer()
        setup_tpch(s1, tiny_tpch_config)
        setup_tpch(s2, tiny_tpch_config)
        rows1 = [r for __, r in s1.table("lineitem").scan()]
        rows2 = [r for __, r in s2.table("lineitem").scan()]
        assert rows1 == rows2

    def test_lineitem_pk_unique(self, tpch_server):
        table = tpch_server.table("lineitem")
        keys = {(r[0], r[1]) for __, r in table.scan()}
        assert len(keys) == table.row_count

    def test_foreign_keys_resolve(self, tpch_server):
        session = tpch_server.create_session()
        orphans = session.execute(
            "SELECT COUNT(*) FROM lineitem l "
            "LEFT JOIN orders o ON l.l_orderkey = o.o_orderkey "
            "WHERE o.o_orderkey IS NULL"
        )
        assert orphans.rows == [(0,)]

    def test_scaled_config(self):
        config = TPCHConfig().scaled(0.5)
        assert config.lineitem_rows == 30_000
        assert config.seed == TPCHConfig().seed

    def test_indexes_created(self, tpch_server):
        lineitem = tpch_server.table("lineitem")
        assert "pk_lineitem" in lineitem.indexes
        assert "ix_lineitem_partkey" in lineitem.indexes


class TestWorkloadMixes:
    def test_short_workload_statement_count(self, tpch_server):
        keys = lineitem_key_sample(tpch_server, 50)
        statements = short_select_workload(
            100, orders_rows=tpch_server.tpch_counts["orders"],
            lineitem_keys=keys)
        assert len(statements) == 100

    def test_short_workload_deterministic(self, tpch_server):
        keys = lineitem_key_sample(tpch_server, 50)
        a = short_select_workload(
            50, orders_rows=100, lineitem_keys=keys, seed=3)
        b = short_select_workload(
            50, orders_rows=100, lineitem_keys=keys, seed=3)
        assert [s.sql for s in a] == [s.sql for s in b]

    def test_short_queries_are_single_row(self, tpch_server):
        keys = lineitem_key_sample(tpch_server, 20)
        statements = short_select_workload(
            20, orders_rows=tpch_server.tpch_counts["orders"],
            lineitem_keys=keys, distinct_templates=20)
        session = tpch_server.create_session()
        for statement in statements[:10]:
            result = session.execute(statement.sql)
            assert len(result.rows) <= 1

    def test_mixed_workload_interleaves_joins(self, tpch_server):
        counts = tpch_server.tpch_counts
        keys = lineitem_key_sample(tpch_server, 20)
        mix = WorkloadMix(short_queries=50, join_queries=5,
                          join_rows_low=20, join_rows_high=40)
        statements = mixed_paper_workload(
            mix, orders_rows=counts["orders"],
            lineitem_rows=counts["lineitem"], lineitem_keys=keys)
        assert len(statements) == 55
        joins = [i for i, s in enumerate(statements) if "JOIN" in s.sql]
        assert len(joins) == 5
        assert joins[0] > 0 and joins[-1] < len(statements) - 1

    def test_join_query_returns_requested_magnitude(self, tpch_server):
        counts = tpch_server.tpch_counts
        keys = lineitem_key_sample(tpch_server, 20)
        mix = WorkloadMix(short_queries=5, join_queries=2,
                          join_rows_low=30, join_rows_high=60)
        statements = mixed_paper_workload(
            mix, orders_rows=counts["orders"],
            lineitem_rows=counts["lineitem"], lineitem_keys=keys)
        session = tpch_server.create_session()
        for statement in statements:
            if "JOIN" not in statement.sql:
                continue
            rows = session.execute(statement.sql).rows
            assert 5 <= len(rows) <= 200  # right order of magnitude

    def test_workload_scaling(self):
        mix = WorkloadMix().scaled(0.01)
        assert mix.short_queries == 200
        assert mix.join_queries == 1


class TestProcedures:
    def test_registration(self, tpch_server):
        names = register_order_procedures(tpch_server)
        assert "get_order" in names
        for name in names:
            assert tpch_server.catalog.has_procedure(name)

    def test_get_order_lookup(self, tpch_server):
        register_order_procedures(tpch_server)
        session = tpch_server.create_session()
        result = session.execute("EXEC get_order @okey = 1")
        assert len(result.rows) == 1

    def test_order_report_code_paths(self, tpch_server):
        register_order_procedures(tpch_server)
        session = tpch_server.create_session()
        detail = session.execute("EXEC order_report @okey = 1, @detail = 1")
        summary = session.execute("EXEC order_report @okey = 1, @detail = 0")
        assert detail.ok and summary.ok
        # the summary path returns one aggregate row
        assert len(summary.rows) == 1

    def test_slow_scan_is_slower_than_point_lookup(self, tpch_server):
        register_order_procedures(tpch_server)
        session = tpch_server.create_session()
        fast = session.execute("EXEC get_order @okey = 5")
        slow = session.execute("EXEC slow_scan @minprice = 0.0")
        assert slow.query.duration_at(tpch_server.clock.now) > \
            fast.query.duration_at(tpch_server.clock.now)
