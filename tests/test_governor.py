"""Overload governor: closed-loop enforcement of the < 4% envelope.

The governor's contract: measure the rolling overhead ratio, walk the
NORMAL -> SAMPLED -> SHEDDING -> ESSENTIAL ladder with hysteresis and a
cooldown dwell (no flapping), sample deterministically (replay-stable),
never degrade CRITICAL components, and recover cleanly when load passes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (GovernorPolicy, InsertAction, LATDefinition, Rule,
                   SQLCM)
from repro.core.actions import CallbackAction
from repro.core.governor import (BEST_EFFORT, CRITICAL, EXEMPT_EVENTS,
                                 GOV_ESSENTIAL, GOV_NORMAL, GOV_SAMPLED,
                                 GOV_SHEDDING, LADDER, GovernorError,
                                 validate_criticality)


def _policy(**overrides) -> GovernorPolicy:
    base = dict(target_overhead=0.04, exit_overhead=0.02, window=0.5,
                cooldown=1.0, decision_interval=0.1, sample_rate=4)
    base.update(overrides)
    return GovernorPolicy(**base)


def _drive(server, gov, seconds, ratio, step=0.05):
    """Advance virtual time charging ``ratio`` of it as monitoring cost."""
    end = server.clock.now + seconds
    while server.clock.now < end:
        server.clock.advance(step)
        if ratio > 0.0:
            server.add_monitor_cost(step * ratio)
        gov.observe()


class TestPolicyValidation:
    def test_defaults_encode_the_paper_envelope(self):
        policy = GovernorPolicy()
        assert policy.target_overhead == pytest.approx(0.04)
        assert policy.exit_overhead < policy.target_overhead

    @pytest.mark.parametrize("kwargs", [
        dict(target_overhead=0.0), dict(target_overhead=1.5),
        dict(exit_overhead=0.0), dict(exit_overhead=0.05),
        dict(window=0.0), dict(cooldown=0.0), dict(decision_interval=0.0),
        dict(sample_rate=1), dict(sample_rate=2.5), dict(shed_headroom=0.0),
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(GovernorError):
            _policy(**kwargs)

    def test_criticality_normalized(self):
        assert validate_criticality("Best-Effort") == BEST_EFFORT
        assert validate_criticality(" CRITICAL ") == CRITICAL
        with pytest.raises(GovernorError):
            validate_criticality("optional")

    def test_rule_validates_criticality(self):
        with pytest.raises(GovernorError):
            Rule(name="r", event="Query.Commit", criticality="bogus",
                 actions=[CallbackAction(lambda s, c: None)])

    def test_lat_validates_criticality(self):
        with pytest.raises(GovernorError):
            LATDefinition(name="L", grouping=["Query.ID AS Q"],
                          aggregations=["COUNT(Query.ID) AS N"],
                          criticality="bogus")


class TestLifecycle:
    def test_governor_off_by_default(self, server, sqlcm):
        assert sqlcm.governor is None
        assert server.governor is None

    def test_enable_is_idempotent_and_attaches_to_server(self, server,
                                                         sqlcm):
        gov = sqlcm.enable_governor(_policy())
        assert sqlcm.enable_governor() is gov
        assert server.governor is gov
        assert server.observability_enabled  # needed for shed ranking

    def test_disable_releases_suspensions(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        gov.state = GOV_ESSENTIAL
        gov.suspended = {("rule", "x")}
        sqlcm.disable_governor()
        assert sqlcm.governor is None
        assert server.governor is None
        assert gov.state == GOV_NORMAL
        assert not gov.suspended


class TestLadder:
    def test_escalates_when_measured_exceeds_target(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=2.0, ratio=0.10)
        assert gov.state != GOV_NORMAL
        assert gov.transitions[0].from_state == GOV_NORMAL
        assert gov.transitions[0].to_state == GOV_SAMPLED
        assert gov.transitions[0].reason == "escalate"
        assert gov.transitions[0].overhead_ratio > 0.04

    def test_climbs_one_rung_per_cooldown(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy(cooldown=1.0))
        _drive(server, gov, seconds=6.0, ratio=0.20)
        states = [t.to_state for t in gov.transitions]
        # strictly rung by rung, never skipping
        assert states[:3] == [GOV_SAMPLED, GOV_SHEDDING, GOV_ESSENTIAL]
        for earlier, later in zip(gov.transitions, gov.transitions[1:]):
            assert later.time - earlier.time >= gov.policy.cooldown

    def test_essential_is_the_ladder_floor(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=12.0, ratio=0.30)
        assert gov.state == GOV_ESSENTIAL
        assert len(gov.transitions) == 3  # no further escalation attempts

    def test_recovers_when_estimated_ratio_drops(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=1.0, ratio=0.10)
        assert gov.state == GOV_SAMPLED
        _drive(server, gov, seconds=4.0, ratio=0.005)
        assert gov.state == GOV_NORMAL
        assert gov.transitions[-1].reason == "recover"
        assert not gov.suspended

    def test_skip_estimate_prevents_flapping(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=1.0, ratio=0.10)
        assert gov.state == GOV_SAMPLED
        # measured drops (we are degraded!) but the skipped-work estimate
        # says the ungoverned ratio would still be ~6%: stay put
        end = server.clock.now + 4.0
        while server.clock.now < end:
            server.clock.advance(0.05)
            server.add_monitor_cost(0.05 * 0.01)
            gov._skipped_total += 0.05 * 0.05
            gov.observe()
        assert gov.state == GOV_SAMPLED
        assert gov.estimated_ratio > gov.policy.exit_overhead

    def test_state_overheads_tracked_per_rung(self, server, sqlcm):
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=2.0, ratio=0.10)
        _drive(server, gov, seconds=2.0, ratio=0.01)
        per_state = gov.state_overheads()
        assert GOV_NORMAL in per_state and GOV_SAMPLED in per_state
        assert all(ratio > 0.0 for ratio in per_state.values())
        # time is conserved across the per-rung accounting
        assert sum(gov.state_time.values()) == pytest.approx(
            server.clock.now, abs=0.1)


class TestCooldownProperty:
    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.tuples(st.floats(0.01, 0.2),
                              st.floats(0.0, 0.5)),
                    min_size=10, max_size=150))
    def test_at_most_one_transition_per_cooldown_window(self, load):
        from repro import DatabaseServer, ServerConfig
        server = DatabaseServer(ServerConfig())
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(_policy(cooldown=0.8))
        for dt, ratio in load:
            server.clock.advance(dt)
            server.add_monitor_cost(dt * ratio)
            gov.observe()
        for earlier, later in zip(gov.transitions, gov.transitions[1:]):
            assert later.time - earlier.time >= gov.policy.cooldown - 1e-9
        # and the ladder only ever moves one rung at a time
        for t in gov.transitions:
            moved = abs(LADDER.index(t.to_state) -
                        LADDER.index(t.from_state))
            assert moved == 1


class TestAdmission:
    def _engine(self, server):
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(_policy(window=1e6, cooldown=1e6))
        return sqlcm, gov

    def _rule(self, sqlcm, name, criticality="normal", event="Query.Commit"):
        fired = []
        sqlcm.add_rule(Rule(name=name, event=event,
                            criticality=criticality,
                            actions=[CallbackAction(
                                lambda s, c: fired.append(1))]))
        return sqlcm.rules[name], fired

    def test_normal_state_admits_everything(self, server):
        sqlcm, gov = self._engine(server)
        rule, __ = self._rule(sqlcm, "r")
        assert gov.admit(rule, "query.commit") == (True, 1)

    def test_sampled_state_admits_a_weighted_subset(self, server):
        sqlcm, gov = self._engine(server)
        rules = [self._rule(sqlcm, f"r{i}")[0] for i in range(40)]
        gov.state = GOV_SAMPLED
        gov.on_event("query.commit")
        admitted = [r for r in rules
                    if gov.admit(r, "query.commit") == (True, 4)]
        # roughly 1-in-sample_rate admitted, the rest sampled out
        assert 0 < len(admitted) < len(rules)
        assert gov.evals_sampled_out == len(rules) - len(admitted)

    def test_sampling_is_replay_stable(self, server):
        def run():
            from repro import DatabaseServer, ServerConfig
            srv = DatabaseServer(ServerConfig())
            sqlcm = SQLCM(srv)
            gov = sqlcm.enable_governor(_policy(window=1e6, cooldown=1e6))
            rules = [Rule(name=f"r{i}", event="Query.Commit",
                          actions=[CallbackAction(lambda s, c: None)])
                     for i in range(20)]
            for rule in rules:
                sqlcm.add_rule(rule)
            gov.state = GOV_SAMPLED
            outcomes = []
            for __ in range(30):
                gov.on_event("query.commit")
                for rule in rules:
                    outcomes.append(gov.admit(rule, "query.commit")[0])
            return outcomes, gov.sample_digest, gov.evals_sampled_out

        assert run() == run()

    def test_different_events_sample_different_subsets(self, server):
        sqlcm, gov = self._engine(server)
        rules = [self._rule(sqlcm, f"r{i}")[0] for i in range(40)]
        gov.state = GOV_SAMPLED

        def subset(seq_offset):
            gov._event_seq = seq_offset
            gov.on_event("query.commit")
            return [r.name for r in rules
                    if gov.admit(r, "query.commit")[0]]

        assert subset(0) != subset(100)  # the salt rotates the sample

    def test_critical_rule_never_sampled_or_shed(self, server):
        sqlcm, gov = self._engine(server)
        rule, __ = self._rule(sqlcm, "vital", criticality="critical")
        for state in (GOV_SAMPLED, GOV_SHEDDING, GOV_ESSENTIAL):
            gov.state = state
            for __ in range(20):
                gov.on_event("query.commit")
                assert gov.admit(rule, "query.commit") == (True, 1)

    def test_essential_state_sheds_all_non_critical(self, server):
        sqlcm, gov = self._engine(server)
        rule, __ = self._rule(sqlcm, "casual")
        gov.state = GOV_ESSENTIAL
        gov.on_event("query.commit")
        assert gov.admit(rule, "query.commit") == (False, 1)
        assert gov.evals_suspended == 1

    def test_meta_monitoring_events_exempt(self, server):
        sqlcm, gov = self._engine(server)
        rule, __ = self._rule(sqlcm, "watch",
                              event="Governor.Transition")
        gov.state = GOV_ESSENTIAL
        for event in EXEMPT_EVENTS:
            assert gov.admit(rule, event) == (True, 1)

    def test_rule_feeding_critical_lat_is_escalated(self, server):
        sqlcm, gov = self._engine(server)
        sqlcm.create_lat(LATDefinition(
            name="Vital_LAT", grouping=["Query.ID AS Q"],
            aggregations=["COUNT(Query.ID) AS N"], criticality="critical"))
        sqlcm.add_rule(Rule(name="feeder", event="Query.Commit",
                            actions=[InsertAction("Vital_LAT")]))
        rule = sqlcm.rules["feeder"]
        assert gov.effective_criticality(rule) == CRITICAL
        gov.state = GOV_ESSENTIAL
        gov.on_event("query.commit")
        assert gov.admit(rule, "query.commit") == (True, 1)

    def test_criticality_cache_invalidated_on_lat_changes(self, server):
        sqlcm, gov = self._engine(server)
        rule, __ = self._rule(sqlcm, "feeder")
        assert gov.effective_criticality(rule) != CRITICAL
        sqlcm.create_lat(LATDefinition(
            name="Vital_LAT", grouping=["Query.ID AS Q"],
            aggregations=["COUNT(Query.ID) AS N"], criticality="critical"))
        sqlcm.add_rule(Rule(name="feeder2", event="Query.Commit",
                            actions=[InsertAction("Vital_LAT")]))
        assert gov.effective_criticality(
            sqlcm.rules["feeder2"]) == CRITICAL
        # the plain rule's cached class survived the invalidation correctly
        assert gov.effective_criticality(rule) != CRITICAL


class TestShedSelection:
    def test_best_effort_sheds_before_normal_biggest_spender_first(
            self, server):
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(_policy())
        for name, crit in [("pig", "normal"), ("mouse", "normal"),
                           ("junk", "best_effort")]:
            sqlcm.add_rule(Rule(name=name, event="Query.Commit",
                                criticality=crit,
                                actions=[CallbackAction(
                                    lambda s, c: None)]))
        totals = server.obs.attribution.totals
        totals[("rule", "pig")] = 5.0
        totals[("rule", "mouse")] = 0.1
        totals[("rule", "junk")] = 0.01
        shed = gov._select_shed(measured=0.10)
        assert ("rule", "junk") in shed   # BEST_EFFORT goes first
        assert ("rule", "pig") in shed    # then the biggest spender
        assert ("rule", "mouse") not in shed

    def test_shed_never_touches_critical(self, server):
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(_policy())
        sqlcm.add_rule(Rule(name="vital", event="Query.Commit",
                            criticality="critical",
                            actions=[CallbackAction(lambda s, c: None)]))
        sqlcm.add_rule(Rule(name="casual", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        shed = gov._select_shed(measured=0.50)
        assert ("rule", "vital") not in shed
        assert ("rule", "casual") in shed

    def test_removed_rule_leaves_the_suspension_set(self, server):
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(_policy())
        sqlcm.add_rule(Rule(name="casual", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        gov.suspended = {("rule", "casual")}
        sqlcm.remove_rule("casual")
        assert ("rule", "casual") not in gov.suspended


class TestMetaEvent:
    def test_transition_dispatches_monitorable_event(self, server, sqlcm):
        seen = []
        sqlcm.add_rule(Rule(
            name="gwatch", event="Governor.Transition",
            actions=[CallbackAction(lambda s, c: seen.append(
                (c["governor"].get("From_State"),
                 c["governor"].get("To_State"),
                 c["governor"].get("Reason"))))],
        ))
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=2.0, ratio=0.10)
        assert seen and seen[0] == (GOV_NORMAL, GOV_SAMPLED, "escalate")

    def test_transitions_aggregate_into_lats(self, server, sqlcm):
        sqlcm.create_lat(LATDefinition(
            name="Gov_LAT", monitored_class="Governor",
            grouping=["Governor.To_State AS S"],
            aggregations=["COUNT(Governor.Reason) AS N"]))
        sqlcm.add_rule(Rule(name="gwatch", event="Governor.Transition",
                            actions=[InsertAction("Gov_LAT")]))
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=2.0, ratio=0.10)
        rows = sqlcm.lat("Gov_LAT").rows()
        assert {"S": GOV_SAMPLED, "N": 1} in rows


class TestWeightedAggregates:
    def _lat(self, sqlcm):
        sqlcm.create_lat(LATDefinition(
            name="W", grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N",
                          "SUM(Query.Duration) AS Total",
                          "AVG(Query.Duration) AS Mean",
                          "MIN(Query.Duration) AS Low"]))
        return sqlcm.lat("W")

    def test_weight_compensates_count_sum_avg(self, server, sqlcm):
        lat = self._lat(sqlcm)
        session = server.create_session(application="app")
        server.execute_ddl(
            "CREATE TABLE t (a INT NOT NULL PRIMARY KEY)")
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("W")]))
        # weight 4: each admitted evaluation stands in for 4 events
        sqlcm.sample_weight = 4
        try:
            session.execute("INSERT INTO t (a) VALUES (1)")
        finally:
            sqlcm.sample_weight = 1
        row = lat.rows()[0]
        assert row["N"] == 4              # COUNT compensated
        assert row["Mean"] == pytest.approx(row["Total"] / 4)
        # MIN is order-statistic: documented bias, no scaling
        assert row["Low"] == pytest.approx(row["Total"] / 4)

    def test_update_weighted_semantics(self):
        from repro.core.aggregates import aggregate_function
        for name, expect in [("COUNT", 8), ("SUM", 20.0)]:
            func = aggregate_function(name)
            state = func.new_state()
            for value in (2.0, 3.0):
                state = func.update_weighted(state, value, 4)
            assert func.result(state) == expect
        func = aggregate_function("AVG")
        state = func.new_state()
        for value in (2.0, 3.0):
            state = func.update_weighted(state, value, 4)
        assert func.result(state) == pytest.approx(2.5)
        func = aggregate_function("MIN")  # biased: falls back to update
        state = func.new_state()
        state = func.update_weighted(state, 2.0, 4)
        assert func.result(state) == 2.0


class TestEndToEnd:
    def test_storm_is_governed_and_recovers(self, server):
        """Compressed G1 shape: a rule storm breaches the envelope, the
        governor degrades, and after the storm it returns to NORMAL."""
        sqlcm = SQLCM(server)
        gov = sqlcm.enable_governor(GovernorPolicy(
            target_overhead=0.04, exit_overhead=0.02, window=0.05,
            cooldown=0.12, decision_interval=0.01, sample_rate=8))
        server.execute_ddl(
            "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b FLOAT)")
        session = server.create_session(application="app")
        session.execute("INSERT INTO t (a, b) VALUES (1, 1.0)")
        def expensive(s, c):  # stand-in for heavy LAT maintenance
            s.server.add_monitor_cost(2.5e-5)

        for i in range(120):
            sqlcm.add_rule(Rule(
                name=f"storm{i}", event="Query.Commit",
                condition="Query.Duration >= 0.0",
                actions=[CallbackAction(expensive)]))
        sqlcm.add_rule(Rule(name="vital", event="Query.Commit",
                            criticality="critical",
                            actions=[CallbackAction(lambda s, c: None)]))
        for __ in range(150):
            session.execute("SELECT b FROM t WHERE a = 1")
        assert gov.transitions, "storm never breached the envelope"
        assert gov.transitions[0].to_state == GOV_SAMPLED
        assert gov.evals_sampled_out > 0
        # the critical sentinel saw every single commit
        vital = sqlcm.rules["vital"]
        storm = sqlcm.rules["storm0"]
        assert vital.evaluation_count > storm.evaluation_count
        # calm phase: drop the storm, keep querying -> clean recovery
        for i in range(120):
            sqlcm.remove_rule(f"storm{i}")
        for __ in range(400):
            session.execute("SELECT b FROM t WHERE a = 1")
            if gov.state == GOV_NORMAL:
                break
        assert gov.state == GOV_NORMAL
        assert gov.transitions[-1].reason == "recover"
        assert not gov.suspended

    def test_report_and_describe_surface_governor_state(self, server,
                                                        sqlcm):
        from repro.monitoring.report import full_report, governor_status
        assert "disabled" in governor_status(sqlcm)
        gov = sqlcm.enable_governor(_policy())
        _drive(server, gov, seconds=1.0, ratio=0.10)
        text = full_report(server, sqlcm)
        assert "OVERLOAD GOVERNOR" in text
        assert "state: SAMPLED" in text
        info = gov.describe()
        assert info["state"] == GOV_SAMPLED
        assert info["transitions"] == 1
