"""Fault-isolation layer: quarantine, retry/dead-letter, fault injection.

The resilience contract: a misbehaving rule, a flaky side-effect sink, or a
crash mid-persist must never surface as an error on the monitored query —
failures are isolated, accounted per rule, quarantined past a threshold,
and undeliverable side effects land in a dead-letter journal.  The fault
injector driving these tests is seeded and deterministic.
"""

from __future__ import annotations

import pytest

from repro import (FaultInjector, InsertAction, LATDefinition,
                   QuarantinePolicy, RetryPolicy, Rule, SendMailAction,
                   SQLCM)
from repro.core.actions import (CallbackAction, CancelAction, PersistAction,
                                RunExternalAction, SetTimerAction)
from repro.core.objects import MonitoredObject
from repro.core.resilience import FAULT_SITES, FaultSpec
from repro.errors import (ActionError, FaultInjected,
                          PersistCorruptionError, RuleError,
                          RuleQuarantinedError)


def _items(server):
    server.execute_ddl(
        "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, price FLOAT)")
    loader = server.create_session()
    loader.execute("INSERT INTO items (id, price) VALUES (1, 1.5), (2, 2.0)")
    return server.create_session(user="app", application="tests")


def _failing_rule(sqlcm, name="bad"):
    sqlcm.add_rule(Rule(
        name=name, event="Query.Commit",
        actions=[CallbackAction(lambda s, c: 1 / 0)],
    ))


class TestIsolation:
    def test_failing_action_does_not_break_query(self, server, sqlcm):
        session = _items(server)
        _failing_rule(sqlcm)
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert result.rows == [(1.5,)]
        assert sqlcm.rule_health("bad").error_count == 1
        assert sqlcm.rule_health("bad").last_site == "action"

    def test_failing_condition_is_isolated(self, server, sqlcm):
        session = _items(server)
        fired = []
        sqlcm.add_rule(Rule(
            name="watch", event="Query.Commit",
            condition="Query.Duration >= 0.0",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        inj = FaultInjector()
        inj.fail_next("condition", count=1)
        sqlcm.set_fault_injector(inj)
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert fired == []  # the faulted evaluation never ran its action
        health = sqlcm.rule_health("watch")
        assert health.condition_errors == 1
        assert health.last_site == "condition"
        # next evaluation (no fault) proceeds normally
        session.execute("SELECT price FROM items WHERE id = 1")
        assert fired == [1]

    def test_other_rules_still_run_after_a_failure(self, server, sqlcm):
        session = _items(server)
        _failing_rule(sqlcm, "bad")
        seen = []
        sqlcm.add_rule(Rule(
            name="good", event="Query.Commit",
            actions=[CallbackAction(lambda s, c: seen.append(1))],
        ))
        session.execute("SELECT price FROM items WHERE id = 1")
        assert seen == [1]

    def test_failure_charges_monitoring_time(self, server, sqlcm):
        session = _items(server)
        session.execute("SELECT price FROM items WHERE id = 1")  # warm cache
        start = server.clock.now
        session.execute("SELECT price FROM items WHERE id = 1")
        clean = server.clock.now - start
        _failing_rule(sqlcm)
        start = server.clock.now
        session.execute("SELECT price FROM items WHERE id = 1")
        faulty = server.clock.now - start
        # the isolated failure is charged to the virtual clock, not free
        assert faulty > clean


class TestQuarantine:
    def test_rule_quarantined_at_threshold(self, server, sqlcm):
        session = _items(server)
        _failing_rule(sqlcm)
        threshold = sqlcm.health.policy.failure_threshold
        for __ in range(threshold):
            assert not sqlcm.rule_health("bad").quarantined
            session.execute("SELECT price FROM items WHERE id = 1")
        health = sqlcm.rule_health("bad")
        assert health.quarantined
        assert health.error_count == threshold
        assert sqlcm.quarantined_rules() == ["bad"]
        # quarantined rules leave the evaluation path entirely
        evals = sqlcm.rules["bad"].evaluation_count
        session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.rules["bad"].evaluation_count == evals
        assert health.error_count == threshold

    def test_enable_quarantined_rule_raises(self, server, sqlcm):
        session = _items(server)
        _failing_rule(sqlcm)
        for __ in range(3):
            session.execute("SELECT price FROM items WHERE id = 1")
        with pytest.raises(RuleQuarantinedError):
            sqlcm.enable_rule("bad", True)

    def test_reactivation_probe_restores_healthy_rule(self, server):
        sqlcm = SQLCM(server, quarantine=QuarantinePolicy(
            failure_threshold=2, window=60.0, cooldown=0.5))
        session = _items(server)
        broken = [True]

        def flaky(s, c):
            if broken[0]:
                raise RuntimeError("boom")

        sqlcm.add_rule(Rule(name="flaky", event="Query.Commit",
                            actions=[CallbackAction(flaky)]))
        for __ in range(2):
            session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.rule_health("flaky").quarantined
        broken[0] = False
        server.clock.advance_to(server.clock.now + 1.0)  # past the cooldown
        session.execute("SELECT price FROM items WHERE id = 1")
        health = sqlcm.rule_health("flaky")
        assert not health.quarantined
        assert health.state == "healthy"
        assert health.quarantine_count == 1

    def test_failed_probe_requarantines_with_backoff(self, server):
        sqlcm = SQLCM(server, quarantine=QuarantinePolicy(
            failure_threshold=2, window=60.0, cooldown=0.5, backoff=2.0))
        session = _items(server)
        _failing_rule(sqlcm, "bad")
        for __ in range(2):
            session.execute("SELECT price FROM items WHERE id = 1")
        first_cooldown = sqlcm.rule_health("bad").current_cooldown
        server.clock.advance_to(server.clock.now + 1.0)
        session.execute("SELECT price FROM items WHERE id = 1")  # probe fails
        health = sqlcm.rule_health("bad")
        assert health.quarantined
        assert health.quarantine_count == 2
        assert health.current_cooldown == pytest.approx(2 * first_cooldown)
        assert "probe" in health.quarantine_reason

    def test_release_quarantine_is_a_dba_override(self, server, sqlcm):
        session = _items(server)
        _failing_rule(sqlcm)
        for __ in range(3):
            session.execute("SELECT price FROM items WHERE id = 1")
        sqlcm.release_quarantine("bad")
        assert not sqlcm.rule_health("bad").quarantined
        assert sqlcm.quarantined_rules() == []

    def test_release_of_healthy_rule_raises(self, server, sqlcm):
        sqlcm.add_rule(Rule(name="ok", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        with pytest.raises(RuleError):
            sqlcm.release_quarantine("ok")

    def test_rule_health_of_unknown_rule_raises(self, sqlcm):
        with pytest.raises(RuleError):
            sqlcm.rule_health("ghost")


class TestRetryAndDeadLetter:
    def test_transient_sink_failure_retried_to_success(self, server, sqlcm):
        session = _items(server)
        calls = []

        def flaky_handler(cmd):
            calls.append(cmd)
            if len(calls) < 3:
                raise ConnectionError("sink down")

        sqlcm.external_handler = flaky_handler
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert len(calls) == 3                       # 2 failures + success
        assert len(sqlcm.command_journal) == 1       # delivered exactly once
        assert sqlcm.dead_letters.depth == 0
        assert sqlcm.rule_health("notify").error_count == 0

    def test_dead_letter_captures_every_undelivered_side_effect(
            self, server, sqlcm):
        session = _items(server)

        def dead_handler(cmd):
            raise ConnectionError("sink permanently down")

        sqlcm.external_handler = dead_handler
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        for __ in range(2):  # default threshold is 3: stay under quarantine
            result = session.execute("SELECT price FROM items WHERE id = 1")
            assert result.error is None
        rule = sqlcm.rules["notify"]
        # conservation: every firing is either delivered or dead-lettered
        assert rule.fire_count == 2
        assert sqlcm.dead_letters.depth + len(sqlcm.command_journal) == 2
        entry = sqlcm.dead_letters.entries("notify")[0]
        assert entry.action == "RunExternalAction"
        assert entry.attempts == sqlcm.retry_policy.max_attempts
        assert "ConnectionError" in entry.error
        assert "ping" in entry.payload

    def test_dead_letters_replay_after_sink_recovers(self, server, sqlcm):
        session = _items(server)
        sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.dead_letters.depth == 1
        delivered = []
        sqlcm.external_handler = delivered.append
        assert sqlcm.dead_letters.replay(sqlcm) == 1
        assert sqlcm.dead_letters.depth == 0
        assert len(delivered) == 1 and delivered[0].startswith("ping ")

    def test_failed_replay_keeps_entry_with_bumped_attempts(
            self, server, sqlcm):
        session = _items(server)
        sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        session.execute("SELECT price FROM items WHERE id = 1")
        before = sqlcm.dead_letters.entries()[0].attempts
        assert sqlcm.dead_letters.replay(sqlcm) == 0
        entry = sqlcm.dead_letters.entries()[0]
        assert entry.attempts == before + 1

    def test_backoff_charges_virtual_time_not_wall_time(self, server):
        retry = RetryPolicy(max_attempts=3, base_delay=0.5, backoff=2.0)
        sqlcm = SQLCM(server, retry=retry)
        session = _items(server)
        sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping")]))
        before = server.clock.now
        session.execute("SELECT price FROM items WHERE id = 1")
        # two backoff delays: 0.5s before attempt 2, 1.0s before attempt 3,
        # charged to the virtual clock (not slept in wall time)
        assert server.clock.now - before >= 1.5

    def test_internal_actions_fail_fast_without_retry(self, server, sqlcm):
        session = _items(server)
        attempts = []

        def explode(s, c):
            attempts.append(1)
            raise RuntimeError("boom")

        sqlcm.add_rule(Rule(name="internal", event="Query.Commit",
                            actions=[CallbackAction(explode)]))
        session.execute("SELECT price FROM items WHERE id = 1")
        assert len(attempts) == 1  # no retry for non-side-effect actions
        assert sqlcm.dead_letters.depth == 0


class TestFaultInjector:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("nonsense")
        with pytest.raises(ValueError):
            FaultInjector().fail_next("nonsense")

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(rate=0.1, mode="meltdown")

    def test_same_seed_same_fault_sequence(self):
        def sequence(seed):
            inj = FaultInjector(seed=seed)
            inj.arm("condition", rate=0.3)
            outcomes = []
            for __ in range(50):
                try:
                    inj.check("condition")
                    outcomes.append(0)
                except FaultInjected:
                    outcomes.append(1)
            return outcomes

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_sites_draw_independent_streams(self):
        def condition_outcomes(arm_other):
            inj = FaultInjector(seed=3)
            inj.arm("condition", rate=0.3)
            if arm_other:
                inj.arm("sink", rate=0.5)
            outcomes = []
            for i in range(40):
                if arm_other and i % 2:
                    try:
                        inj.check("sink")
                    except FaultInjected:
                        pass
                try:
                    inj.check("condition")
                    outcomes.append(0)
                except FaultInjected:
                    outcomes.append(1)
            return outcomes

        # interleaving checks of another armed site never perturbs this one
        assert condition_outcomes(False) == condition_outcomes(True)

    def test_fail_next_is_a_deterministic_burst(self):
        inj = FaultInjector()
        inj.fail_next("action", count=2)
        for __ in range(2):
            with pytest.raises(FaultInjected):
                inj.check("action")
        assert inj.check("action") == 0.0
        assert inj.injected["action"] == 2

    def test_latency_mode_charges_monitor_cost(self, server, sqlcm):
        session = _items(server)
        inj = FaultInjector(seed=1)
        inj.arm("condition", rate=1.0, mode="latency", latency=0.25)
        sqlcm.set_fault_injector(inj)
        sqlcm.add_rule(Rule(name="slow", event="Query.Commit",
                            condition="Query.Duration >= 0.0",
                            actions=[CallbackAction(lambda s, c: None)]))
        before = server.clock.now
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert server.clock.now - before >= 0.25
        assert sqlcm.rule_health("slow").error_count == 0

    def test_timer_fault_loses_alert_but_timer_survives(self, server, sqlcm):
        fired = []
        sqlcm.add_rule(Rule(name="tick", event="Timer.Alert",
                            actions=[CallbackAction(
                                lambda s, c: fired.append(1))]))
        inj = FaultInjector()
        inj.fail_next("timer", count=1)
        sqlcm.set_fault_injector(inj)
        sqlcm.set_timer("t", interval=1.0, repeats=3)
        server.run(until=10.0)
        assert len(fired) == 2  # first alert lost, remaining two delivered


class TestPersistChecksums:
    def _lat_with_rows(self, server, sqlcm, n=3):
        session = _items(server)
        sqlcm.create_lat(LATDefinition(
            name="L", grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"]))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("L")]))
        for __ in range(n):
            session.execute("SELECT price FROM items WHERE id = 1")
        return session

    def test_checksummed_roundtrip(self, server, sqlcm):
        self._lat_with_rows(server, sqlcm)
        assert sqlcm.persist_lat("L", "snap") == 1
        sqlcm.lat("L").reset()
        assert sqlcm.restore_lat("L", "snap") == 1
        assert sqlcm.lat("L").rows() == [{"App": "tests", "N": 3}]

    def test_corrupted_row_detected_on_restore(self, server, sqlcm):
        self._lat_with_rows(server, sqlcm)
        sqlcm.persist_lat("L", "snap")
        table = server.table("snap")
        rowid = next(iter(table.scan()))[0]
        table.update(rowid, {1: 999})  # flip the count behind the checksum
        sqlcm.lat("L").reset()
        with pytest.raises(PersistCorruptionError):
            sqlcm.restore_lat("L", "snap")
        assert len(sqlcm.lat("L")) == 0  # degraded to rebuild-from-scratch

    def test_partial_write_fault_leaves_detectable_torn_rows(
            self, server, sqlcm):
        self._lat_with_rows(server, sqlcm)
        inj = FaultInjector()
        sqlcm.set_fault_injector(inj)
        inj.fail_next("lat.persist", mode="partial")
        with pytest.raises(FaultInjected):
            sqlcm.persist_lat("L", "snap")
        assert len(list(server.table("snap").scan())) >= 1  # torn rows stay
        with pytest.raises(PersistCorruptionError):
            sqlcm.restore_lat("L", "snap")

    def test_exception_fault_compensates_to_clean_slate(self, server, sqlcm):
        self._lat_with_rows(server, sqlcm)
        sqlcm.persist_lat("L", "pre")  # create table with one good row
        inj = FaultInjector()
        sqlcm.set_fault_injector(inj)
        inj.fail_next("lat.persist", mode="exception")
        with pytest.raises(FaultInjected):
            sqlcm.persist_lat("L", "pre")
        # the failed persist left nothing behind: only the first row
        assert len(list(server.table("pre").scan())) == 1
        # ...so the retried delivery is safe from duplicates
        sqlcm.persist_lat("L", "pre")
        assert len(list(server.table("pre").scan())) == 2

    def test_unvalidated_restore_skips_checksum(self, server, sqlcm):
        self._lat_with_rows(server, sqlcm)
        sqlcm.persist_lat("L", "snap")
        table = server.table("snap")
        rowid = next(iter(table.scan()))[0]
        table.update(rowid, {1: 999})
        sqlcm.lat("L").reset()
        assert sqlcm.restore_lat("L", "snap", validate=False) == 1
        assert sqlcm.lat("L").rows()[0]["N"] == 999

    def test_persist_via_rule_dead_letters_on_persistent_fault(
            self, server, sqlcm):
        session = _items(server)
        sqlcm.create_lat(LATDefinition(
            name="L", grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"]))
        inj = FaultInjector()
        inj.arm("lat.persist", rate=1.0)
        sqlcm.set_fault_injector(inj)
        sqlcm.add_rule(Rule(
            name="saver", event="Query.Commit",
            actions=[InsertAction("L"),
                     PersistAction("snap", source="L")]))
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert sqlcm.dead_letters.depth == 1
        assert sqlcm.dead_letters.entries()[0].action == "PersistAction"


class TestMetaMonitoring:
    def test_rule_errors_are_monitorable_events(self, server, sqlcm):
        session = _items(server)
        failures = []
        sqlcm.add_rule(Rule(
            name="watchdog", event="RuleFailure.Error",
            actions=[CallbackAction(
                lambda s, c: failures.append(
                    (c["rulefailure"].get("Rule_Name"),
                     c["rulefailure"].get("Site"))))],
        ))
        _failing_rule(sqlcm, "bad")
        session.execute("SELECT price FROM items WHERE id = 1")
        assert failures == [("bad", "action")]

    def test_rule_failures_aggregate_into_lats(self, server, sqlcm):
        session = _items(server)
        sqlcm.create_lat(LATDefinition(
            name="Err_LAT", monitored_class="RuleFailure",
            grouping=["RuleFailure.Rule_Name AS R"],
            aggregations=["COUNT(RuleFailure.Error_Count) AS N"]))
        sqlcm.add_rule(Rule(name="watchdog", event="RuleFailure.Error",
                            actions=[InsertAction("Err_LAT")]))
        _failing_rule(sqlcm, "bad")
        for __ in range(2):
            session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.lat("Err_LAT").rows() == [{"R": "bad", "N": 2}]

    def test_failing_watchdog_does_not_recurse(self, server, sqlcm):
        session = _items(server)
        sqlcm.add_rule(Rule(
            name="watchdog", event="RuleFailure.Error",
            actions=[CallbackAction(lambda s, c: 1 / 0)],
        ))
        _failing_rule(sqlcm, "bad")
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        # the watchdog's own failure is accounted but raises no meta event
        assert sqlcm.rule_health("watchdog").error_count == 1
        assert sqlcm.rule_errors == 2  # bad + watchdog, no recursion


class TestBlanketFaults:
    def test_ten_percent_faults_everywhere_no_query_errors(self, server):
        inj = FaultInjector(seed=99)
        for site in FAULT_SITES:
            inj.arm(site, rate=0.10)
        sqlcm = SQLCM(server, faults=inj)
        session = _items(server)
        sqlcm.create_lat(LATDefinition(
            name="Recent", grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS D"],
            ordering=["Qid DESC"], max_rows=3))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            condition="Query.Duration >= 0.0",
                            actions=[InsertAction("Recent")]))
        sqlcm.add_rule(Rule(name="evictions", event="Evicted.Evict",
                            actions=[CallbackAction(lambda s, c: None)]))
        sqlcm.add_rule(Rule(name="mail", event="Query.Commit",
                            actions=[SendMailAction("q {Query.ID}", "dba")]))
        sqlcm.add_rule(Rule(name="save", event="Query.Commit",
                            actions=[PersistAction("audit", source="Recent")]))
        sqlcm.set_timer("t", interval=0.001, repeats=20)
        results = [session.execute("SELECT price FROM items WHERE id = 1")
                   for __ in range(40)]
        server.run(until=server.clock.now + 1.0)  # drain the timer
        assert all(r.error is None for r in results)
        assert inj.injected_total() > 0
        # everything that went wrong is accounted somewhere
        assert sqlcm.rule_errors > 0


class TestDeterminism:
    def _faulty_run(self):
        from repro import DatabaseServer, ServerConfig
        server = DatabaseServer(ServerConfig(track_completed_queries=True))
        inj = FaultInjector(seed=5)
        for site in FAULT_SITES:
            inj.arm(site, rate=0.15)
        sqlcm = SQLCM(server, faults=inj)
        session = _items(server)
        sqlcm.create_lat(LATDefinition(
            name="Recent", grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS D"],
            ordering=["Qid DESC"], max_rows=3))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("Recent")]))
        sqlcm.add_rule(Rule(name="mail", event="Query.Commit",
                            actions=[SendMailAction("q {Query.ID}", "dba")]))
        for __ in range(30):
            session.execute("SELECT price FROM items WHERE id = 1")
        return (server.clock.now, inj.snapshot(), sqlcm.health.snapshot(),
                sqlcm.dead_letters.snapshot(), len(sqlcm.outbox),
                sqlcm.lat("Recent").integrity_signature(),
                sqlcm.rule_errors)

    def test_same_seed_bit_identical_runs(self):
        assert self._faulty_run() == self._faulty_run()


class TestDeadLetterRing:
    def test_journal_is_ring_bounded(self):
        from repro.core.resilience import DeadLetter, DeadLetterJournal
        journal = DeadLetterJournal(capacity=3)
        for i in range(5):
            journal.append(DeadLetter(
                time=float(i), rule=f"r{i}", action="A",
                payload=str(i), error="down", attempts=3))
        assert journal.depth == 3
        assert journal.dropped == 2
        # oldest entries were displaced, newest survive
        assert [e.rule for e in journal.entries()] == ["r2", "r3", "r4"]

    def test_invalid_capacity_rejected(self):
        from repro.core.resilience import DeadLetterJournal
        with pytest.raises(ValueError):
            DeadLetterJournal(capacity=0)

    def test_snapshot_includes_drop_counters(self):
        from repro.core.resilience import DeadLetter, DeadLetterJournal
        journal = DeadLetterJournal(capacity=1)
        for i in range(2):
            journal.append(DeadLetter(
                time=float(i), rule="r", action="A",
                payload=str(i), error="down", attempts=3))
        assert journal.dropped == 1


class TestRedelivery:
    def _dead_letter_one(self, server, sqlcm):
        session = _items(server)
        sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.dead_letters.depth == 1
        return session

    def test_redeliver_after_sink_recovers(self, server, sqlcm):
        self._dead_letter_one(server, sqlcm)
        delivered = []
        sqlcm.external_handler = delivered.append
        report = sqlcm.dead_letters.redeliver(sqlcm)
        assert report.delivered == 1
        assert report.dropped == 0
        assert report.remaining == 0
        assert sqlcm.dead_letters.depth == 0
        assert len(delivered) == 1 and delivered[0].startswith("ping ")

    def test_redeliver_retries_transient_failures_within_the_sweep(
            self, server, sqlcm):
        self._dead_letter_one(server, sqlcm)
        calls = []

        def flaky(cmd):
            calls.append(cmd)
            if len(calls) < 2:
                raise ConnectionError("still warming up")

        sqlcm.external_handler = flaky
        report = sqlcm.dead_letters.redeliver(sqlcm)
        # one redelivery sweep is a full retry cycle, not a single attempt
        assert len(calls) == 2
        assert report.delivered == 1
        assert sqlcm.dead_letters.depth == 0

    def test_redeliver_backoff_charges_virtual_time(self, server):
        retry = RetryPolicy(max_attempts=3, base_delay=0.5, backoff=2.0)
        sqlcm = SQLCM(server, retry=retry)
        self._dead_letter_one(server, sqlcm)
        sqlcm.dead_letters.redeliver(sqlcm)  # sink still down
        # 0.5s before attempt 2 and 1.0s before attempt 3 land in the pool
        assert server.take_monitor_cost() >= 1.5

    def test_poison_entry_dropped_after_cumulative_attempts(
            self, server, sqlcm):
        self._dead_letter_one(server, sqlcm)
        # sink stays down: each sweep adds max_attempts to the entry
        report = None
        for __ in range(4):
            report = sqlcm.dead_letters.redeliver(sqlcm, drop_after=9)
            if report.dropped:
                break
        assert report is not None and report.dropped == 1
        assert sqlcm.dead_letters.depth == 0
        assert sqlcm.dead_letters.poison_dropped == 1

    def test_cli_deadletters_retry_verb(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        shell.sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        shell.sqlcm.add_rule(Rule(
            name="notify", event="Query.Commit",
            actions=[RunExternalAction("ping")]))
        shell.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY);"
            "INSERT INTO t VALUES (1);"
            "SELECT a FROM t;"
        )
        depth = shell.sqlcm.dead_letters.depth
        assert depth > 0
        delivered = []
        shell.sqlcm.external_handler = delivered.append
        shell.execute_line(".deadletters retry")
        assert f"redelivered {depth}" in out.getvalue()
        assert delivered == ["ping"] * depth
        assert shell.sqlcm.dead_letters.depth == 0


class TestDispatchQueueHygiene:
    def test_stale_queue_cleared_when_processing_raises(
            self, server, sqlcm, monkeypatch):
        session = _items(server)
        seen = []
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[CallbackAction(
                                lambda s, c: seen.append(1))]))

        original = sqlcm._process_event
        calls = {"n": 0}

        def explode_once(event, payload):
            calls["n"] += 1
            if calls["n"] == 1:
                sqlcm._event_queue.append(("query.commit", payload))
                raise RuntimeError("engine bug")
            return original(event, payload)

        monkeypatch.setattr(sqlcm, "_process_event", explode_once)
        with pytest.raises(RuntimeError):
            sqlcm.dispatch_event("query.commit", {"query": None})
        # regression: the deferred event must not leak into the next dispatch
        assert not sqlcm._event_queue
        monkeypatch.undo()
        session.execute("SELECT price FROM items WHERE id = 1")
        assert seen == [1]


class TestHealthReporting:
    def test_full_report_has_rule_health_section(self, server, sqlcm):
        from repro.monitoring.report import full_report
        session = _items(server)
        _failing_rule(sqlcm)
        for __ in range(3):
            session.execute("SELECT price FROM items WHERE id = 1")
        text = full_report(server, sqlcm)
        assert "RULE HEALTH" in text
        assert "quarantined" in text
        assert "rule errors isolated: 3" in text
        assert "dead-letter journal depth: 0" in text

    def test_cli_rules_shows_quarantine_state(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        _failing_rule(shell.sqlcm)
        shell.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY);"
            "INSERT INTO t VALUES (1);"
            "SELECT a FROM t;"
            "SELECT a FROM t;"
            "SELECT a FROM t;"
        )
        shell.execute_line(".rules")
        text = out.getvalue()
        assert "[quarantined] bad ON Query.Commit" in text
        assert "errors" in text

    def test_cli_deadletters_command(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        shell.execute_line(".deadletters")
        assert "(empty)" in out.getvalue()
        shell.sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("down"))
        shell.sqlcm.add_rule(Rule(
            name="notify", event="Query.Commit",
            actions=[RunExternalAction("ping")]))
        shell.run_script(
            "CREATE TABLE t (a INT PRIMARY KEY);"
            "INSERT INTO t VALUES (1);"
            "SELECT a FROM t;"
        )
        shell.execute_line(".deadletters")
        text = out.getvalue()
        assert "rule=notify" in text
        assert "ConnectionError" in text


class TestExistingErrorPaths:
    def test_persist_without_source_rejected(self, sqlcm):
        with pytest.raises(ActionError, match="explicit source"):
            PersistAction("t")._resolve_source(sqlcm, None)

    def test_persist_unknown_source_rejected(self, sqlcm):
        with pytest.raises(ActionError, match="neither a LAT nor a class"):
            PersistAction("t", source="Ghost").validate(sqlcm, None)

    def test_cancel_without_underlying_query_rejected(self, sqlcm):
        cls = sqlcm.schema.monitored_class("Query")
        orphan = MonitoredObject(cls, {}, extra={"id": 1}, source=None)
        with pytest.raises(ActionError, match="no underlying query"):
            CancelAction().execute(sqlcm, None, {"query": orphan}, {})

    def test_cancel_invalid_target_rejected(self, sqlcm):
        with pytest.raises(ActionError, match="Cancel can only target"):
            CancelAction(target="Server").validate(sqlcm, None)

    def test_set_timer_nonpositive_interval_rejected(self, sqlcm):
        with pytest.raises(ActionError, match="interval must be positive"):
            SetTimerAction("t", interval=0.0, repeats=3).validate(sqlcm, None)
        # repeats=0 means "disable": a zero interval is fine there
        SetTimerAction("t", interval=0.0, repeats=0).validate(sqlcm, None)

    def test_enable_unknown_rule_rejected(self, sqlcm):
        with pytest.raises(RuleError, match="ghost"):
            sqlcm.enable_rule("ghost", True)

    def test_remove_unknown_rule_rejected(self, sqlcm):
        with pytest.raises(RuleError, match="ghost"):
            sqlcm.remove_rule("ghost")
