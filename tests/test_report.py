"""Tests for the DBA text reports."""

import pytest

from repro import (InsertAction, LATDefinition, Rule, SQLCM, Statement)
from repro.monitoring.report import (blocking_health, full_report,
                                     lat_contents,
                                     monitoring_configuration,
                                     server_activity)


@pytest.fixture
def world(items_server):
    sqlcm = SQLCM(items_server)
    sqlcm.create_lat(LATDefinition(
        name="AppLat",
        grouping=["Query.Application AS App"],
        aggregations=["COUNT(Query.ID) AS N",
                      "AVG(Query.Duration) AS AvgD"],
    ))
    sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                        actions=[InsertAction("AppLat")]))
    return items_server, sqlcm


class TestReports:
    def test_monitoring_configuration_lists_rules_and_lats(self, world):
        server, sqlcm = world
        text = monitoring_configuration(sqlcm)
        assert "track" in text
        assert "Query.Commit" in text
        assert "AppLat" in text

    def test_lat_contents_renders_rows(self, world):
        server, sqlcm = world
        session = server.create_session(application="crm")
        session.execute("SELECT id FROM items WHERE id = 1")
        text = lat_contents(sqlcm, "AppLat")
        assert "crm" in text
        assert "App" in text and "N" in text

    def test_lat_contents_empty(self, world):
        __, sqlcm = world
        assert "empty" in lat_contents(sqlcm, "AppLat")

    def test_blocking_health_idle(self, world):
        server, sqlcm = world
        text = blocking_health(server, sqlcm)
        assert "no queries are currently blocked" in text
        assert "deadlocks detected so far: 0" in text

    def test_blocking_health_shows_waits(self, world):
        server, sqlcm = world
        writer = server.create_session(user="w")
        reader = server.create_session(user="r")
        writer.submit_script([
            "BEGIN",
            "UPDATE items SET qty = 0 WHERE id = 1",
            Statement("COMMIT", think_time=5.0),
        ])
        reader.submit_script([
            Statement("SELECT name FROM items WHERE id = 1",
                      think_time=0.1),
        ])
        server.run(until=1.0)  # reader is mid-wait now
        text = blocking_health(server, sqlcm)
        assert "blocked qid" in text
        assert "UPDATE items" in text
        server.run()  # drain

    def test_server_activity_recent_queries(self, world):
        server, sqlcm = world
        session = server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        text = server_activity(server)
        assert "SELECT id FROM items" in text
        assert "committed" in text

    def test_full_report_combines_sections(self, world):
        server, sqlcm = world
        text = full_report(server, sqlcm)
        assert "SERVER ACTIVITY" in text
        assert "BLOCKING HEALTH" in text
        assert "MONITORING CONFIGURATION" in text

    def test_cli_report_command(self, world):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(out=out)
        shell.execute_line(".report")
        assert "MONITORING CONFIGURATION" in out.getvalue()
