"""Tests for logical planning and the optimizer (access paths, joins)."""

import pytest

from repro.engine.catalog import Catalog, ColumnDef, IndexDef, TableSchema
from repro.engine.planner import physical as phys
from repro.engine.planner.logical import build_logical_plan
from repro.engine.planner.optimizer import Optimizer
from repro.engine.sqlparse.parser import parse_statement
from repro.engine.types import SQLType
from repro.errors import BindError, PlanError
from repro.sim.costs import CostModel


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.create_table(TableSchema("items", [
        ColumnDef("id", SQLType.INTEGER, nullable=False),
        ColumnDef("name", SQLType.STRING),
        ColumnDef("price", SQLType.FLOAT),
        ColumnDef("cat_id", SQLType.INTEGER),
    ], primary_key=["id"]))
    catalog.table("items").add_index(
        IndexDef("ix_items_cat", "items", ("cat_id",)))
    catalog.create_table(TableSchema("cats", [
        ColumnDef("cat_id", SQLType.INTEGER, nullable=False),
        ColumnDef("label", SQLType.STRING),
    ], primary_key=["cat_id"]))
    return catalog


@pytest.fixture
def optimizer(catalog):
    rows = {"items": 10_000, "cats": 50}
    return Optimizer(catalog, lambda t: rows.get(t.lower(), 0), CostModel())


def plan(optimizer, catalog, sql):
    stmt = parse_statement(sql)
    return optimizer.optimize(build_logical_plan(stmt, catalog))


class TestAccessPaths:
    def test_pk_equality_uses_index_seek(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT name FROM items WHERE id = 5")
        scan = p.child
        assert isinstance(scan, phys.PhysIndexSeek)
        assert scan.index == "pk_items"
        assert scan.estimated_rows == 1.0

    def test_secondary_index_equality(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE cat_id = 3")
        assert isinstance(p.child, phys.PhysIndexSeek)
        assert p.child.index == "ix_items_cat"

    def test_range_on_pk_uses_seek(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE id BETWEEN 10 AND 20")
        seek = p.child
        assert isinstance(seek, phys.PhysIndexSeek)
        assert seek.range_low_fn is not None
        assert seek.range_high_fn is not None

    def test_non_indexed_predicate_scans(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE price > 5.0")
        assert isinstance(p.child, phys.PhysTableScan)
        assert p.child.filter_fn is not None

    def test_residual_predicate_attached_to_seek(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE id = 5 AND price > 1.0")
        seek = p.child
        assert isinstance(seek, phys.PhysIndexSeek)
        assert seek.filter_fn is not None

    def test_duplicate_same_side_bounds_kept_as_residual(self, optimizer,
                                                         catalog):
        # a seek honours one bound per side; ``id < 10 AND id <= 5`` must
        # keep the unconsumed bound as a residual filter, not drop it
        p = plan(optimizer, catalog,
                 "SELECT name FROM items "
                 "WHERE id > 0 AND id < 10 AND id <= 5")
        seek = p.child
        assert isinstance(seek, phys.PhysIndexSeek)
        assert seek.range_low_fn is not None
        assert seek.range_high_fn is not None
        assert seek.filter_fn is not None

    def test_duplicate_lower_bounds_kept_as_residual(self, optimizer,
                                                     catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items "
                 "WHERE id > 2 AND id >= 4 AND id < 100")
        seek = p.child
        assert isinstance(seek, phys.PhysIndexSeek)
        assert seek.range_low_fn is not None
        assert seek.filter_fn is not None

    def test_no_predicate_full_scan(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT name FROM items")
        assert isinstance(p.child, phys.PhysTableScan)
        assert p.child.filter_fn is None

    def test_flipped_operands_still_sargable(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT name FROM items WHERE 5 = id")
        assert isinstance(p.child, phys.PhysIndexSeek)

    def test_parameterized_predicate_sargable(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE id = @key")
        assert isinstance(p.child, phys.PhysIndexSeek)


class TestJoins:
    def test_equi_join_becomes_hash_join(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT i.name, c.label FROM items i "
                 "JOIN cats c ON i.cat_id = c.cat_id")
        assert isinstance(p.child, phys.PhysHashJoin)

    def test_join_condition_pushdown_single_table(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT i.name FROM items i JOIN cats c "
                 "ON i.cat_id = c.cat_id WHERE i.id = 7")
        join = p.child
        assert isinstance(join, phys.PhysHashJoin)
        assert isinstance(join.left, phys.PhysIndexSeek)

    def test_non_equi_join_uses_nested_loops(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT i.name FROM items i JOIN cats c "
                 "ON i.cat_id > c.cat_id")
        assert isinstance(p.child, phys.PhysNLJoin)

    def test_left_join_preserved(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT i.name, c.label FROM items i "
                 "LEFT JOIN cats c ON i.cat_id = c.cat_id")
        assert p.child.kind == "LEFT"

    def test_cross_table_residual_inside_join(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT i.name FROM items i JOIN cats c "
                 "ON i.cat_id = c.cat_id WHERE i.price > c.cat_id")
        join = p.child
        assert isinstance(join, phys.PhysHashJoin)
        assert join.residual_fn is not None

    def test_duplicate_binding_rejected(self, optimizer, catalog):
        with pytest.raises(BindError):
            plan(optimizer, catalog,
                 "SELECT 1 FROM items x JOIN cats x ON x.cat_id = x.cat_id")


class TestAggregatesAndShaping:
    def test_group_by_plan_shape(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT cat_id, COUNT(*), AVG(price) FROM items "
                 "GROUP BY cat_id")
        assert isinstance(p, phys.PhysProject)
        assert isinstance(p.child, phys.PhysAggregate)
        assert len(p.child.aggs) == 2

    def test_scalar_aggregate(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT COUNT(*) FROM items")
        assert p.child.scalar

    def test_having_becomes_filter_over_aggregate(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT cat_id FROM items GROUP BY cat_id "
                 "HAVING COUNT(*) > 5")
        assert isinstance(p.child, phys.PhysFilter)
        assert isinstance(p.child.child, phys.PhysAggregate)

    def test_having_without_group_rejected(self, optimizer, catalog):
        with pytest.raises(PlanError):
            plan(optimizer, catalog,
                 "SELECT name FROM items HAVING name > 'a'")

    def test_ungrouped_column_rejected(self, optimizer, catalog):
        with pytest.raises(BindError):
            plan(optimizer, catalog,
                 "SELECT name, COUNT(*) FROM items GROUP BY cat_id")

    def test_order_limit_project_shape(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items ORDER BY price DESC LIMIT 3")
        assert isinstance(p, phys.PhysProject)
        assert isinstance(p.child, phys.PhysLimit)
        assert isinstance(p.child.child, phys.PhysSort)

    def test_order_by_non_projected_column_allowed(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items ORDER BY price")
        assert isinstance(p.child, phys.PhysSort)

    def test_distinct_on_top(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT DISTINCT name FROM items")
        assert isinstance(p, phys.PhysDistinct)

    def test_star_expansion(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT * FROM items")
        assert [c.name for c in p.columns] == ["id", "name", "price",
                                               "cat_id"]


class TestDMLPlans:
    def test_update_child_locks_exclusively(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "UPDATE items SET price = price * 2 WHERE id = 1")
        assert isinstance(p, phys.PhysUpdate)
        assert p.child.lock_mode == "X"

    def test_delete_plan(self, optimizer, catalog):
        p = plan(optimizer, catalog, "DELETE FROM items WHERE cat_id = 9")
        assert isinstance(p, phys.PhysDelete)
        assert p.child.with_rowids

    def test_insert_plan(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "INSERT INTO items (id, name, price, cat_id) "
                 "VALUES (1, 'x', 2.0, 3)")
        assert isinstance(p, phys.PhysInsert)
        assert p.estimated_rows == 1.0

    def test_insert_arity_mismatch_rejected(self, optimizer, catalog):
        with pytest.raises(PlanError):
            plan(optimizer, catalog, "INSERT INTO items (id) VALUES (1, 2)")

    def test_update_unknown_column_rejected(self, optimizer, catalog):
        with pytest.raises(BindError):
            plan(optimizer, catalog, "UPDATE items SET nope = 1")


class TestCostEstimates:
    def test_seek_cheaper_than_scan_for_point_query(self, optimizer,
                                                    catalog):
        seek = plan(optimizer, catalog,
                    "SELECT name FROM items WHERE id = 1").child
        scan = plan(optimizer, catalog,
                    "SELECT name FROM items WHERE price = 1.0").child
        assert seek.estimated_cost < scan.estimated_cost

    def test_estimates_monotone_up_the_tree(self, optimizer, catalog):
        p = plan(optimizer, catalog,
                 "SELECT name FROM items WHERE price > 2 ORDER BY name")
        node = p
        while node.children:
            child = node.children[0]
            assert node.estimated_cost >= child.estimated_cost
            node = child

    def test_plan_node_count(self, optimizer, catalog):
        p = plan(optimizer, catalog, "SELECT name FROM items")
        assert phys.plan_node_count(p) == 2
