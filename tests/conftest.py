"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import DatabaseServer, ServerConfig, SQLCM
from repro.workloads.tpch import TPCHConfig, setup_tpch


@pytest.fixture
def server() -> DatabaseServer:
    """A fresh server tracking completed queries (handy for assertions)."""
    return DatabaseServer(ServerConfig(track_completed_queries=True))


@pytest.fixture
def session(server):
    return server.create_session(user="tester", application="tests")


@pytest.fixture
def items_server(server):
    """Server with a small 'items' table loaded."""
    server.execute_ddl(
        "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, "
        "name VARCHAR(30), price FLOAT, qty INT, segment VARCHAR(10))"
    )
    loader = server.create_session()
    loader.execute(
        "INSERT INTO items (id, name, price, qty, segment) VALUES "
        "(1, 'apple', 1.5, 10, 'fruit'), "
        "(2, 'pear', 2.0, 5, 'fruit'), "
        "(3, 'plum', 0.5, 40, 'fruit'), "
        "(4, 'hammer', 9.5, 3, 'tools'), "
        "(5, 'wrench', 7.25, 8, 'tools'), "
        "(6, 'nail', 0.05, 500, 'tools')"
    )
    return server


@pytest.fixture
def sqlcm(server) -> SQLCM:
    return SQLCM(server)


@pytest.fixture(scope="session")
def tiny_tpch_config() -> TPCHConfig:
    return TPCHConfig().scaled(0.02)  # ~1200 lineitem rows


@pytest.fixture
def tpch_server(tiny_tpch_config):
    """Server with a tiny TPC-H dataset loaded (fresh per test)."""
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    counts = setup_tpch(server, tiny_tpch_config)
    server.tpch_counts = counts  # type: ignore[attr-defined]
    return server
