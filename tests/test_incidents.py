"""Incident lifecycle, remediation guardrails, history, investigation."""

from __future__ import annotations

import pytest

from repro import SQLCM, Rule, Statement
from repro.core.actions import CallbackAction
from repro.core.incidents import (ALERT_TABLE, INCIDENT_TABLE,
                                  REMEDIATION_TABLE, SWEEP_TIMER,
                                  CancelBlockerAction, IncidentPolicy,
                                  OpenIncidentAction, QuarantineRuleAction,
                                  ResetLATAction)
from repro.errors import ActionError, IncidentError
from repro.monitoring.investigate import (incident_status, investigate,
                                          render_investigation)


def _manual_policy(**overrides) -> IncidentPolicy:
    """A policy whose sweeps are driven by hand (no timer)."""
    base = dict(escalation_timeout=5.0, clear_after=2.0, sweep_interval=0.0)
    base.update(overrides)
    return IncidentPolicy(**base)


class TestPolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(escalation_timeout=0.0), dict(clear_after=-1.0),
        dict(max_remediations=0), dict(flap_threshold=1),
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(IncidentError):
            _manual_policy(**kwargs)

    def test_manager_is_lazy_and_singleton(self, sqlcm):
        assert not sqlcm.has_incidents
        manager = sqlcm.incident_manager(_manual_policy())
        assert sqlcm.incident_manager() is manager
        assert not sqlcm.has_incidents  # nothing reported yet


class TestLifecycle:
    def test_open_dedup_ack_resolve(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        first = manager.report("blocking", "row-1", summary="hot row")
        again = manager.report("Blocking", "row-1")  # class is case-blind
        assert again is first
        assert first.occurrences == 2
        assert manager.deduplicated == 1
        manager.ack(first.incident_id)
        with pytest.raises(IncidentError):
            manager.ack(first.incident_id)  # only open -> acked
        manager.resolve(first.incident_id, resolution="fixed")
        assert first.resolved_at is not None
        with pytest.raises(IncidentError):
            manager.resolve(first.incident_id)
        # a later detection of the same key opens a NEW incident
        second = manager.report("blocking", "row-1")
        assert second.incident_id != first.incident_id
        assert [p for _, p, _ in first.timeline] == \
            ["opened", "acked", "resolved"]

    def test_unknown_incident(self, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        with pytest.raises(IncidentError):
            manager.incident(99)

    def test_sweep_escalates_then_auto_resolves(self, server, sqlcm):
        manager = sqlcm.incident_manager(
            _manual_policy(escalation_timeout=1.0, clear_after=3.0))
        incident = manager.report("overload", "governor")
        server.clock.advance(1.5)
        manager.sweep()
        assert incident.escalated and incident.severity == "critical"
        assert manager.escalations == 1
        manager.sweep()  # escalation fires once
        assert manager.escalations == 1
        server.clock.advance(2.0)  # quiet for 3.5s total
        manager.sweep()
        assert incident.state == "resolved"
        assert "quiet" in incident.resolution

    def test_acked_incident_is_not_escalated(self, server, sqlcm):
        manager = sqlcm.incident_manager(
            _manual_policy(escalation_timeout=1.0, clear_after=10.0))
        incident = manager.report("overload", "governor")
        manager.ack(incident.incident_id)
        server.clock.advance(2.0)
        manager.sweep()
        assert not incident.escalated

    def test_sweep_timer_runs_on_virtual_clock(self, server):
        sqlcm = SQLCM(server)
        manager = sqlcm.incident_manager(IncidentPolicy(
            escalation_timeout=10.0, clear_after=1.0, sweep_interval=0.5))
        assert SWEEP_TIMER in sqlcm.rules
        manager.report("blocking", "row-9")
        server.run(until=2.0)
        assert manager.incidents()[0].state == "resolved"

    def test_meta_events_dispatch_when_watched(self, server, sqlcm):
        seen = []
        sqlcm.add_rule(Rule(
            name="iwatch", event="Incident.Update",
            actions=[CallbackAction(
                lambda s, c: seen.append(
                    (c["incident"].get("Phase"),
                     c["incident"].get("Class"))))],
        ))
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1")
        manager.resolve(incident.incident_id)
        assert ("opened", "blocking") in seen
        assert ("resolved", "blocking") in seen

    def test_timeline_digest_tracks_lifecycle(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        base = manager.timeline_digest()
        incident = manager.report("blocking", "row-1")
        after_open = manager.timeline_digest()
        assert after_open != base
        manager.resolve(incident.incident_id)
        assert manager.timeline_digest() != after_open


class TestRemediationGuardrails:
    def test_budget_suppresses_beyond_max(self, server, sqlcm):
        manager = sqlcm.incident_manager(
            _manual_policy(max_remediations=2, remediation_window=10.0))
        incident = manager.report("blocking", "row-1")
        for __ in range(2):
            allowed, _ = manager.remediation_allowed(incident)
            assert allowed
            manager.record_remediation(incident, "X", "t", "failed")
        allowed, reason = manager.remediation_allowed(incident)
        assert not allowed and "budget" in reason
        # suppressed records do not consume budget
        manager.record_remediation(incident, "X", "", "suppressed", reason)
        allowed, _ = manager.remediation_allowed(incident)
        assert not allowed
        # ... and the budget is a ROLLING window
        server.clock.advance(11.0)
        allowed, _ = manager.remediation_allowed(incident)
        assert allowed

    def test_flap_detector(self, server, sqlcm):
        manager = sqlcm.incident_manager(
            _manual_policy(flap_threshold=2, flap_window=60.0))
        for __ in range(2):
            incident = manager.report("blocking", "row-1")
            manager.resolve(incident.incident_id)
        flappy = manager.report("blocking", "row-1")
        allowed, reason = manager.remediation_allowed(flappy)
        assert not allowed and "flapping" in reason
        # a different key is unaffected
        other = manager.report("blocking", "row-2")
        assert manager.remediation_allowed(other)[0]

    def test_remediation_counts_and_metrics(self, server, sqlcm):
        server.enable_observability()
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("runaway", "q-1")
        manager.record_remediation(incident, "CancelBlockerAction",
                                   "query#1", "ok")
        snap = server.obs.metrics.snapshot()
        assert snap["counters"]["sqlcm.remediation.attempts"] == 1
        assert snap["counters"]["sqlcm.remediation.ok"] == 1
        assert manager.describe()["remediations"]["ok"] == 1


class TestActions:
    def test_open_incident_action_renders_placeholders(self, bank_sqlcm):
        server, sqlcm = bank_sqlcm
        sqlcm.incident_manager(_manual_policy())
        sqlcm.add_rule(Rule(
            name="detect", event="Timer.Alert",
            condition="Timer.Name = 'watch' AND Blocker.Wait_Time >= 0.2",
            actions=[OpenIncidentAction(
                "blocking", "{Blocker.Resource}",
                summary="query#{Blocker.ID} holds {Blocker.Resource}")],
        ))
        sqlcm.set_timer("watch", 0.25, -1)
        writer = server.create_session(user="w")
        writer.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        reader = server.create_session(user="r")
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1",
                      think_time=0.1),
        ])
        server.run(until=2.0)
        manager = sqlcm.incident_manager()
        assert manager.opened == 1
        incident = manager.incidents()[0]
        assert incident.incident_class == "blocking"
        assert "row" in incident.signature
        assert "holds" in incident.summary

    def test_cancel_blocker_honest_failure_and_event(self, bank_sqlcm):
        """Cancelling a think-time blocker fails; satellite: the outcome
        surfaces as the sqlcm.cancel meta-event + cancel.failed metric."""
        server, sqlcm = bank_sqlcm
        server.enable_observability()
        cancels = []
        server.events.subscribe("sqlcm.cancel",
                                lambda e, p: cancels.append(p))
        sqlcm.incident_manager(_manual_policy())
        sqlcm.add_rule(Rule(
            name="fix", event="Timer.Alert",
            condition="Timer.Name = 'watch' AND Blocker.Wait_Time >= 0.2",
            actions=[CancelBlockerAction("blocking",
                                         "{Blocker.Resource}")],
        ))
        sqlcm.set_timer("watch", 0.25, -1)
        writer = server.create_session(user="w")
        writer.submit_script([
            "BEGIN",
            "UPDATE acct SET bal = 0 WHERE id = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        reader = server.create_session(user="r")
        reader.submit_script([
            Statement("SELECT bal FROM acct WHERE id = 1",
                      think_time=0.1),
        ])
        server.run(until=2.0)
        manager = sqlcm.incident_manager()
        # implicit incident opened by the remediation action itself
        assert manager.opened == 1
        outcomes = {r.outcome for r in manager.remediations()}
        assert "failed" in outcomes
        assert cancels and all(p["ok"] is False for p in cancels)
        snap = server.obs.metrics.snapshot()
        assert snap["counters"]["sqlcm.cancel.failed"] >= 1
        # the blocked reader still finished once the writer committed
        assert reader.results[-1].ok

    def test_quarantine_and_reset_lat_actions(self, server, sqlcm):
        from repro import LATDefinition
        manager = sqlcm.incident_manager(_manual_policy())
        sqlcm.create_lat(LATDefinition(
            name="Hog_LAT", grouping=["Query.ID AS Q"],
            aggregations=["COUNT(Query.ID) AS N"]))
        sqlcm.add_rule(Rule(
            name="hog", event="Query.Commit",
            actions=[CallbackAction(lambda s, c: None)]))
        incident = manager.report("overload", "governor")
        quarantine = QuarantineRuleAction("overload", "governor",
                                          rule_name="hog")
        quarantine.execute(sqlcm, None, {}, None)
        assert sqlcm.health.health_of("hog").quarantined
        # idempotence is honest: second attempt reports failed
        quarantine.execute(sqlcm, None, {}, None)
        reset = ResetLATAction("overload", "governor", lat_name="Hog_LAT")
        reset.execute(sqlcm, None, {}, None)
        outcomes = [r.outcome for r in incident.remediations]
        assert outcomes == ["ok", "failed", "ok"]

    def test_action_validation(self, sqlcm):
        with pytest.raises(ActionError):
            sqlcm.add_rule(Rule(
                name="bad", event="Query.Commit",
                actions=[OpenIncidentAction("", "")]))
        with pytest.raises(ActionError):
            sqlcm.add_rule(Rule(
                name="bad2", event="Query.Commit",
                actions=[QuarantineRuleAction("c", "s", rule_name="")]))
        with pytest.raises(ActionError):
            sqlcm.add_rule(Rule(
                name="bad3", event="Query.Commit",
                actions=[ResetLATAction("c", "s", lat_name="")]))


class TestStreamAlertSink:
    def test_having_alert_opens_incident(self, items_server):
        server = items_server
        sqlcm = SQLCM(server)
        manager = sqlcm.incident_manager(_manual_policy())
        sqlcm.stream_engine().register(
            "STREAM busy FROM Query.Commit WINDOW TUMBLING(1.0) "
            "AGG COUNT(*) AS N HAVING Window.N >= 2")
        session = server.create_session()
        for __ in range(3):
            session.execute("SELECT id FROM items WHERE id = 1")
        server.clock.advance(1.5)
        sqlcm.stream_engine().flush()
        assert manager.opened == 1
        incident = manager.incidents()[0]
        assert incident.incident_class == "stream.having"
        assert incident.signature == "busy"

    def test_window_emissions_do_not_open_incidents(self, items_server):
        server = items_server
        sqlcm = SQLCM(server)
        manager = sqlcm.incident_manager(_manual_policy())
        sqlcm.stream_engine().register(
            "STREAM routine FROM Query.Commit WINDOW TUMBLING(1.0) "
            "AGG COUNT(*) AS N")
        session = server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        server.clock.advance(1.5)
        sqlcm.stream_engine().flush()
        assert manager.opened == 0
        # ... but routine window rows still land in the alert history
        assert server.catalog.has_table(ALERT_TABLE)


class TestHistoryAndInvestigation:
    def test_history_tables_record_lifecycle(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1", summary="s")
        manager.record_remediation(incident, "CancelBlockerAction",
                                   "query#7", "failed", "finished")
        manager.resolve(incident.incident_id)
        phases = [row[3] for __, row in
                  server.table(INCIDENT_TABLE).scan()]
        assert phases == ["opened", "resolved"]
        remediation_rows = list(server.table(REMEDIATION_TABLE).scan())
        assert len(remediation_rows) == 1
        assert remediation_rows[0][1][5] == "failed"

    def test_history_disabled(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy(history=False))
        manager.report("blocking", "row-1")
        assert not server.catalog.has_table(INCIDENT_TABLE)

    def test_investigate_assembles_window(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1", summary="hot")
        manager.record_remediation(incident, "CancelBlockerAction",
                                   "query#1", "ok")
        server.clock.advance(0.5)
        manager.report("runaway", "q-9")  # a neighbour
        server.clock.advance(0.5)
        manager.resolve(incident.incident_id)
        report = investigate(sqlcm, incident.incident_id, window=2.0)
        assert report["incident"]["class"] == "blocking"
        assert [p for __, p, __ in report["timeline"]] == \
            ["opened", "remediation:ok", "resolved"]
        assert len(report["remediations"]) == 1
        assert any(n["incident_class"] == "runaway"
                   for n in report["neighbours"])
        text = render_investigation(report)
        assert "INCIDENT #1" in text and "remediation attempts:" in text
        with pytest.raises(IncidentError):
            investigate(sqlcm, 123)

    def test_investigation_charges_monitor_cost(self, server, sqlcm):
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1")
        before = server.monitor_cost_total
        investigate(sqlcm, incident.incident_id)
        assert server.monitor_cost_total > before

    def test_incident_report_section(self, server, sqlcm):
        from repro.monitoring.report import full_report
        assert "INCIDENTS" not in full_report(server, sqlcm)
        manager = sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1")
        manager.record_remediation(incident, "X", "t", "ok")
        text = incident_status(sqlcm)
        assert "#1 [open] blocking/row-1" in text
        assert "ok=1" in text
        assert "INCIDENTS" in full_report(server, sqlcm)


class TestDeadLetterMetric:
    def test_dropped_entries_surface_as_gauge(self, items_server):
        """Satellite: DeadLetterJournal.dropped is visible in .metrics."""
        from repro import RunExternalAction
        from repro.core.resilience import DeadLetterJournal
        server = items_server
        server.enable_observability()
        sqlcm = SQLCM(server)
        sqlcm.dead_letters = DeadLetterJournal(capacity=1)
        sqlcm.external_handler = lambda cmd: (_ for _ in ()).throw(
            ConnectionError("sink down"))
        sqlcm.add_rule(Rule(name="notify", event="Query.Commit",
                            actions=[RunExternalAction("ping {Query.ID}")]))
        session = server.create_session()
        for __ in range(2):
            session.execute("SELECT price FROM items WHERE id = 1")
        assert sqlcm.dead_letters.dropped == 1
        snap = server.obs.metrics.snapshot()
        assert snap["gauges"]["sqlcm.deadletter.dropped"] == 1


class TestCLI:
    def _shell(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        return Shell(out=out), out

    def test_incidents_and_investigate_commands(self):
        shell, out = self._shell()
        shell.execute_line(".incidents")
        assert "no incidents" in out.getvalue()
        manager = shell.sqlcm.incident_manager(_manual_policy())
        incident = manager.report("blocking", "row-1", summary="hot")
        manager.record_remediation(incident, "CancelBlockerAction",
                                   "query#1", "failed", "finished")
        shell.execute_line(".incidents")
        shell.execute_line(".incidents 1")
        shell.execute_line(".investigate 1")
        text = out.getvalue()
        assert "blocking/row-1" in text
        assert "remediation:failed" in text
        assert "INCIDENT #1" in text
        shell.execute_line(".investigate 99")
        assert "error: unknown incident" in out.getvalue()

    def test_monitor_remediate_installs(self):
        shell, out = self._shell()
        shell.execute_line(".monitor remediate")
        assert "auto-remediation installed" in out.getvalue()
        assert any(r.startswith("remediation_sweep")
                   for r in shell.sqlcm.rules)


@pytest.fixture
def bank_sqlcm(server):
    """Bank table + SQLCM, for blocking-based incident tests."""
    server.execute_ddl(
        "CREATE TABLE acct (id INT NOT NULL PRIMARY KEY, bal FLOAT)")
    server.create_session().execute(
        "INSERT INTO acct VALUES (1, 100.0), (2, 200.0)")
    return server, SQLCM(server)
