"""Tests for expression binding and compilation."""

import pytest

from repro.engine.planner.exprs import (OutputCol, Scope, SlotRef,
                                        compile_expr, conjoin,
                                        infer_expr_type, referenced_bindings,
                                        split_conjuncts)
from repro.engine.sqlparse import ast_nodes as ast
from repro.engine.sqlparse.parser import parse_statement
from repro.engine.types import SQLType
from repro.errors import BindError, PlanError


def _where(sql_condition):
    return parse_statement(f"SELECT a FROM t WHERE {sql_condition}").where


@pytest.fixture
def scope():
    return Scope((
        OutputCol("a", "t", SQLType.INTEGER),
        OutputCol("b", "t", SQLType.FLOAT),
        OutputCol("name", "t", SQLType.STRING),
        OutputCol("a", "u", SQLType.INTEGER),
    ))


class TestScope:
    def test_qualified_resolution(self, scope):
        assert scope.resolve(ast.ColumnRef("a", "t")) == 0
        assert scope.resolve(ast.ColumnRef("a", "u")) == 3

    def test_unqualified_unique(self, scope):
        assert scope.resolve(ast.ColumnRef("b")) == 1

    def test_unqualified_ambiguous(self, scope):
        with pytest.raises(BindError, match="ambiguous"):
            scope.resolve(ast.ColumnRef("a"))

    def test_unknown_column(self, scope):
        with pytest.raises(BindError):
            scope.resolve(ast.ColumnRef("zzz"))

    def test_case_insensitive(self, scope):
        assert scope.resolve(ast.ColumnRef("NAME", "T")) == 2


class TestCompile:
    def _eval(self, condition, row, scope, params=None):
        fn = compile_expr(_where(condition), scope)
        return fn(row, params or {})

    def test_arithmetic(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a + b * 2", row, scope) == 8.0

    def test_comparison(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a < b", row, scope) is True
        assert self._eval("t.a >= 2", row, scope) is True
        assert self._eval("t.a != 2", row, scope) is False

    def test_null_comparison_unknown(self, scope):
        row = (None, 3.0, "x", 9)
        assert self._eval("t.a > 1", row, scope) is None

    def test_boolean_combinators(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a = 2 AND b = 3.0", row, scope) is True
        assert self._eval("t.a = 5 OR b = 3.0", row, scope) is True
        assert self._eval("NOT t.a = 2", row, scope) is False

    def test_in_list(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a IN (1, 2, 3)", row, scope) is True
        assert self._eval("t.a NOT IN (1, 3)", row, scope) is True
        assert self._eval("t.a IN (1, 3)", row, scope) is False

    def test_in_with_null_member_is_unknown_when_absent(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a IN (1, NULL)", row, scope) is None

    def test_between(self, scope):
        row = (2, 3.0, "x", 9)
        assert self._eval("t.a BETWEEN 1 AND 3", row, scope) is True
        assert self._eval("t.a NOT BETWEEN 3 AND 5", row, scope) is True

    def test_like(self, scope):
        row = (2, 3.0, "xyz", 9)
        assert self._eval("name LIKE 'x%'", row, scope) is True
        assert self._eval("name LIKE '_y_'", row, scope) is True
        assert self._eval("name LIKE 'y%'", row, scope) is False
        assert self._eval("name NOT LIKE 'y%'", row, scope) is True

    def test_like_escapes_regex_chars(self, scope):
        row = (2, 3.0, "a.c", 9)
        assert self._eval("name LIKE 'a.c'", row, scope) is True
        assert self._eval("name LIKE 'abc'", row, scope) is False

    def test_is_null(self, scope):
        assert self._eval("name IS NULL", (1, 1.0, None, 2), scope) is True
        assert self._eval("name IS NOT NULL", (1, 1.0, "x", 2), scope) is True

    def test_parameters(self, scope):
        fn = compile_expr(_where("t.a = @key"), scope)
        assert fn((2, 0.0, "", 0), {"key": 2}) is True
        with pytest.raises(BindError, match="missing parameter"):
            fn((2, 0.0, "", 0), {})

    def test_slotref(self, scope):
        fn = compile_expr(SlotRef(2), scope)
        assert fn((0, 0, "hit", 0), {}) == "hit"

    def test_scalar_functions(self, scope):
        assert self._eval("ABS(t.a - 10)", (2, 0.0, "", 0), scope) == 8
        assert self._eval("UPPER(name)", (0, 0.0, "ab", 0), scope) == "AB"

    def test_unknown_function_rejected(self, scope):
        with pytest.raises(PlanError):
            compile_expr(_where("NOFUNC(t.a) = 1"), scope)

    def test_aggregate_rejected_in_scalar_context(self, scope):
        with pytest.raises(PlanError):
            compile_expr(ast.FuncCall("COUNT", star=True), scope)

    def test_star_rejected(self, scope):
        with pytest.raises(PlanError):
            compile_expr(ast.ColumnRef("*"), scope)


class TestHelpers:
    def test_split_and_conjoin_roundtrip(self):
        predicate = _where("a = 1 AND b = 2 AND name = 'x'")
        parts = split_conjuncts(predicate)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        assert split_conjuncts(rebuilt) == parts

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None

    def test_or_not_split(self):
        predicate = _where("a = 1 OR b = 2")
        assert len(split_conjuncts(predicate)) == 1

    def test_referenced_bindings(self):
        predicate = _where("t.a = 1 AND u.b = 2 AND c = 3")
        bindings = referenced_bindings(predicate, {"c": "w"})
        assert bindings == {"t", "u", "w"}

    def test_infer_types(self, scope):
        assert infer_expr_type(_where("t.a > 1"), scope) is SQLType.BOOLEAN
        assert infer_expr_type(
            parse_statement("SELECT t.a + 1 FROM t").items[0].expr, scope
        ) is SQLType.INTEGER
        assert infer_expr_type(
            parse_statement("SELECT b * 2 FROM t").items[0].expr, scope
        ) is SQLType.FLOAT
        assert infer_expr_type(
            parse_statement("SELECT COUNT(*) FROM t").items[0].expr, scope
        ) is SQLType.INTEGER
        assert infer_expr_type(
            parse_statement("SELECT AVG(a) FROM t").items[0].expr, scope
        ) is SQLType.FLOAT
