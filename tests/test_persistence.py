"""Tests for Persist actions and LAT persist/restore (paper Section 4.3)."""

import pytest

from repro import (InsertAction, LATDefinition, PersistAction, Rule, SQLCM)
from repro.errors import ActionError, PersistCorruptionError


@pytest.fixture
def monitored(items_server):
    return items_server, SQLCM(items_server)


def _run(server, sql):
    session = server.create_session()
    result = session.execute(sql)
    server.close_session(session)
    return result


class TestPersistObject:
    def test_persist_creates_table_and_appends_timestamp(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="log_updates", event="Query.Commit",
            condition="Query.Query_Type = 'UPDATE'",
            actions=[PersistAction("update_log",
                                   ["ID", "Query_Text", "Duration"],
                                   source="Query")],
        ))
        _run(server, "UPDATE items SET qty = 1 WHERE id = 1")
        _run(server, "SELECT id FROM items WHERE id = 1")  # not persisted
        table = server.table("update_log")
        assert table.row_count == 1
        row = next(iter(table.scan()))[1]
        assert row[1].startswith("UPDATE items")
        assert len(row) == 4  # 3 attributes + sqlcm_ts
        assert row[3] == pytest.approx(server.clock.now, abs=1.0)

    def test_persist_all_attributes_by_default(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="log_all", event="Query.Commit",
            actions=[PersistAction("full_log", source="Query")],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        table = server.table("full_log")
        query_cls_attr_count = len(
            sqlcm.schema.monitored_class("Query").attributes)
        assert len(table.schema.columns) == query_cls_attr_count + 1

    def test_persist_validates_attributes(self, monitored):
        server, sqlcm = monitored
        with pytest.raises(Exception):
            sqlcm.add_rule(Rule(
                name="bad", event="Query.Commit",
                actions=[PersistAction("t", ["NoSuchAttr"],
                                       source="Query")],
            ))

    def test_persist_unknown_source_rejected(self, monitored):
        server, sqlcm = monitored
        action = PersistAction("t", source="Martian")
        with pytest.raises(ActionError):
            action.validate(sqlcm, None)


class TestPersistLAT:
    def _lat(self, sqlcm):
        sqlcm.create_lat(LATDefinition(
            name="App_LAT",
            grouping=["Query.Application AS App"],
            aggregations=[
                "COUNT(Query.ID) AS N",
                "AVG(Query.Duration) AS Avg_D",
            ],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("App_LAT")]))

    def test_persist_lat_writes_all_rows(self, monitored):
        server, sqlcm = monitored
        self._lat(sqlcm)
        for __ in range(3):
            _run(server, "SELECT id FROM items WHERE id = 1")
        written = sqlcm.persist_lat("App_LAT", "app_report")
        assert written == 1
        table = server.table("app_report")
        assert table.row_count == 1
        row = next(iter(table.scan()))[1]
        assert row[1] == 3  # N

    def test_persist_lat_repeatedly_appends(self, monitored):
        server, sqlcm = monitored
        self._lat(sqlcm)
        _run(server, "SELECT id FROM items WHERE id = 1")
        sqlcm.persist_lat("App_LAT", "app_report")
        _run(server, "SELECT id FROM items WHERE id = 1")
        sqlcm.persist_lat("App_LAT", "app_report")
        assert server.table("app_report").row_count == 2

    def test_restore_lat_roundtrip(self, monitored):
        server, sqlcm = monitored
        self._lat(sqlcm)
        for __ in range(4):
            _run(server, "SELECT id FROM items WHERE id = 1")
        before = sqlcm.lat("App_LAT").rows()
        sqlcm.persist_lat("App_LAT", "app_snapshot")

        # simulate restart: clear and re-upload
        sqlcm.lat("App_LAT").reset()
        assert sqlcm.lat("App_LAT").rows() == []
        restored = sqlcm.restore_lat("App_LAT", "app_snapshot")
        assert restored == 1
        after = sqlcm.lat("App_LAT").rows()
        assert after[0]["N"] == before[0]["N"]
        assert after[0]["Avg_D"] == pytest.approx(before[0]["Avg_D"])

    def test_restored_lat_continues_aggregating(self, monitored):
        server, sqlcm = monitored
        self._lat(sqlcm)
        for __ in range(4):
            _run(server, "SELECT id FROM items WHERE id = 1")
        sqlcm.persist_lat("App_LAT", "snap")
        sqlcm.lat("App_LAT").reset()
        sqlcm.restore_lat("App_LAT", "snap")
        _run(server, "SELECT id FROM items WHERE id = 1")
        assert sqlcm.lat("App_LAT").rows()[0]["N"] == 5

    def test_corrupt_restore_leaves_live_lat_unchanged(self, monitored):
        """Atomicity: a failed restore must not touch the in-memory LAT."""
        server, sqlcm = monitored
        self._lat(sqlcm)
        for __ in range(2):
            _run(server, "SELECT id FROM items WHERE id = 1")
        sqlcm.persist_lat("App_LAT", "snap")
        table = server.table("snap")
        rowid = next(iter(table.scan()))[0]
        table.update(rowid, {1: 999})  # flip N behind the checksum
        for __ in range(3):  # live LAT moves past the snapshot
            _run(server, "SELECT id FROM items WHERE id = 1")
        before = sqlcm.lat("App_LAT").rows()
        with pytest.raises(PersistCorruptionError):
            sqlcm.restore_lat("App_LAT", "snap")
        # neither reset to empty nor half-swapped to the snapshot's 999
        assert sqlcm.lat("App_LAT").rows() == before

    def test_decode_failure_mid_seed_leaves_live_lat_unchanged(
            self, monitored):
        """Rows seed into a scratch LAT; the swap is all-or-nothing."""
        server, sqlcm = monitored
        self._lat(sqlcm)
        for app in ("alpha", "beta"):
            session = server.create_session(application=app)
            session.execute("SELECT id FROM items WHERE id = 1")
            server.close_session(session)
        sqlcm.persist_lat("App_LAT", "snap")
        table = server.table("snap")
        rows = list(table.scan())
        assert len(rows) == 2
        # poison the second row in place (a torn write the checksum cannot
        # see, restored with validate=False): the first row seeds cleanly,
        # the second must abort the whole swap
        table._rows[rows[1][0]][1] = "bogus"
        before = sqlcm.lat("App_LAT").rows()
        with pytest.raises((TypeError, ValueError)):
            sqlcm.restore_lat("App_LAT", "snap", validate=False)
        assert sqlcm.lat("App_LAT").rows() == before

    def test_persist_via_rule_action(self, monitored):
        server, sqlcm = monitored
        self._lat(sqlcm)
        sqlcm.add_rule(Rule(
            name="flush_on_update", event="Query.Commit",
            condition="Query.Query_Type = 'UPDATE'",
            actions=[PersistAction("flushed", source="App_LAT")],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        _run(server, "UPDATE items SET qty = 2 WHERE id = 1")
        assert server.catalog.has_table("flushed")
        assert server.table("flushed").row_count >= 1
