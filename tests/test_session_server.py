"""Session scripting, stored procedures, plan cache, and server surface."""

import pytest

from repro import DatabaseServer, IfStep, ProcedureDef, Statement
from repro.engine.query import QueryState
from repro.errors import EngineError
from repro.sim.scheduler import SchedulerStalledError


class TestScripts:
    def test_script_runs_in_order(self, items_server):
        session = items_server.create_session()
        session.submit_script([
            "UPDATE items SET qty = 1 WHERE id = 1",
            "SELECT qty FROM items WHERE id = 1",
        ])
        items_server.run()
        assert session.results[1].rows == [(1,)]

    def test_think_time_advances_clock(self, items_server):
        session = items_server.create_session()
        session.submit_script([
            Statement("SELECT id FROM items WHERE id = 1", think_time=2.0),
        ])
        items_server.run()
        assert items_server.clock.now > 2.0

    def test_tuple_statement_form(self, items_server):
        session = items_server.create_session()
        session.submit_script([
            ("SELECT name FROM items WHERE id = @k", {"k": 2}),
        ])
        items_server.run()
        assert session.results[0].rows == [("pear",)]

    def test_dangling_transaction_committed_at_script_end(self, items_server):
        session = items_server.create_session()
        session.submit_script([
            "BEGIN",
            "UPDATE items SET qty = 42 WHERE id = 1",
        ])
        items_server.run()
        check = items_server.create_session()
        assert check.execute(
            "SELECT qty FROM items WHERE id = 1").rows == [(42,)]


class TestProcedures:
    @pytest.fixture
    def proc_server(self, items_server):
        items_server.create_procedure(ProcedureDef(
            name="price_of",
            params=("key",),
            body=["SELECT price FROM items WHERE id = @key"],
        ))
        items_server.create_procedure(ProcedureDef(
            name="branchy",
            params=("key", "mode"),
            body=[
                IfStep(
                    predicate=lambda p: p["mode"] == 1,
                    then_branch=["SELECT name FROM items WHERE id = @key"],
                    else_branch=["SELECT qty FROM items WHERE id = @key"],
                ),
            ],
        ))
        return items_server

    def test_exec_with_literal_args(self, proc_server):
        session = proc_server.create_session()
        result = session.execute("EXEC price_of @key = 2")
        assert result.rows == [(2.0,)]

    def test_exec_with_session_params(self, proc_server):
        session = proc_server.create_session()
        result = session.execute("EXEC price_of", {"key": 4})
        assert result.rows == [(9.5,)]

    def test_missing_parameter_rejected(self, proc_server):
        session = proc_server.create_session()
        with pytest.raises(EngineError, match="missing parameters"):
            session.execute("EXEC price_of")

    def test_if_else_branches(self, proc_server):
        session = proc_server.create_session()
        assert session.execute(
            "EXEC branchy @key = 1, @mode = 1").rows == [("apple",)]
        assert session.execute(
            "EXEC branchy @key = 1, @mode = 0").rows == [(10,)]

    def test_procedure_statements_tagged(self, proc_server):
        captured = []
        proc_server.events.subscribe(
            "query.commit", lambda e, p: captured.append(p["query"]))
        session = proc_server.create_session()
        session.execute("EXEC price_of @key = 1")
        assert captured[-1].procedure == "price_of"

    def test_unknown_procedure(self, proc_server):
        session = proc_server.create_session()
        with pytest.raises(EngineError):
            session.execute("EXEC nonexistent")

    def test_procedure_parameterized_plans_shared(self, proc_server):
        session = proc_server.create_session()
        session.execute("EXEC price_of @key = 1")
        before = proc_server.plan_cache.misses
        session.execute("EXEC price_of @key = 2")
        session.execute("EXEC price_of @key = 3")
        # same template text → plan cache hits, no further misses
        assert proc_server.plan_cache.misses == before


class TestPlanCache:
    def test_repeated_query_hits_cache(self, items_server):
        session = items_server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        misses = items_server.plan_cache.misses
        session.execute("SELECT id FROM items WHERE id = 1")
        assert items_server.plan_cache.misses == misses
        assert items_server.plan_cache.hits >= 1

    def test_different_text_misses(self, items_server):
        session = items_server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        before = items_server.plan_cache.misses
        session.execute("SELECT id FROM items WHERE id = 2")
        assert items_server.plan_cache.misses == before + 1

    def test_cached_compile_is_cheaper(self, items_server):
        session = items_server.create_session()
        first = session.execute("SELECT id FROM items WHERE id = 1")
        second = session.execute("SELECT id FROM items WHERE id = 1")
        assert second.query.compile_time < first.query.compile_time

    def test_lru_eviction(self):
        from repro.engine.planner.plancache import CachedPlan, PlanCache
        cache = PlanCache(max_entries=2)
        for i in range(3):
            cache.put(CachedPlan(f"q{i}", None, None, None, "SELECT", 1))
        assert cache.evictions == 1
        assert cache.get("q0") is None
        assert cache.get("q2") is not None


class TestServerSurface:
    def test_session_lifecycle_events(self, server):
        events = []
        server.events.subscribe("session.login", lambda e, p: events.append("in"))
        server.events.subscribe("session.logout", lambda e, p: events.append("out"))
        session = server.create_session()
        server.close_session(session)
        assert events == ["in", "out"]

    def test_active_queries_snapshot_empty_when_idle(self, items_server):
        assert items_server.active_queries() == []

    def test_completed_queries_tracked(self, items_server):
        session = items_server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        assert len(items_server.completed_queries) >= 1
        assert items_server.completed_queries[-1].state is \
            QueryState.COMMITTED

    def test_memory_reservation_degrades_hit_ratio(self, items_server):
        full = items_server.buffer_hit_ratio("items")
        assert full == 1.0
        items_server.reserve_memory_pages(
            "test", items_server.costs.buffer_pool_pages)
        degraded = items_server.buffer_hit_ratio("items")
        assert degraded < 1.0
        items_server.reserve_memory_pages("test", 0)
        assert items_server.buffer_hit_ratio("items") == 1.0

    def test_monitor_cost_pool(self, server):
        server.add_monitor_cost(0.25)
        server.add_monitor_cost(0.25)
        assert server.take_monitor_cost() == pytest.approx(0.5)
        assert server.take_monitor_cost() == 0.0

    def test_query_duration_measured(self, items_server):
        session = items_server.create_session()
        result = session.execute("SELECT COUNT(*) FROM items")
        qctx = result.query
        assert qctx.end_time is not None
        assert qctx.duration_at(items_server.clock.now) > 0

    def test_estimated_cost_probe_set(self, items_server):
        session = items_server.create_session()
        result = session.execute("SELECT COUNT(*) FROM items")
        assert result.query.estimated_cost > 0

    def test_query_type_classification(self, items_server):
        session = items_server.create_session()
        checks = [
            ("SELECT id FROM items WHERE id = 1", "SELECT"),
            ("UPDATE items SET qty = 5 WHERE id = 1", "UPDATE"),
            ("INSERT INTO items (id, name) VALUES (70, 'x')", "INSERT"),
            ("DELETE FROM items WHERE id = 70", "DELETE"),
        ]
        for sql, expected in checks:
            assert session.execute(sql).query.query_type == expected

    def test_bulk_load(self, server):
        server.execute_ddl("CREATE TABLE b (x INT NOT NULL PRIMARY KEY)")
        assert server.bulk_load("b", [[i] for i in range(10)]) == 10
        assert server.table("b").row_count == 10

    def test_ddl_requires_ddl_statement(self, server):
        with pytest.raises(EngineError):
            server.execute_ddl("SELECT 1")


class TestSessionTeardown:
    """Regression: close_session must not leave an abandoned session's
    locks alive (a vanished client used to block everyone forever)."""

    def test_close_mid_transaction_rolls_back_and_releases_locks(
            self, items_server):
        alice = items_server.create_session(user="alice")
        bob = items_server.create_session(user="bob")
        alice.execute("BEGIN")
        alice.execute("UPDATE items SET qty = 999 WHERE id = 1")
        assert alice.current_txn is not None

        items_server.close_session(alice)

        # the transaction is gone and its X lock with it
        assert alice.current_txn is None
        assert items_server.locks.blocking_pairs() == []
        result = bob.execute("UPDATE items SET qty = 5 WHERE id = 1")
        assert result.error is None
        # and the abandoned update was rolled back, not committed
        assert bob.execute(
            "SELECT qty FROM items WHERE id = 1").rows == [(5,)]

    def test_close_while_statement_blocked_cancels_it(self, items_server):
        holder = items_server.create_session(user="holder")
        waiter = items_server.create_session(user="waiter")
        holder.execute("BEGIN")
        holder.execute("UPDATE items SET qty = 1 WHERE id = 1")

        proc = items_server.scheduler.spawn(
            "waiter", waiter.statement_process(
                "UPDATE items SET qty = 2 WHERE id = 1"))
        waiter.process = proc
        try:
            items_server.run(until=items_server.clock.now + 0.5)
        except SchedulerStalledError:
            pass  # only the lock-blocked waiter is live: a stall is normal
        assert waiter.current_query.state is QueryState.BLOCKED

        # the waiter's client vanishes while its statement is parked on
        # the lock: the statement is cancelled, the session drains clean
        items_server.close_session(waiter)
        items_server.run(until=items_server.clock.now + 0.5)
        assert proc.done
        assert proc.result.error is not None
        assert "cancel" in proc.result.error.lower()
        assert waiter.current_txn is None

        # the holder is unaffected and can commit
        assert holder.execute("COMMIT").error is None

    def test_close_idle_session_stays_cheap(self, items_server):
        session = items_server.create_session(user="idle")
        session.execute("SELECT id FROM items WHERE id = 1")
        items_server.close_session(session)
        assert items_server.session(session.session_id) is None
