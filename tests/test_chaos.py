"""Chaos drills: recovery invariants + same-seed determinism."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (SCENARIOS, ChaosHarness, get_scenario,
                         run_scenario)
from repro.core.resilience import FaultInjector, known_fault_sites
from repro.errors import ChaosError


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_recovers(name):
    """Every drill detects, (maybe) remediates, and fully recovers."""
    result = run_scenario(name, seed=1, quick=True)
    assert result.ok, f"{name} failed: {result.failures}"
    assert result.time_to_detect is not None
    assert result.time_to_recover is not None
    assert result.time_to_detect <= result.time_to_recover
    assert result.incidents >= 1


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_is_bit_identical(name):
    """The determinism contract: one seed, one incident timeline."""
    first = run_scenario(name, seed=42, quick=True)
    second = run_scenario(name, seed=42, quick=True)
    assert first.timeline_digest == second.timeline_digest
    assert first.to_dict() == second.to_dict()


def test_different_seeds_diverge():
    """Seeds steer the workload, so timelines must differ somewhere."""
    digests = {run_scenario("blocking_storm", seed=s).timeline_digest
               for s in (1, 2, 3)}
    assert len(digests) > 1


def test_result_is_json_serializable():
    result = run_scenario("runaway_query", seed=5, quick=True)
    parsed = json.loads(json.dumps(result.to_dict()))
    assert parsed["scenario"] == "runaway_query"
    assert parsed["remediation_outcomes"].get("ok", 0) >= 1


def test_unknown_scenario():
    with pytest.raises(ChaosError):
        get_scenario("nope")


def test_chaos_fault_sites_registered():
    sites = known_fault_sites()
    assert "chaos.scenario" in sites
    assert "chaos.workload" in sites


def test_scenario_fault_aborts_drill():
    faults = FaultInjector(seed=9)
    faults.fail_next("chaos.scenario")
    harness = ChaosHarness("blocking_storm", seed=9, quick=True,
                           faults=faults)
    result = harness.run()
    assert result.aborted_by_fault
    assert not result.ok
    assert harness.server.clock.now == 0.0  # no load was submitted


def test_workload_fault_sheds_load_deterministically():
    def run_with_shedding():
        faults = FaultInjector(seed=3)
        faults.arm("chaos.workload", rate=1.0, mode="exception")
        return ChaosHarness("blocking_storm", seed=3, quick=True,
                            faults=faults).run()

    shed = run_with_shedding()
    assert shed.load_shed > 0
    # shedding every optional victim still leaves the core drill intact
    assert any(i > 0 for i in (shed.incidents,))
    # and the perturbed run is itself deterministic
    assert shed.to_dict() == run_with_shedding().to_dict()


def test_overhead_is_accounted():
    result = run_scenario("hot_row_contention", seed=2, quick=True)
    assert 0.0 < result.monitor_overhead <= 0.10
