"""Regression tests for deferred-event delivery and rule-index hygiene.

Two dispatch-path bugs fixed together with the sharded-dispatch work:

* ``enqueue_evict_event`` appended to the dispatch queue but never
  drained it when no dispatch was active, so evictions raised *outside*
  rule dispatch (stream window flushes inserting into a bounded sink
  LAT) were either lost outright or smuggled into the next unrelated
  event's dispatch (mis-attribution).  Deferred events must now drain
  immediately whenever the dispatcher is idle.
* ``remove_rule`` left an empty list keyed in ``_rules_by_event``; under
  rule churn the index grew without bound and made the "any rules for
  this event?" fast-path check truthy for dead events.
"""

from __future__ import annotations

import itertools

import pytest

from repro import LATDefinition, Rule, SQLCM
from repro.core import InsertAction
from repro.core.actions import CallbackAction
from repro.engine.query import QueryContext

_IDS = itertools.count(1)


def commit(server, t, duration, *, user="u"):
    server.clock.advance_to(t)
    qctx = QueryContext(
        query_id=next(_IDS), session_id=1, text="SELECT 1", user=user,
        application="tests", query_type="SELECT", start_time=t - duration,
        end_time=t)
    server.events.publish("query.commit", {"query": qctx})
    return qctx


@pytest.fixture
def evict_monitor(server):
    """SQLCM with a bounded LAT and a journal of evict-rule firings."""
    monitor = SQLCM(server)
    monitor.create_lat(LATDefinition(
        name="Tiny", monitored_class="Query",
        grouping=["Query.ID AS Qid"],
        aggregations=["COUNT(Query.ID) AS N"],
        ordering=["N DESC"], max_rows=1))
    journal: list[tuple[str, object]] = []
    monitor.add_rule(Rule(
        name="on_evict", event="Evicted.Evict",
        actions=[CallbackAction(
            lambda s, c: journal.append(("evict", c["evicted"].get("Qid"))))],
    ))
    return monitor, journal


class TestDeferredDrain:
    def test_evict_outside_dispatch_drains_immediately(self, evict_monitor):
        """The drop regression: an eviction with no dispatch active."""
        monitor, journal = evict_monitor
        assert not monitor._dispatching
        monitor.enqueue_evict_event("Tiny", {"Qid": 42, "N": 3})
        assert journal == [("evict", 42)]
        assert not monitor._event_queue

    def test_evict_outside_dispatch_not_smuggled_into_next(
            self, server, evict_monitor):
        """The mis-attribution regression: the deferred event must not
        wait in the queue to be processed under the next unrelated
        event's dispatch."""
        monitor, journal = evict_monitor
        monitor.add_rule(Rule(
            name="on_commit", event="Query.Commit",
            actions=[CallbackAction(
                lambda s, c: journal.append(("commit", c["query"].get("ID"))))],
            ))
        monitor.enqueue_evict_event("Tiny", {"Qid": 7, "N": 1})
        qctx = commit(server, 1.0, 0.1)
        # the eviction ran at enqueue time, strictly before the commit
        assert journal == [("evict", 7), ("commit", qctx.query_id)]
        assert monitor.rule_errors == 0

    def test_evict_during_dispatch_still_deferred(self, server,
                                                  evict_monitor):
        """Inside a dispatch the ordering contract is unchanged: all
        rules for the triggering event run before the raised event."""
        monitor, journal = evict_monitor
        monitor.add_rule(Rule(
            name="fill", event="Query.Commit",
            actions=[InsertAction("Tiny"),
                     CallbackAction(
                         lambda s, c: journal.append(("after-insert", None)))],
        ))
        first = commit(server, 1.0, 0.1)  # fills the slot, no eviction
        commit(server, 2.0, 0.2)  # evicts the first row mid-dispatch
        evict_pos = journal.index(("evict", first.query_id))
        assert journal.index(("after-insert", None), 1) < evict_pos
        assert not monitor._event_queue

    def test_stream_flush_eviction_reaches_rules(self, server):
        """The realistic trigger: a window flush (outside any dispatch)
        inserts an alert into a bounded sink LAT, evicting a row — the
        Evicted.Evict rule must fire for it."""
        monitor = SQLCM(server)
        monitor.create_lat(LATDefinition(
            name="Sink", monitored_class="StreamAlert",
            grouping=["StreamAlert.Group_Key AS G"],
            aggregations=["COUNT(StreamAlert.Kind) AS N"],
            ordering=["N DESC"], max_rows=1))
        monitor.stream_engine().register(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(10) AGG COUNT(*) AS N HAVING Window.N >= 1",
            sink_lat="Sink")
        evicted = []
        monitor.add_rule(Rule(
            name="on_evict", event="Evicted.Evict",
            actions=[CallbackAction(
                lambda s, c: evicted.append(c["evicted"].get("G")))],
        ))
        # two groups in window [0, 10); both alert at the boundary, the
        # second alert's insert evicts the first from the 1-row sink
        commit(server, 1.0, 0.1, user="alice")
        commit(server, 2.0, 0.1, user="bob")
        server.clock.advance_to(11.0)
        monitor.stream_engine().flush()
        assert len(evicted) == 1
        assert not monitor._event_queue


class TestRuleIndexHygiene:
    def test_remove_rule_deletes_empty_event_key(self, sqlcm):
        sqlcm.add_rule(Rule(name="r1", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        assert "query.commit" in sqlcm._rules_by_event
        sqlcm.remove_rule("r1")
        assert "query.commit" not in sqlcm._rules_by_event

    def test_peer_rules_keep_the_key(self, sqlcm):
        sqlcm.add_rule(Rule(name="r1", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        sqlcm.add_rule(Rule(name="r2", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        sqlcm.remove_rule("r1")
        assert [r.name for r in sqlcm._rules_by_event["query.commit"]] == \
            ["r2"]

    def test_churn_leaves_no_stale_keys(self, sqlcm):
        events = ["Query.Commit", "Query.Start", "Transaction.Commit",
                  "Session.Login"]
        for cycle in range(5):
            for index, event in enumerate(events):
                sqlcm.add_rule(Rule(
                    name=f"r{cycle}_{index}", event=event,
                    actions=[CallbackAction(lambda s, c: None)]))
            for index in range(len(events)):
                sqlcm.remove_rule(f"r{cycle}_{index}")
            assert sqlcm._rules_by_event == {}
        # a key reappears cleanly after churn
        sqlcm.add_rule(Rule(name="fresh", event="Query.Commit",
                            actions=[CallbackAction(lambda s, c: None)]))
        assert len(sqlcm._rules_by_event["query.commit"]) == 1
