"""Tests for the virtual clock."""

import pytest

from repro.sim import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.5).now == 5.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5
        clock.advance(0.5)
        assert clock.now == 3.0

    def test_advance_zero_is_noop(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_advance_to_never_moves_backward(self):
        clock = SimClock(10.0)
        clock.advance_to(4.0)
        assert clock.now == 10.0
