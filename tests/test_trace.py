"""Tests for workload trace recording and replay."""

import pytest

from repro import Statement
from repro.workloads.trace import (TraceRecorder, replay, replay_script)


@pytest.fixture
def traced(items_server):
    recorder = TraceRecorder(items_server)
    return items_server, recorder


class TestRecording:
    def test_committed_statements_recorded(self, traced):
        server, recorder = traced
        session = server.create_session(user="u", application="a")
        session.execute("SELECT id FROM items WHERE id = 1")
        session.execute("UPDATE items SET qty = 1 WHERE id = 1")
        assert [e.text for e in recorder.entries] == [
            "SELECT id FROM items WHERE id = 1",
            "UPDATE items SET qty = 1 WHERE id = 1",
        ]
        assert recorder.entries[0].outcome == "committed"
        assert recorder.entries[0].user == "u"
        assert recorder.entries[0].duration > 0

    def test_failed_statements_recorded_with_outcome(self, traced):
        server, recorder = traced
        session = server.create_session()
        try:
            session.execute("SELECT ghost FROM items")
        except Exception:
            pass
        assert recorder.entries[-1].outcome == "rolled_back"

    def test_application_filter(self, items_server):
        recorder = TraceRecorder(items_server, applications={"prod"})
        prod = items_server.create_session(application="prod")
        test = items_server.create_session(application="test")
        prod.execute("SELECT id FROM items WHERE id = 1")
        test.execute("SELECT id FROM items WHERE id = 2")
        assert len(recorder.entries) == 1
        assert recorder.entries[0].application == "prod"

    def test_detach_stops_recording(self, traced):
        server, recorder = traced
        recorder.detach()
        session = server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        assert recorder.entries == []

    def test_params_recorded(self, traced):
        server, recorder = traced
        session = server.create_session()
        session.execute("SELECT id FROM items WHERE id = @k", {"k": 3})
        assert recorder.entries[0].params == {"k": 3}


class TestSerialization:
    def test_dump_load_roundtrip(self, traced):
        server, recorder = traced
        session = server.create_session()
        session.execute("SELECT id FROM items WHERE id = @k", {"k": 2})
        text = recorder.dump()
        restored = TraceRecorder.load(text)
        assert restored == recorder.entries


class TestReplay:
    def test_replay_script_preserves_gaps(self, traced):
        server, recorder = traced
        session = server.create_session()
        session.submit_script([
            Statement("SELECT id FROM items WHERE id = 1"),
            Statement("SELECT id FROM items WHERE id = 2", think_time=2.0),
        ])
        server.run()
        script = replay_script(recorder.entries)
        assert script[0].think_time == 0.0
        assert script[1].think_time == pytest.approx(2.0, abs=0.1)

    def test_time_scale_compresses(self, traced):
        server, recorder = traced
        session = server.create_session()
        session.submit_script([
            Statement("SELECT id FROM items WHERE id = 1"),
            Statement("SELECT id FROM items WHERE id = 2", think_time=4.0),
        ])
        server.run()
        script = replay_script(recorder.entries, time_scale=0.25)
        assert script[1].think_time == pytest.approx(1.0, abs=0.05)

    def test_replay_on_fresh_server_reproduces_results(self, traced):
        server, recorder = traced
        session = server.create_session(application="orig")
        session.execute("SELECT name FROM items WHERE id = 2")
        session.execute("UPDATE items SET qty = 77 WHERE id = 2")

        # fresh server with the same schema/data
        from repro import DatabaseServer, ServerConfig
        fresh = DatabaseServer(ServerConfig(track_completed_queries=True))
        fresh.execute_ddl(
            "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, "
            "name VARCHAR(30), price FLOAT, qty INT, segment VARCHAR(10))"
        )
        loader = fresh.create_session()
        loader.execute(
            "INSERT INTO items (id, name, price, qty, segment) VALUES "
            "(2, 'pear', 2.0, 5, 'fruit')")
        replay_session = replay(fresh, recorder.entries)
        fresh.run()
        assert replay_session.results[0].rows == [("pear",)]
        check = fresh.create_session()
        assert check.execute(
            "SELECT qty FROM items WHERE id = 2").rows == [(77,)]
