"""Edge-case tests for execution operators and isolation levels."""

import pytest

from repro import DatabaseServer, ServerConfig, Statement
from repro.engine.txn import IsolationLevel


def q(server, sql, params=None):
    session = server.create_session()
    result = session.execute(sql, params)
    server.close_session(session)
    return result.rows


@pytest.fixture
def duo_server(server):
    server.execute_ddl(
        "CREATE TABLE l (id INT NOT NULL PRIMARY KEY, k INT, v FLOAT)")
    server.execute_ddl(
        "CREATE TABLE r (id INT NOT NULL PRIMARY KEY, k INT, w FLOAT)")
    s = server.create_session()
    s.execute("INSERT INTO l VALUES (1, 10, 1.0), (2, 10, 2.0), "
              "(3, 20, 3.0), (4, NULL, 4.0)")
    s.execute("INSERT INTO r VALUES (1, 10, 5.0), (2, 10, 6.0), "
              "(3, 30, 7.0), (4, NULL, 8.0)")
    return server


class TestJoinEdgeCases:
    def test_hash_join_duplicates_multiply(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k")
        # k=10: 2 left rows × 2 right rows = 4 combinations
        assert len(rows) == 4

    def test_null_keys_never_join(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.id FROM l JOIN r ON l.k = r.k WHERE l.id = 4")
        assert rows == []

    def test_left_join_null_key_row_survives(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.id, r.id FROM l LEFT JOIN r ON l.k = r.k "
                 "WHERE l.id = 4")
        assert rows == [(4, None)]

    def test_left_join_where_on_left_side_pushed(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.id, r.id FROM l LEFT JOIN r ON l.k = r.k "
                 "WHERE l.v > 2.5 ORDER BY l.id")
        assert [row[0] for row in rows] == [3, 4]
        assert all(row[1] is None for row in rows)

    def test_join_on_expression_falls_back_to_nl(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.id, r.id FROM l JOIN r ON l.k = r.k + 20 "
                 "ORDER BY l.id, r.id")
        # l.k=30 never; l.k matches r.k+20 → l.k=30? none; k=10+20=30: l
        # has none; l.k=20 matches r.k=0: none... wait: r.k+20 ∈ {30, 30,
        # 50}: l.k=20 never matches, l.k=10 never. Expect empty.
        assert rows == []

    def test_self_join_with_aliases(self, duo_server):
        rows = q(duo_server,
                 "SELECT a.id, b.id FROM l a JOIN l b ON a.k = b.k "
                 "WHERE a.id < b.id")
        assert rows == [(1, 2)]


class TestAggregationEdgeCases:
    def test_group_by_expression(self, duo_server):
        rows = q(duo_server,
                 "SELECT k / 10, COUNT(*) FROM l WHERE k IS NOT NULL "
                 "GROUP BY k / 10 ORDER BY k / 10")
        assert rows == [(1, 2), (2, 1)]

    def test_aggregate_over_join(self, duo_server):
        rows = q(duo_server,
                 "SELECT l.k, SUM(r.w) FROM l JOIN r ON l.k = r.k "
                 "GROUP BY l.k")
        assert rows == [(10, 22.0)]

    def test_null_group_key_forms_group(self, duo_server):
        rows = q(duo_server,
                 "SELECT k, COUNT(*) FROM l GROUP BY k ORDER BY k")
        assert (None, 1) in rows

    def test_having_on_avg(self, duo_server):
        rows = q(duo_server,
                 "SELECT k FROM l GROUP BY k HAVING AVG(v) > 1.4 "
                 "AND k IS NOT NULL ORDER BY k")
        assert rows == [(10,), (20,)]

    def test_arithmetic_over_aggregates(self, duo_server):
        rows = q(duo_server,
                 "SELECT MAX(v) - MIN(v) FROM l")
        assert rows == [(3.0,)]


class TestSortLimitEdgeCases:
    def test_sort_stability_across_keys(self, duo_server):
        rows = q(duo_server,
                 "SELECT id FROM l ORDER BY k ASC, id DESC")
        # NULL k first, then k=10 ids desc, then k=20
        assert rows == [(4,), (2,), (1,), (3,)]

    def test_limit_larger_than_result(self, duo_server):
        rows = q(duo_server, "SELECT id FROM l LIMIT 100")
        assert len(rows) == 4

    def test_distinct_expressions(self, duo_server):
        rows = q(duo_server, "SELECT DISTINCT v > 2.0 FROM l")
        assert sorted(rows) == [(False,), (True,)]


class TestDMLEdgeCases:
    def test_update_indexed_column_no_halloween(self, duo_server):
        """Updating the seek key must not revisit moved rows."""
        duo_server.execute_ddl("CREATE INDEX ix_lk ON l (k)")
        result_session = duo_server.create_session()
        result = result_session.execute("UPDATE l SET k = k + 1 WHERE k = 10")
        assert result.rows_affected == 2
        assert q(duo_server,
                 "SELECT COUNT(*) FROM l WHERE k = 11") == [(2,)]

    def test_update_to_same_value(self, duo_server):
        session = duo_server.create_session()
        result = session.execute("UPDATE l SET v = v WHERE id = 1")
        assert result.rows_affected == 1

    def test_delete_then_reinsert_same_pk(self, duo_server):
        session = duo_server.create_session()
        session.execute("DELETE FROM l WHERE id = 1")
        result = session.execute("INSERT INTO l VALUES (1, 99, 9.9)")
        assert result.ok
        assert q(duo_server, "SELECT k FROM l WHERE id = 1") == [(99,)]

    def test_insert_duplicate_inside_txn_rolls_back_all(self, duo_server):
        session = duo_server.create_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO l VALUES (50, 1, 1.0)")
        try:
            session.execute("INSERT INTO l VALUES (1, 1, 1.0)")  # dup PK
        except Exception:
            pass
        # statement failed; txn still open, rollback undoes the first insert
        session.execute("ROLLBACK")
        assert q(duo_server, "SELECT COUNT(*) FROM l WHERE id = 50") == [(0,)]


class TestIsolationLevels:
    def test_repeatable_read_blocks_writer_until_commit(self, duo_server):
        reader = duo_server.create_session(
            user="rr", isolation=IsolationLevel.REPEATABLE_READ)
        writer = duo_server.create_session(user="w")
        reader.submit_script([
            "BEGIN",
            "SELECT v FROM l WHERE id = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        writer.submit_script([
            Statement("UPDATE l SET v = 0 WHERE id = 1", think_time=0.1),
        ])
        duo_server.run()
        update_q = writer.results[-1].query
        assert update_q.times_blocked == 1
        assert update_q.time_blocked > 0.5

    def test_read_committed_does_not_block_writer(self, duo_server):
        reader = duo_server.create_session(user="rc")
        writer = duo_server.create_session(user="w")
        reader.submit_script([
            "BEGIN",
            "SELECT v FROM l WHERE id = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        writer.submit_script([
            Statement("UPDATE l SET v = 0 WHERE id = 1", think_time=0.1),
        ])
        duo_server.run()
        assert writer.results[-1].query.times_blocked == 0
