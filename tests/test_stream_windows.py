"""Property tests for incremental window state (pane merge).

The load-bearing claim: a sliding window maintained as per-pane mergeable
aggregate states produces *exactly* the same results as recomputing each
window from the raw events — for COUNT/SUM/AVG and (within float
tolerance) the single-pass STDEV — while doing per-event work proportional
to the number of aggregates and per-emission work bounded by
panes-per-window, never by the events inside the window.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.aggregates import aggregate_function
from repro.errors import StreamError
from repro.stream import WindowSpec, WindowState

FUNCS = ["COUNT", "SUM", "AVG", "STDEV"]


def _reference(values: list[float], func: str):
    """Recompute one aggregate from scratch over raw values."""
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)
    if func == "AVG":
        return sum(values) / len(values)
    if func == "STDEV":
        if len(values) < 2:
            return None
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return math.sqrt(var)
    raise AssertionError(func)


def _random_run(seed: int, spec: WindowSpec, n_events: int,
                n_groups: int) -> None:
    """Drive random events through WindowState and cross-check every
    emitted boundary against recompute-from-scratch."""
    rng = random.Random(seed)
    state = WindowState(spec, [aggregate_function(f) for f in FUNCS])
    raw: dict[tuple, list[tuple[float, float]]] = {}  # key -> [(t, v)]
    t = 0.0
    events = []
    for __ in range(n_events):
        t += rng.expovariate(1.0) * spec.hop / 3.0
        key = (f"g{rng.randrange(n_groups)}",)
        value = rng.uniform(-100.0, 100.0)
        events.append((t, key, value))
        raw.setdefault(key, []).append((t, value))

    emitted = 0
    next_boundary = None
    for when, key, value in events:
        # close every boundary that the clock has passed, checking each
        current = spec.pane_index(when)
        if next_boundary is None:
            next_boundary = current + 1
        while next_boundary <= current:
            _check_boundary(state, spec, raw, next_boundary)
            emitted += 1
            next_boundary += 1
        state.observe(key, [value, value, value, value], when)
    # drain a few trailing boundaries past the last event
    for __ in range(spec.panes_per_window + 2):
        _check_boundary(state, spec, raw, next_boundary)
        emitted += 1
        next_boundary += 1
    assert emitted > 0

    # incrementality by operation count: one update per aggregate per
    # event, and merge work bounded by panes-per-window per group-emission
    assert state.update_ops == n_events * len(FUNCS)
    max_combines = emitted * n_groups * (spec.panes_per_window - 1) \
        * len(FUNCS)
    assert state.combine_ops <= max_combines


def _check_boundary(state: WindowState, spec: WindowSpec,
                    raw: dict, boundary: int) -> None:
    rows, __ = state.emit(boundary)
    got = {key: dict(zip(FUNCS, results)) for key, results in rows}
    low = spec.boundary_time(boundary - spec.panes_per_window)
    high = spec.boundary_time(boundary)
    for key, entries in raw.items():
        values = [v for (when, v) in entries if low <= when < high]
        expected = {f: _reference(values, f) for f in FUNCS}
        if not values:
            assert key not in got or got[key]["COUNT"] == 0
            continue
        row = got[key]
        assert row["COUNT"] == expected["COUNT"]
        assert row["SUM"] == pytest.approx(expected["SUM"], abs=1e-7)
        assert row["AVG"] == pytest.approx(expected["AVG"], abs=1e-9)
        if expected["STDEV"] is None:
            assert row["STDEV"] is None
        else:
            # single-pass Welford state vs two-pass reference
            assert row["STDEV"] == pytest.approx(expected["STDEV"],
                                                 rel=1e-6, abs=1e-7)


@pytest.mark.parametrize("seed", range(8))
def test_sliding_pane_merge_matches_recompute(seed):
    spec = WindowSpec("sliding", 10.0, 1.0)
    _random_run(seed, spec, n_events=300, n_groups=3)


@pytest.mark.parametrize("seed", range(4))
def test_tumbling_matches_recompute(seed):
    spec = WindowSpec("tumbling", 5.0, 5.0)
    _random_run(100 + seed, spec, n_events=200, n_groups=2)


@pytest.mark.parametrize("seed", range(4))
def test_hopping_matches_recompute(seed):
    spec = WindowSpec("hopping", 6.0, 2.0)
    _random_run(200 + seed, spec, n_events=200, n_groups=4)


def test_stdev_numerical_stability_large_offset():
    """Single-pass STDEV must survive values with a large common offset
    (the classic catastrophic-cancellation trap)."""
    spec = WindowSpec("tumbling", 10.0, 10.0)
    state = WindowState(spec, [aggregate_function("STDEV")])
    base = 1e9
    values = [base + v for v in (0.0, 1.0, 2.0, 3.0, 4.0)]
    for i, v in enumerate(values):
        state.observe(("g",), [v], 1.0 + i)
    rows, __ = state.emit(1)
    [(__, [got])] = rows
    mean = sum(values) / len(values)
    expected = math.sqrt(
        sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    assert got == pytest.approx(expected, rel=1e-3)


def test_window_spec_validation():
    with pytest.raises(StreamError):
        WindowSpec("sliding", 10.0, 3.0)  # length not a hop multiple
    with pytest.raises(StreamError):
        WindowSpec("sliding", 1.0, 2.0)  # hop exceeds length
    with pytest.raises(StreamError):
        WindowSpec("sideways", 10.0, 1.0)
    with pytest.raises(StreamError):
        WindowSpec("tumbling", 0.0, 0.0)
    assert WindowSpec("sliding", 10.0, 2.5).panes_per_window == 4


def test_out_of_order_event_rejected():
    spec = WindowSpec("sliding", 4.0, 1.0)
    state = WindowState(spec, [aggregate_function("COUNT")])
    state.observe(("g",), [1], 5.0)
    with pytest.raises(StreamError):
        state.observe(("g",), [1], 3.0)


def test_expired_groups_are_dropped():
    spec = WindowSpec("sliding", 4.0, 1.0)
    state = WindowState(spec, [aggregate_function("COUNT")])
    state.observe(("old",), [1], 0.5)
    state.observe(("new",), [1], 20.5)
    # at boundary 21, panes below 17 are expired: "old" dies entirely
    rows, __ = state.emit(21)
    assert {key for key, __ in rows} == {("new",)}
    assert state.group_count == 1
