"""Tests for the baseline monitors (Query_logging, PULL, PULL_history)."""

import pytest

from repro import DatabaseServer, ServerConfig, Statement
from repro.monitoring import (PullHistoryMonitor, PullMonitor,
                              QueryLoggingMonitor, missed_top_k,
                              top_k_ground_truth)


@pytest.fixture
def busy_server():
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    server.execute_ddl(
        "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v FLOAT)"
    )
    loader = server.create_session(application="loader")
    loader.execute("INSERT INTO t VALUES " + ", ".join(
        f"({i}, {float(i)})" for i in range(1, 401)))
    return server


def run_workload(server, n=20, think=0.05):
    session = server.create_session(application="app")
    script = [Statement(f"SELECT v FROM t WHERE id = {i % 50 + 1}",
                        think_time=think) for i in range(n)]
    # one long query in the middle
    script.insert(n // 2, Statement("SELECT COUNT(*), AVG(v) FROM t",
                                    think_time=think))
    session.submit_script(script)
    server.run(until=60.0)
    return session


class TestQueryLogging:
    def test_every_commit_logged(self, busy_server):
        monitor = QueryLoggingMonitor(busy_server)
        run_workload(busy_server, n=10)
        assert monitor.rows_written == 11
        assert busy_server.table("query_log").row_count == 11

    def test_top_k_via_sql_postprocessing(self, busy_server):
        monitor = QueryLoggingMonitor(busy_server)
        run_workload(busy_server, n=10)
        top = monitor.top_k(3)
        assert len(top) == 3
        assert top[0][1].startswith("SELECT COUNT(*)")
        # ordered by duration descending
        assert top[0][2] >= top[1][2] >= top[2][2]

    def test_detach_stops_logging(self, busy_server):
        monitor = QueryLoggingMonitor(busy_server)
        monitor.detach()
        run_workload(busy_server, n=5)
        assert monitor.rows_written == 0

    def test_logging_slows_workload(self, busy_server):
        # run without monitor
        plain = DatabaseServer(ServerConfig(track_completed_queries=True))
        plain.execute_ddl(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v FLOAT)")
        loader = plain.create_session(application="loader")
        loader.execute("INSERT INTO t VALUES " + ", ".join(
            f"({i}, {float(i)})" for i in range(1, 401)))
        base_start = plain.clock.now
        run_workload(plain, n=20, think=0.0)
        base_elapsed = plain.clock.now - base_start

        QueryLoggingMonitor(busy_server)
        monitored_start = busy_server.clock.now
        run_workload(busy_server, n=20, think=0.0)
        monitored_elapsed = busy_server.clock.now - monitored_start
        assert monitored_elapsed > base_elapsed


class TestPull:
    def test_poll_sees_active_query(self, busy_server):
        monitor = PullMonitor(busy_server, interval=0.01)
        monitor.start()
        run_workload(busy_server, n=20)
        monitor.stop()
        assert monitor.poll_count > 10
        # the long aggregate query is long enough to be observed
        texts = {o.text for o in monitor.observed.values()}
        assert any(t.startswith("SELECT COUNT(*)") for t in texts)

    def test_infrequent_polling_misses_queries(self, busy_server):
        monitor = PullMonitor(busy_server, interval=30.0)
        monitor.start()
        run_workload(busy_server, n=20)
        monitor.stop()
        truth = top_k_ground_truth(busy_server, 5, exclude_apps=("loader",))
        missed = missed_top_k(truth, monitor.top_k(5))
        assert missed >= 3

    def test_observed_elapsed_underestimates(self, busy_server):
        monitor = PullMonitor(busy_server, interval=0.001)
        monitor.start()
        run_workload(busy_server, n=5)
        monitor.stop()
        truth = {q.query_id: q.duration_at(busy_server.clock.now)
                 for q in busy_server.completed_queries}
        for observed in monitor.observed.values():
            assert observed.best_elapsed <= truth[observed.query_id] + 1e-9

    def test_bad_interval_rejected(self, busy_server):
        with pytest.raises(ValueError):
            PullMonitor(busy_server, interval=0)


class TestPullHistory:
    def test_exact_answers(self, busy_server):
        monitor = PullHistoryMonitor(busy_server, interval=1.0)
        monitor.start()
        run_workload(busy_server, n=20)
        monitor.stop()
        truth = top_k_ground_truth(busy_server, 5, exclude_apps=("loader",))
        assert missed_top_k(truth, monitor.top_k(5)) == 0

    def test_history_drained_on_poll(self, busy_server):
        monitor = PullHistoryMonitor(busy_server, interval=0.5)
        monitor.start()
        run_workload(busy_server, n=10)
        monitor.stop()
        assert monitor.poll_count >= 1
        assert len(monitor.collected) >= 10

    def test_history_consumes_server_memory(self, busy_server):
        monitor = PullHistoryMonitor(busy_server, interval=1000.0)
        run_workload(busy_server, n=20)
        assert monitor.history_rows == 21
        assert busy_server.reserved_pages > 0
        monitor.poll()
        assert busy_server.reserved_pages == 0

    def test_detach_releases_memory(self, busy_server):
        monitor = PullHistoryMonitor(busy_server, interval=1000.0)
        run_workload(busy_server, n=5)
        assert busy_server.reserved_pages > 0
        monitor.detach()
        assert busy_server.reserved_pages == 0


class TestAccuracyHelpers:
    def test_missed_by_id(self):
        truth = [(1, "a", 9.0), (2, "b", 8.0)]
        assert missed_top_k(truth, [(1, "a", 9.0)]) == 1
        assert missed_top_k(truth, truth) == 0

    def test_missed_by_text_when_no_ids(self):
        truth = [(1, "a", 9.0), (2, "b", 8.0)]
        assert missed_top_k(truth, [(None, "a", 9.0)]) == 1

    def test_ground_truth_excludes_monitor_apps(self, busy_server):
        QueryLoggingMonitor(busy_server)
        run_workload(busy_server, n=3)
        monitor_session = busy_server.create_session(
            user="monitor", application="query_logging")
        monitor_session.execute("SELECT COUNT(*) FROM query_log")
        truth = top_k_ground_truth(busy_server, 100)
        assert all("query_log" not in t[1] for t in truth)
