"""Tests for EXPLAIN plan rendering."""

import io

import pytest

from repro.cli import Shell
from repro.engine.planner.explain import explain_plan, explain_query


class TestExplain:
    def test_point_query_shows_index_seek(self, items_server):
        text = explain_query(items_server,
                             "SELECT name FROM items WHERE id = 1")
        assert "INDEXSEEK(items.pk_items)" in text
        assert "PROJECT" in text
        assert "rows=1" in text

    def test_scan_query_shows_table_scan(self, items_server):
        text = explain_query(items_server,
                             "SELECT name FROM items WHERE price > 1")
        assert "TABLESCAN(items)" in text
        assert "filtered" in text

    def test_join_plan_rendered_with_children_indented(self, items_server):
        items_server.execute_ddl(
            "CREATE TABLE seg (name VARCHAR(10) NOT NULL PRIMARY KEY)")
        text = explain_query(
            items_server,
            "SELECT i.name FROM items i JOIN seg s ON i.segment = s.name")
        lines = [l for l in text.splitlines() if "signature" not in l]
        join_line = next(l for l in lines if "HASHJOIN" in l)
        child_lines = [l for l in lines if "TABLESCAN" in l]
        assert len(child_lines) == 2
        assert all(len(l) - len(l.lstrip()) >
                   len(join_line) - len(join_line.lstrip())
                   for l in child_lines)

    def test_signatures_included(self, items_server):
        text = explain_query(items_server,
                             "SELECT name FROM items WHERE id = 42")
        assert "logical signature" in text
        assert "GET(items)" in text
        assert "?" in text  # the constant became a wildcard

    def test_uses_cached_plan_when_available(self, items_server):
        session = items_server.create_session()
        sql = "SELECT name FROM items WHERE id = 1"
        session.execute(sql)
        hits_before = items_server.plan_cache.hits
        explain_query(items_server, sql)
        assert items_server.plan_cache.hits == hits_before + 1

    def test_update_plan_shows_lock_mode(self, items_server):
        text = explain_query(items_server,
                             "UPDATE items SET qty = 0 WHERE id = 1")
        assert "UPDATE(items)" in text
        assert "lock=X" in text

    def test_aggregate_plan(self, items_server):
        text = explain_query(
            items_server,
            "SELECT segment, COUNT(*) FROM items GROUP BY segment")
        assert "AGG(COUNT_STAR)" in text
        assert "groups=1" in text

    def test_sort_directions(self, items_server):
        text = explain_query(
            items_server,
            "SELECT name FROM items ORDER BY price DESC, name ASC")
        assert "[desc,asc]" in text

    def test_explain_plan_direct(self, items_server):
        from repro.engine.planner.logical import build_logical_plan
        from repro.engine.sqlparse.parser import parse_statement
        stmt = parse_statement("SELECT id FROM items LIMIT 3")
        plan = items_server.optimizer.optimize(
            build_logical_plan(stmt, items_server.catalog))
        text = explain_plan(plan)
        assert "LIMIT(3)" in text

    def test_cli_explain_command(self):
        out = io.StringIO()
        shell = Shell(out=out)
        shell.execute_line("CREATE TABLE t (a INT PRIMARY KEY)")
        shell.execute_line(".explain SELECT a FROM t WHERE a = 1")
        assert "INDEXSEEK" in out.getvalue()

    def test_cli_explain_bad_sql(self):
        out = io.StringIO()
        shell = Shell(out=out)
        shell.execute_line(".explain SELEKT nope")
        assert "error:" in out.getvalue()
