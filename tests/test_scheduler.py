"""Tests for the cooperative discrete-event scheduler."""

import pytest

from repro.sim import Delay, Scheduler, WaitLock
from repro.sim.scheduler import SchedulerStalledError


def _delays(*durations):
    for dt in durations:
        yield Delay(dt)


class TestBasicScheduling:
    def test_single_process_advances_clock(self):
        sched = Scheduler()
        sched.spawn("p", _delays(1.0, 2.0))
        sched.run()
        assert sched.clock.now == pytest.approx(3.0)

    def test_process_result(self):
        def proc():
            yield Delay(0.5)
            return "done"

        sched = Scheduler()
        handle = sched.spawn("p", proc())
        sched.run()
        assert handle.done
        assert handle.result == "done"

    def test_two_processes_interleave_in_time_order(self):
        log = []

        def proc(name, step):
            for i in range(3):
                yield Delay(step)
                log.append((name, round(sched.clock.now, 3)))

        sched = Scheduler()
        sched.spawn("fast", proc("fast", 1.0))
        sched.spawn("slow", proc("slow", 1.5))
        sched.run()
        # at the t=3.0 tie, slow enqueued its wake-up first (at t=1.5,
        # before fast's at t=2.0), so FIFO runs slow first
        assert log == [
            ("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0),
            ("fast", 3.0), ("slow", 4.5),
        ]

    def test_spawn_at_future_time(self):
        times = []

        def proc():
            yield Delay(0.1)
            times.append(sched.clock.now)

        sched = Scheduler()
        sched.spawn("late", proc(), at=5.0)
        sched.run()
        assert times == [pytest.approx(5.1)]

    def test_run_until_bounds_virtual_time(self):
        def forever():
            while True:
                yield Delay(1.0)

        sched = Scheduler()
        sched.spawn("loop", forever())
        sched.run(until=10.5)
        assert sched.clock.now == pytest.approx(10.5)

    def test_fifo_among_simultaneous(self):
        order = []

        def proc(name):
            yield Delay(1.0)
            order.append(name)

        sched = Scheduler()
        sched.spawn("a", proc("a"))
        sched.spawn("b", proc("b"))
        sched.run()
        assert order == ["a", "b"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_unsupported_yield_raises(self):
        def bad():
            yield "nonsense"

        sched = Scheduler()
        sched.spawn("bad", bad())
        with pytest.raises(Exception):
            sched.run()


class TestBlockingAndWake:
    def test_waitlock_blocks_until_woken(self):
        log = []

        def waiter():
            yield WaitLock("ticket")
            log.append(("woke", sched.clock.now))

        def waker(proc):
            yield Delay(3.0)
            sched.wake(proc)

        sched = Scheduler()
        blocked = sched.spawn("waiter", waiter())
        sched.spawn("waker", waker(blocked))
        sched.run()
        assert log == [("woke", 3.0)]

    def test_wake_with_exception_throws_into_process(self):
        caught = []

        def waiter():
            try:
                yield WaitLock("t")
            except RuntimeError as err:
                caught.append(str(err))

        def killer(proc):
            yield Delay(1.0)
            sched.wake(proc, exception=RuntimeError("boom"))

        sched = Scheduler()
        blocked = sched.spawn("waiter", waiter())
        sched.spawn("killer", killer(blocked))
        sched.run()
        assert caught == ["boom"]

    def test_stall_raises_without_handler(self):
        def waiter():
            yield WaitLock("never")

        sched = Scheduler()
        sched.spawn("stuck", waiter())
        with pytest.raises(SchedulerStalledError):
            sched.run()

    def test_stall_handler_can_break_stall(self):
        def waiter():
            yield WaitLock("t")

        sched = Scheduler()
        stuck = sched.spawn("stuck", waiter())

        def handler(blocked):
            sched.wake(blocked[0])
            return True

        sched.add_stall_handler(handler)
        sched.run()
        assert stuck.done

    def test_run_until_done_returns_result(self):
        def quick():
            yield Delay(0.1)
            return 42

        def background():
            while True:
                yield Delay(0.5)

        sched = Scheduler()
        sched.spawn("bg", background())
        target = sched.spawn("target", quick())
        assert sched.run_until_done(target) == 42

    def test_cannot_wake_ready_process(self):
        def proc():
            yield Delay(1.0)

        sched = Scheduler()
        handle = sched.spawn("p", proc())
        with pytest.raises(Exception):
            sched.wake(handle)

    def test_process_exception_propagates(self):
        def bad():
            yield Delay(0.1)
            raise ValueError("exploded")

        sched = Scheduler()
        sched.spawn("bad", bad())
        with pytest.raises(ValueError, match="exploded"):
            sched.run()
