"""Tests for lightweight aggregation tables (paper Section 4.3)."""

import pytest

from repro.core.aggregates import AgingSpec
from repro.core.lat import (AggSpec, GroupSpec, LAT, LATDefinition,
                            NaiveListLAT, OrderSpec)
from repro.errors import LATError
from repro.sim import SimClock


@pytest.fixture
def clock():
    return SimClock()


def make_lat(clock, **overrides):
    spec = dict(
        name="Test_LAT",
        monitored_class="Query",
        grouping=["Query.Application AS App"],
        aggregations=[
            "COUNT(Query.ID) AS N",
            "AVG(Query.Duration) AS Avg_D",
            "MAX(Query.Duration) AS Max_D",
        ],
        ordering=["N DESC"],
        max_rows=None,
    )
    spec.update(overrides)
    return LAT(LATDefinition(**spec), clock)


class TestDefinitionParsing:
    def test_string_specs_parsed(self, clock):
        lat = make_lat(clock)
        assert lat.definition.grouping[0] == GroupSpec("Application", "App")
        agg = lat.definition.aggregations[0]
        assert agg.func == "COUNT" and agg.attr == "ID" and agg.alias == "N"

    def test_column_names(self, clock):
        assert make_lat(clock).definition.column_names() == \
            ["App", "N", "Avg_D", "Max_D"]

    def test_default_agg_column_name(self):
        definition = LATDefinition(
            name="x", grouping=["Query.ID"],
            aggregations=["SUM(Query.Duration)"],
        )
        assert definition.aggregations[0].column == "sum_duration"

    def test_ordering_direction_parsing(self):
        definition = LATDefinition(
            name="x", grouping=["Query.ID"],
            aggregations=["SUM(Query.Duration) AS S"],
            ordering=["S ASC"],
        )
        assert definition.ordering[0] == OrderSpec("S", False)

    def test_bad_agg_spec(self):
        with pytest.raises(LATError):
            LATDefinition(name="x", grouping=["Query.ID"],
                          aggregations=["NOPAREN"])

    def test_unknown_ordering_column(self):
        with pytest.raises(LATError):
            LATDefinition(name="x", grouping=["Query.ID"],
                          aggregations=[], ordering=["Ghost DESC"])

    def test_size_limit_requires_ordering(self):
        with pytest.raises(LATError):
            LATDefinition(name="x", grouping=["Query.ID"],
                          aggregations=[], max_rows=5)

    def test_grouping_required(self):
        with pytest.raises(LATError):
            LATDefinition(name="x", grouping=[], aggregations=[])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(LATError):
            LATDefinition(
                name="x", grouping=["Query.ID AS C"],
                aggregations=["SUM(Query.Duration) AS C"],
            )


class TestGroupingAndAggregation:
    def test_group_by_semantics(self, clock):
        lat = make_lat(clock)
        lat.insert({"application": "a", "id": 1, "duration": 2.0})
        lat.insert({"application": "a", "id": 2, "duration": 4.0})
        lat.insert({"application": "b", "id": 3, "duration": 10.0})
        assert len(lat) == 2
        row = lat.lookup(("a",))
        assert row["N"] == 2
        assert row["Avg_D"] == 3.0
        assert row["Max_D"] == 4.0

    def test_lookup_missing_returns_none(self, clock):
        assert make_lat(clock).lookup(("ghost",)) is None

    def test_rows_ordered_by_importance(self, clock):
        lat = make_lat(clock)
        for i, app in enumerate(["a"] * 3 + ["b"] * 5 + ["c"]):
            lat.insert({"application": app, "id": i, "duration": 1.0})
        apps = [row["App"] for row in lat.rows()]
        assert apps == ["b", "a", "c"]

    def test_reset_clears_state(self, clock):
        lat = make_lat(clock)
        lat.insert({"application": "a", "id": 1, "duration": 1.0})
        lat.reset()
        assert len(lat) == 0
        assert lat.rows() == []

    def test_null_group_key_allowed(self, clock):
        lat = make_lat(clock)
        lat.insert({"application": None, "id": 1, "duration": 1.0})
        assert lat.lookup((None,))["N"] == 1

    def test_insert_statistics(self, clock):
        lat = make_lat(clock)
        for i in range(4):
            lat.insert({"application": "a", "id": i, "duration": 1.0})
        assert lat.insert_count == 4
        assert lat.peak_rows == 1
        assert lat.latch_acquisitions >= 12


class TestEviction:
    def _topk_lat(self, clock, k):
        return LAT(LATDefinition(
            name="TopK",
            grouping=["Query.ID AS Qid"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_rows=k,
        ), clock)

    def test_keeps_k_largest(self, clock):
        lat = self._topk_lat(clock, 3)
        evicted_all = []
        for i, duration in enumerate([5.0, 1.0, 9.0, 3.0, 7.0]):
            evicted_all.extend(
                lat.insert({"id": i, "duration": duration}))
        durations = [row["D"] for row in lat.rows()]
        assert durations == [9.0, 7.0, 5.0]
        assert {row["D"] for row in evicted_all} == {1.0, 3.0}
        assert lat.eviction_count == 2

    def test_new_row_can_be_evicted_immediately(self, clock):
        lat = self._topk_lat(clock, 2)
        lat.insert({"id": 1, "duration": 10.0})
        lat.insert({"id": 2, "duration": 8.0})
        evicted = lat.insert({"id": 3, "duration": 1.0})
        assert [row["Qid"] for row in evicted] == [3]

    def test_ascending_ordering_evicts_largest(self, clock):
        lat = LAT(LATDefinition(
            name="BottomK",
            grouping=["Query.ID AS Qid"],
            aggregations=["MIN(Query.Duration) AS D"],
            ordering=["D ASC"],
            max_rows=2,
        ), clock)
        for i, duration in enumerate([5.0, 1.0, 9.0]):
            lat.insert({"id": i, "duration": duration})
        assert [row["D"] for row in lat.rows()] == [1.0, 5.0]

    def test_max_bytes_limit(self, clock):
        lat = LAT(LATDefinition(
            name="Small",
            grouping=["Query.ID AS Qid"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_bytes=300,
        ), clock)
        for i in range(10):
            lat.insert({"id": i, "duration": float(i)})
        assert lat.memory_bytes() <= 300
        assert len(lat) < 10

    def test_tie_break_evicts_oldest(self, clock):
        lat = self._topk_lat(clock, 2)
        lat.insert({"id": 1, "duration": 5.0})
        lat.insert({"id": 2, "duration": 5.0})
        lat.insert({"id": 3, "duration": 5.0})
        assert sorted(row["Qid"] for row in lat.rows()) == [2, 3]


class TestAgingInLAT:
    def test_aging_aggregation_column(self, clock):
        lat = LAT(LATDefinition(
            name="Aged",
            grouping=["Query.Application AS App"],
            aggregations=[AggSpec("SUM", "Duration", "S",
                                  aging=AgingSpec(window=10.0, delta=1.0))],
        ), clock)
        lat.insert({"application": "a", "duration": 5.0})
        clock.advance(8.0)
        lat.insert({"application": "a", "duration": 7.0})
        assert lat.lookup(("a",))["S"] == 12.0
        clock.advance(7.0)  # now 15: first block expired
        assert lat.lookup(("a",))["S"] == 7.0


class TestSeedRestore:
    def test_seed_row_restores_values(self, clock):
        lat = make_lat(clock)
        lat.seed_row({"app": "a", "n": 4, "avg_d": 2.5, "max_d": 9.0})
        row = lat.lookup(("a",))
        assert row["N"] == 4
        assert row["Avg_D"] == 2.5
        assert row["Max_D"] == 9.0

    def test_seeded_avg_continues_correctly_with_count(self, clock):
        lat = make_lat(clock)
        lat.seed_row({"app": "a", "n": 4, "avg_d": 2.0, "max_d": 2.0})
        # 4 values averaging 2.0 restored; one more value of 7.0 → avg 3.0
        lat.insert({"application": "a", "id": 9, "duration": 7.0})
        assert lat.lookup(("a",))["Avg_D"] == pytest.approx(3.0)


class TestNaiveListLAT:
    def test_same_results_as_default(self, clock):
        default = make_lat(clock)
        naive = NaiveListLAT(default.definition, clock)
        for i in range(20):
            record = {"application": f"app{i % 3}", "id": i,
                      "duration": float(i)}
            default.insert(record)
            naive.insert(record)
        assert default.rows() == naive.rows()
        assert naive.lookup(("app1",)) == default.lookup(("app1",))
