"""Tests for the SQL parser."""

import pytest

from repro.engine.sqlparse import ast_nodes as ast
from repro.engine.sqlparse.parser import parse_statement as parse
from repro.errors import SQLSyntaxError


class TestSelect:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert [i.expr.name for i in stmt.items] == ["a", "b"]
        assert stmt.table.name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].expr == ast.ColumnRef("*")

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.ColumnRef("*", table="t")

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "z"

    def test_where_precedence_and_over_or(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parens_override_precedence(self):
        stmt = parse("SELECT (a + b) * c FROM t")
        assert stmt.items[0].expr.op == "*"

    def test_unary_minus_folds_literal(self):
        stmt = parse("SELECT -5 FROM t")
        assert stmt.items[0].expr == ast.Literal(-5)

    def test_join(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.id = u.id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"

    def test_inner_and_left_join(self):
        stmt = parse(
            "SELECT a FROM t INNER JOIN u ON t.x = u.x "
            "LEFT JOIN v ON t.y = v.y"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_group_by_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_top_and_limit(self):
        assert parse("SELECT TOP 5 a FROM t").limit == 5
        assert parse("SELECT a FROM t LIMIT 7").limit == 7

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_between_in_like_isnull(self):
        stmt = parse(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) "
            "AND c LIKE 'x%' AND d IS NULL"
        )
        text = repr(stmt.where)
        assert "Between" in text and "InList" in text
        assert "Like" in text and "IsNull" in text

    def test_negated_predicates(self):
        stmt = parse(
            "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2 "
            "AND b NOT IN (3) AND c NOT LIKE 'y%' AND d IS NOT NULL"
        )
        text = repr(stmt.where)
        assert text.count("negated=True") == 4

    def test_count_star_and_distinct_agg(self):
        stmt = parse("SELECT COUNT(*), COUNT(DISTINCT a), STDEV(b) FROM t")
        count_star = stmt.items[0].expr
        assert count_star.star
        assert stmt.items[1].expr.distinct

    def test_parameters(self):
        stmt = parse("SELECT a FROM t WHERE id = @key")
        assert stmt.where.right == ast.Parameter("key")


class TestDML:
    def test_insert_multiple_rows(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x')")
        assert stmt.columns == ()

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 0")
        assert stmt.table == "t"

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDDLAndControl:
    def test_create_table_types(self):
        stmt = parse(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(10), c FLOAT, "
            "d DATETIME, e BOOLEAN, PRIMARY KEY (a))"
        )
        assert stmt.columns[0] == ("a", "INTEGER", False)
        assert stmt.columns[1] == ("b", "STRING", True)
        assert stmt.primary_key == ("a",)

    def test_inline_primary_key(self):
        stmt = parse("CREATE TABLE t (a INT PRIMARY KEY, b FLOAT)")
        assert stmt.primary_key == ("a",)

    def test_create_index(self):
        stmt = parse("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert stmt.unique
        assert stmt.columns == ("a", "b")

    def test_transaction_keywords(self):
        assert isinstance(parse("BEGIN"), ast.BeginStmt)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.BeginStmt)
        assert isinstance(parse("COMMIT"), ast.CommitStmt)
        assert isinstance(parse("ROLLBACK TRAN"), ast.RollbackStmt)

    def test_exec(self):
        stmt = parse("EXEC myproc @a = 1, @b = 'x'")
        assert stmt.procedure == "myproc"
        assert stmt.arguments[0] == ("a", ast.Literal(1))

    def test_exec_no_args(self):
        assert parse("EXEC p").arguments == ()


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT a FROM",
        "FROB x",
        "SELECT a FROM t WHERE",
        "INSERT INTO t VALUES",
        "UPDATE t",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t trailing nonsense tokens (",
        "CREATE TABLE t (a NOTATYPE)",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        try:
            parse("SELECT a FRM t")
        except SQLSyntaxError as err:
            assert err.position is not None
        else:  # pragma: no cover
            pytest.fail("expected syntax error")


class TestASTHelpers:
    def test_is_aggregate(self):
        stmt = parse("SELECT COUNT(*) + 1 FROM t")
        assert ast.is_aggregate(stmt.items[0].expr)
        stmt = parse("SELECT a + 1 FROM t")
        assert not ast.is_aggregate(stmt.items[0].expr)

    def test_walk_visits_all_nodes(self):
        stmt = parse("SELECT a FROM t WHERE a + 1 > 2 AND b = 3")
        nodes = list(ast.walk(stmt.where))
        assert sum(1 for n in nodes if isinstance(n, ast.ColumnRef)) == 2
        assert sum(1 for n in nodes if isinstance(n, ast.Literal)) == 3
