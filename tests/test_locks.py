"""Unit tests for the lock manager (modes, queues, deadlock detection)."""

import pytest

from repro.engine.locks import (LockManager, combine_modes, mode_covers)
from repro.errors import DeadlockError, QueryCancelledError
from repro.sim import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def locks(clock):
    return LockManager(clock)


RES = ("table", "t")
ROW = ("row", "t", 1)


class TestModeAlgebra:
    def test_mode_covers_reflexive(self):
        for mode in ("IS", "IX", "S", "U", "X"):
            assert mode_covers(mode, mode)

    def test_x_covers_everything(self):
        for mode in ("IS", "IX", "S", "U", "X"):
            assert mode_covers("X", mode)

    def test_s_covers_is(self):
        assert mode_covers("S", "IS")
        assert not mode_covers("S", "IX")
        assert not mode_covers("IS", "S")

    def test_combine_s_ix_escalates(self):
        assert combine_modes("S", "IX") == "X"

    def test_combine_respects_coverage(self):
        assert combine_modes("X", "S") == "X"
        assert combine_modes("IS", "IX") == "IX"


class TestGrantAndConflict:
    def test_immediate_grant_when_free(self, locks):
        ticket = locks.request(1, RES, "S")
        assert ticket.granted

    def test_shared_locks_compatible(self, locks):
        assert locks.request(1, RES, "S").granted
        assert locks.request(2, RES, "S").granted

    def test_exclusive_conflicts_with_shared(self, locks):
        locks.request(1, RES, "S")
        ticket = locks.request(2, RES, "X")
        assert not ticket.granted
        assert ticket.outcome is None

    def test_intent_locks_compatible_with_each_other(self, locks):
        assert locks.request(1, RES, "IS").granted
        assert locks.request(2, RES, "IX").granted

    def test_ix_blocks_s(self, locks):
        locks.request(1, RES, "IX")
        assert not locks.request(2, RES, "S").granted

    def test_reacquire_same_mode_instant(self, locks):
        locks.request(1, RES, "X")
        assert locks.request(1, RES, "X").granted
        assert locks.request(1, RES, "S").granted  # covered by X

    def test_conversion_bypasses_queue(self, locks):
        locks.request(1, RES, "S")
        locks.request(2, RES, "X")  # queued
        upgrade = locks.request(1, RES, "X")
        assert upgrade.granted  # conversion jumps ahead of waiter
        assert locks.holders_of(RES)[1] == "X"

    def test_fifo_fairness(self, locks):
        locks.request(1, RES, "X")
        locks.request(2, RES, "X")  # waits
        later = locks.request(3, RES, "S")
        assert not later.granted  # may not jump the queue

    def test_release_grants_next_in_queue(self, locks, clock):
        locks.request(1, RES, "X")
        waiting = locks.request(2, RES, "X")
        clock.advance(2.0)
        locks.release_all(1)
        assert waiting.granted
        assert waiting.wait_time == pytest.approx(2.0)

    def test_release_grants_multiple_compatible(self, locks):
        locks.request(1, RES, "X")
        w1 = locks.request(2, RES, "S")
        w2 = locks.request(3, RES, "S")
        locks.release_all(1)
        assert w1.granted and w2.granted

    def test_release_single_resource(self, locks):
        locks.request(1, RES, "S")
        locks.request(1, ROW, "S")
        locks.release(1, RES)
        assert locks.locks_held(1) == {ROW}


class TestCallbacks:
    def test_block_and_unblock_callbacks(self, clock):
        blocked, unblocked = [], []
        locks = LockManager(
            clock,
            on_block=lambda t, b: blocked.append((t.txn_id,
                                                  [x.txn_id for x in b])),
            on_unblock=lambda t: unblocked.append(t.txn_id),
        )
        locks.request(1, RES, "X")
        locks.request(2, RES, "S")
        assert blocked == [(2, [1])]
        locks.release_all(1)
        assert unblocked == [2]

    def test_waker_invoked_on_grant(self, clock):
        woken = []
        locks = LockManager(clock, waker=lambda t: woken.append(t.txn_id))
        locks.request(1, RES, "X")
        locks.request(2, RES, "S")
        locks.release_all(1)
        assert woken == [2]


class TestWaitsForGraph:
    def test_edges(self, locks):
        locks.request(1, RES, "X")
        locks.request(2, RES, "S")
        edges = locks.waits_for_edges()
        assert edges == [(2, 1, RES)]

    def test_blocking_pairs_designates_blocker(self, locks):
        locks.request(1, RES, "S")
        locks.request(2, RES, "S")
        locks.request(3, RES, "X")
        pairs = locks.blocking_pairs()
        assert len(pairs) == 1
        ticket, blocker, resource = pairs[0]
        assert ticket.txn_id == 3
        assert blocker in (1, 2)
        assert resource == RES

    def test_deadlock_detected_at_enqueue(self, locks):
        locks.request(1, ("row", "t", 1), "X")
        locks.request(2, ("row", "t", 2), "X")
        locks.request(1, ("row", "t", 2), "X")  # 1 waits on 2
        victim = locks.request(2, ("row", "t", 1), "X")  # closes the cycle
        assert victim.outcome == "deadlock"
        with pytest.raises(DeadlockError):
            victim.resolve_or_raise()
        assert locks.deadlocks_detected == 1

    def test_no_false_deadlock(self, locks):
        locks.request(1, RES, "X")
        waiting = locks.request(2, RES, "X")
        assert waiting.outcome is None

    def test_three_party_deadlock(self, locks):
        r1, r2, r3 = ("r", 1), ("r", 2), ("r", 3)
        locks.request(1, r1, "X")
        locks.request(2, r2, "X")
        locks.request(3, r3, "X")
        locks.request(1, r2, "X")
        locks.request(2, r3, "X")
        closing = locks.request(3, r1, "X")
        assert closing.outcome == "deadlock"

    def test_detect_deadlocks_scan(self, locks):
        # build a cycle bypassing enqueue detection by editing nothing:
        # enqueue detection already prevents cycles, so scan finds none
        locks.request(1, RES, "X")
        locks.request(2, RES, "X")
        assert locks.detect_deadlocks() == []


class TestCancelAndAbort:
    def test_cancel_wait_removes_from_queue(self, locks):
        locks.request(1, RES, "X")
        waiting = locks.request(2, RES, "S")
        ticket = locks.cancel_wait(2)
        assert ticket is waiting
        assert ticket.outcome == "cancelled"
        with pytest.raises(QueryCancelledError):
            ticket.resolve_or_raise()
        assert locks.waiters_of(RES) == []

    def test_cancel_unknown_txn_returns_none(self, locks):
        assert locks.cancel_wait(99) is None

    def test_abort_waiter_marks_deadlock(self, locks):
        locks.request(1, RES, "X")
        locks.request(2, RES, "S")
        ticket = locks.abort_waiter(2)
        assert ticket.outcome == "deadlock"

    def test_cancel_wakes_queue_behind(self, locks):
        locks.request(1, RES, "S")
        blocked_x = locks.request(2, RES, "X")
        queued_s = locks.request(3, RES, "S")
        assert not queued_s.granted  # behind the X in FIFO order
        locks.cancel_wait(2)
        assert queued_s.granted  # X removed, S now compatible
