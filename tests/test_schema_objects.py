"""Tests for the SQLCM schema (Appendix A) and monitored objects."""

import pytest

from repro import SQLCM
from repro.core.objects import MonitoredObject
from repro.core.schema import (AttributeDef, EventDef, MonitoredClassDef,
                               SCHEMA)
from repro.engine.types import SQLType
from repro.errors import SchemaError


class TestSchemaContents:
    def test_five_paper_classes_present(self):
        for name in ("Query", "Transaction", "Blocker", "Blocked", "Timer"):
            assert SCHEMA.has_class(name)

    def test_query_attributes_match_appendix_a(self):
        cls = SCHEMA.monitored_class("Query")
        for attr in ("ID", "Query_Text", "Logical_Signature",
                     "Physical_Signature", "Start_Time", "Duration",
                     "Estimated_Cost", "Time_Blocked", "Times_Blocked",
                     "Queries_Blocked", "Number_of_instances", "Query_Type"):
            assert cls.has_attribute(attr)

    def test_query_events(self):
        cls = SCHEMA.monitored_class("Query")
        for event in ("Start", "Compile", "Commit", "Cancel", "Rollback",
                      "Blocked", "Block_Released"):
            assert cls.event(event).engine_event.startswith("query.")

    def test_blocker_blocked_extend_query_schema(self):
        for name in ("Blocker", "Blocked"):
            cls = SCHEMA.monitored_class(name)
            assert cls.has_attribute("Duration")
            assert cls.has_attribute("Wait_Time")
            assert cls.has_attribute("Resource")

    def test_timer_attributes(self):
        cls = SCHEMA.monitored_class("Timer")
        assert cls.has_attribute("Current_Time")
        assert cls.event("Alert").engine_event == "timer.alert"

    def test_transaction_signature_attr_is_blob(self):
        cls = SCHEMA.monitored_class("Transaction")
        assert cls.attribute("Logical_Signature").sql_type is SQLType.BLOB

    def test_resolve_event_spec(self):
        cls, event = SCHEMA.resolve_event("Query.Commit")
        assert cls.name == "Query"
        assert event.engine_event == "query.commit"

    def test_resolve_bad_specs(self):
        with pytest.raises(SchemaError):
            SCHEMA.resolve_event("QueryCommit")
        with pytest.raises(SchemaError):
            SCHEMA.resolve_event("Query.Explode")
        with pytest.raises(SchemaError):
            SCHEMA.resolve_event("Ghost.Commit")

    def test_schema_extensible(self):
        schema_classes = len(SCHEMA.classes())
        table_class = MonitoredClassDef(
            "TestTable",
            [AttributeDef("Name", SQLType.STRING)],
            [EventDef("Grow", "query.commit")],
        )
        SCHEMA.register_class(table_class)
        try:
            assert SCHEMA.has_class("TestTable")
            with pytest.raises(SchemaError):
                SCHEMA.register_class(table_class)
        finally:
            SCHEMA._classes.pop("testtable")
        assert len(SCHEMA.classes()) == schema_classes


class TestMonitoredObjects:
    def test_query_object_probes(self, items_server):
        sqlcm = SQLCM(items_server)
        session = items_server.create_session(user="alice",
                                              application="crm")
        result = session.execute("SELECT id FROM items WHERE id = 1")
        obj = sqlcm.factory.query(result.query)
        assert obj.get("ID") == result.query.query_id
        assert obj.get("query_text") == "SELECT id FROM items WHERE id = 1"
        assert obj.get("User") == "alice"
        assert obj.get("Application") == "crm"
        assert obj.get("Query_Type") == "SELECT"
        assert obj.get("Duration") > 0
        assert obj.get("Estimated_Cost") > 0
        assert obj.get("Times_Blocked") == 0

    def test_unknown_probe_raises(self, items_server):
        sqlcm = SQLCM(items_server)
        session = items_server.create_session()
        result = session.execute("SELECT id FROM items WHERE id = 1")
        obj = sqlcm.factory.query(result.query)
        with pytest.raises(SchemaError):
            obj.get("Imaginary")

    def test_snapshot_materializes_attributes(self, items_server):
        sqlcm = SQLCM(items_server)
        session = items_server.create_session()
        result = session.execute("SELECT id FROM items WHERE id = 1")
        obj = sqlcm.factory.query(result.query)
        snap = obj.snapshot(["ID", "Query_Type"])
        assert snap == {"ID": result.query.query_id, "Query_Type": "SELECT"}

    def test_blocker_object_extras(self, items_server):
        sqlcm = SQLCM(items_server)
        session = items_server.create_session()
        result = session.execute("SELECT id FROM items WHERE id = 1")
        obj = sqlcm.factory.blocker(result.query, ("row", "items", 1), 2.5)
        assert obj.class_name == "Blocker"
        assert obj.get("Wait_Time") == 2.5
        assert "items" in obj.get("Resource")

    def test_timer_object(self, items_server):
        sqlcm = SQLCM(items_server)
        timer = sqlcm.set_timer("t1", interval=5.0, repeats=2)
        obj = sqlcm.factory.timer(timer)
        assert obj.get("Name") == "t1"
        assert obj.get("Interval") == 5.0
        assert obj.get("Remaining_Alarms") == 2
        assert obj.get("Current_Time") == items_server.clock.now

    def test_evicted_row_object(self, items_server):
        sqlcm = SQLCM(items_server)
        obj = sqlcm.factory.evicted_row("MyLat", {"App": "x", "N": 3})
        assert obj.get("app") == "x"
        assert obj.get("N") == 3
        assert obj.get("lat_name") == "MyLat"

    def test_duration_live_for_running_query(self, items_server):
        sqlcm = SQLCM(items_server)
        seen = []
        items_server.events.subscribe(
            "query.start",
            lambda e, p: seen.append(
                sqlcm.factory.query(p["query"]).get("Duration")),
        )
        session = items_server.create_session()
        session.execute("SELECT id FROM items WHERE id = 1")
        assert seen == [0.0]
