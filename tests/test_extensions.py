"""Tests for the extension applications: login auditing (Example 4b),
statistics-drift correction (Section 2.1), adaptive MPL (Example 5c)."""

import pytest

from repro import DatabaseServer, Rule, ServerConfig, SQLCM, Statement
from repro.apps import AdaptiveMPLGovernor, LoginAuditor, StatsCorrector
from repro.core.actions import CallbackAction
from repro.errors import EngineError


@pytest.fixture
def world(items_server):
    return items_server, SQLCM(items_server)


class TestLoginFailures:
    def test_authenticator_gates_sessions(self, world):
        server, __ = world
        server.set_authenticator(lambda user, cred: cred == "secret")
        session = server.create_session(user="ok", credential="secret")
        assert session is not None
        with pytest.raises(EngineError, match="login failed"):
            server.create_session(user="bad", credential="wrong")
        assert server.login_failures == 1

    def test_login_failed_event_reaches_rules(self, world):
        server, sqlcm = world
        server.set_authenticator(lambda user, cred: cred == "s")
        seen = []
        sqlcm.add_rule(Rule(
            name="watch", event="Session.Login_Failed",
            actions=[CallbackAction(
                lambda s, c: seen.append(c["session"].get("User")))],
        ))
        for __ in range(2):
            with pytest.raises(EngineError):
                server.create_session(user="mallory", credential="x")
        assert seen == ["mallory", "mallory"]

    def test_login_auditor_counts_and_alerts(self, world):
        server, sqlcm = world
        server.set_authenticator(lambda user, cred: cred == "s")
        auditor = LoginAuditor(sqlcm, alert_threshold=3)
        for __ in range(4):
            with pytest.raises(EngineError):
                server.create_session(user="mallory", credential="x")
        with pytest.raises(EngineError):
            server.create_session(user="casual", credential="x")
        failures = {row["Login"]: row["Failures"]
                    for row in auditor.failures()}
        assert failures == {"mallory": 4, "casual": 1}
        # alerts fired on the 3rd and 4th mallory attempts only
        assert len(auditor.alerts()) == 2
        assert "mallory" in auditor.alerts()[0].body

    def test_failures_age_out(self, world):
        server, sqlcm = world
        server.set_authenticator(lambda user, cred: False)
        auditor = LoginAuditor(sqlcm, alert_threshold=99, window=10.0)
        with pytest.raises(EngineError):
            server.create_session(user="u", credential="x")
        assert auditor.failures()[0]["Failures"] == 1
        server.clock.advance(100.0)
        assert auditor.failures()[0]["Failures"] == 0

    def test_session_login_event_object(self, world):
        server, sqlcm = world
        seen = []
        sqlcm.add_rule(Rule(
            name="logins", event="Session.Login",
            actions=[CallbackAction(
                lambda s, c: seen.append(c["session"].get("Application")))],
        ))
        server.create_session(user="x", application="erp")
        assert seen == ["erp"]


class TestStatsCorrector:
    def test_drift_detected_and_refresh_requested(self, world):
        server, sqlcm = world
        corrector = StatsCorrector(sqlcm, drift_factor=3.0, min_instances=5)
        session = server.create_session()
        # "price > 0" matches all 6 rows but the optimizer guesses 30% of 6
        # ≈ 1.8 rows → actual (6) > 3x estimated... make drift bigger by a
        # predicate whose estimate is tiny but matches everything
        for __ in range(6):
            session.execute(
                "SELECT id FROM items WHERE price > 0.0 AND qty > 0 "
                "AND name != 'zzz' AND segment != 'none'")
        assert len(corrector.refresh_requests) >= 1
        assert "SELECT id FROM items" in corrector.refresh_requests[0]

    def test_no_drift_no_request(self, world):
        server, sqlcm = world
        corrector = StatsCorrector(sqlcm, drift_factor=10.0,
                                   min_instances=3)
        session = server.create_session()
        for __ in range(5):
            session.execute("SELECT name FROM items WHERE id = 1")
        assert corrector.refresh_requests == []

    def test_rearms_after_request(self, world):
        server, sqlcm = world
        corrector = StatsCorrector(sqlcm, drift_factor=3.0, min_instances=4)
        session = server.create_session()
        sql = ("SELECT id FROM items WHERE price > 0.0 AND qty > 0 "
               "AND name != 'zzz' AND segment != 'none'")
        for __ in range(4):
            session.execute(sql)
        first_requests = len(corrector.refresh_requests)
        assert first_requests == 1
        # the template's row was dropped: next instance is not an instant
        # re-fire; evidence must accumulate again
        session.execute(sql)
        assert len(corrector.refresh_requests) == first_requests

    def test_refresh_callback_invoked(self, world):
        server, sqlcm = world
        refreshed = []
        StatsCorrector(sqlcm, drift_factor=3.0, min_instances=3,
                       refresh_callback=refreshed.append)
        session = server.create_session()
        for __ in range(3):
            session.execute(
                "SELECT id FROM items WHERE price > 0.0 AND qty > 0 "
                "AND name != 'zzz' AND segment != 'none'")
        assert refreshed


class TestAdaptiveMPL:
    def _contended_server(self):
        server = DatabaseServer(ServerConfig())
        server.execute_ddl(
            "CREATE TABLE hot (id INT NOT NULL PRIMARY KEY, v FLOAT)")
        loader = server.create_session()
        loader.execute("INSERT INTO hot VALUES (1, 1.0), (2, 2.0)")
        return server

    def test_mpl_relaxes_when_idle(self):
        server = self._contended_server()
        sqlcm = SQLCM(server)
        governor = AdaptiveMPLGovernor(
            sqlcm, initial_mpl=4, max_mpl=6, control_interval=1.0,
            low_blocking=0.1, high_blocking=1.0)
        server.run(until=3.5)  # no blocking at all → relax each tick
        assert governor.mpl == 6
        assert [m for __, m in governor.adjustments] == [5, 6]

    def test_mpl_tightens_under_blocking(self):
        server = self._contended_server()
        sqlcm = SQLCM(server)
        governor = AdaptiveMPLGovernor(
            sqlcm, initial_mpl=4, min_mpl=1, control_interval=1.0,
            low_blocking=0.01, high_blocking=0.5, window=30.0)
        # writer holds the lock; readers pile up blocking delay
        writer = server.create_session(user="w")
        writer.submit_script([
            "BEGIN",
            "UPDATE hot SET v = 9 WHERE id = 1",
            Statement("COMMIT", think_time=2.5),
        ])
        for i in range(3):
            reader = server.create_session(user=f"r{i}")
            reader.submit_script([
                Statement("SELECT v FROM hot WHERE id = 1",
                          think_time=0.1 * (i + 1)),
            ])
        server.run(until=6.0)
        assert governor.mpl < 4
        assert governor.adjustments

    def test_enforcement_uses_current_mpl(self):
        server = self._contended_server()
        sqlcm = SQLCM(server)
        governor = AdaptiveMPLGovernor(
            sqlcm, initial_mpl=0, control_interval=100.0,
            exempt_users=("dbo",))
        victim = server.create_session(user="app")
        result = victim.execute("SELECT v FROM hot WHERE id = 1")
        assert result.error is not None
        assert governor.mpl_rejected == 1
