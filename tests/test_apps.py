"""Tests for the Section 3 example applications."""

import pytest

from repro import DatabaseServer, ServerConfig, SQLCM, Statement
from repro.apps import (BlockingAnalyzer, OutlierDetector, ResourceGovernor,
                        StreamOutlierDetector, TopKTracker, UsageAuditor)
from repro.workloads import register_order_procedures
from repro.workloads.tpch import TPCHConfig, setup_tpch


@pytest.fixture
def world():
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    setup_tpch(server, TPCHConfig().scaled(0.02))
    register_order_procedures(server)
    sqlcm = SQLCM(server)
    return server, sqlcm


class TestOutlierDetector:
    def test_detects_slow_instance_of_template(self, world):
        server, sqlcm = world
        detector = OutlierDetector(sqlcm, factor=5.0, min_instances=3)
        session = server.create_session()
        # build a baseline with a cheap parameterized template
        for i in range(1, 9):
            session.execute("EXEC get_order @okey = @k", {"k": i})
        assert detector.outliers() == []
        # inject a synthetic slow instance of the *same template*:
        # stretch its duration by blocking... simplest: a procedure whose
        # plan is identical but rows differ can't be 5x slower here, so we
        # simulate the outlier by a held lock.
        writer = server.create_session()
        writer.submit_script([
            "BEGIN",
            "UPDATE orders SET o_totalprice = 0 WHERE o_orderkey = 3",
            Statement("COMMIT", think_time=2.0),
        ])
        victim = server.create_session()
        victim.submit_script([
            Statement("EXEC get_order @okey = 3", {}, 0.05),
        ])
        server.run()
        outliers = detector.outliers()
        assert len(outliers) == 1
        assert "get_order" not in outliers[0]["Query_Text"]  # raw SQL text
        assert outliers[0]["Duration"] > 1.0

    def test_template_averages_populated(self, world):
        server, sqlcm = world
        detector = OutlierDetector(sqlcm)
        session = server.create_session()
        for i in range(1, 4):
            session.execute("EXEC get_order @okey = @k", {"k": i})
        averages = detector.template_averages()
        assert len(averages) == 1  # one template
        assert averages[0]["Instances"] == 3

    def test_remove_tears_down(self, world):
        server, sqlcm = world
        detector = OutlierDetector(sqlcm)
        detector.remove()
        assert not sqlcm.rules
        assert not sqlcm.lats()


class TestBlockingAnalyzer:
    def test_accumulates_delay_by_blocker_template(self, world):
        server, sqlcm = world
        analyzer = BlockingAnalyzer(sqlcm)
        writer = server.create_session()
        reader1 = server.create_session()
        reader2 = server.create_session()
        writer.submit_script([
            "BEGIN",
            "UPDATE orders SET o_totalprice = 1 WHERE o_orderkey = 1",
            Statement("COMMIT", think_time=1.0),
        ])
        reader1.submit_script([
            Statement("SELECT o_totalprice FROM orders WHERE o_orderkey = 1",
                      think_time=0.2),
        ])
        reader2.submit_script([
            Statement("SELECT o_orderstatus FROM orders WHERE o_orderkey = 1",
                      think_time=0.4),
        ])
        server.run()
        worst = analyzer.worst_blockers()
        assert len(worst) == 1  # one blocker template (the UPDATE)
        assert worst[0]["Conflicts"] == 2
        assert worst[0]["Total_Block_Delay"] == pytest.approx(
            0.8 + 0.6, abs=0.1)
        assert worst[0]["Sample_Text"].startswith("UPDATE orders")


class TestTopKTracker:
    def test_tracks_k_most_expensive(self, world):
        server, sqlcm = world
        tracker = TopKTracker(sqlcm, k=3)
        session = server.create_session()
        for i in range(1, 6):
            session.execute("EXEC get_order @okey = @k", {"k": i})
        session.execute("EXEC slow_scan @minprice = 0.0")
        top = tracker.top_k()
        assert len(top) == 3
        assert top[0][1].startswith("SELECT COUNT(*)")  # the slow scan
        assert top[0][2] >= top[1][2] >= top[2][2]

    def test_persist_to_report_table(self, world):
        server, sqlcm = world
        tracker = TopKTracker(sqlcm, k=2)
        session = server.create_session()
        for i in range(1, 4):
            session.execute("EXEC get_order @okey = @k", {"k": i})
        written = tracker.persist("topk_out")
        assert written == 2
        assert server.table("topk_out").row_count == 2


class TestUsageAuditor:
    def test_summaries_flushed_periodically(self, world):
        server, sqlcm = world
        auditor = UsageAuditor(sqlcm, period=10.0)
        session = server.create_session(user="alice", application="erp")
        for i in range(1, 5):
            session.execute("EXEC get_order @okey = @k", {"k": i})
        assert auditor.current_summary()[0]["Frequency"] == 4
        server.run(until=11.0)  # past one flush period
        reports = auditor.reports()
        assert len(reports) == 1
        assert reports[0]["Frequency"] == 4
        assert reports[0]["App"] == "erp"
        # LAT reset after flush
        assert auditor.current_summary() == []

    def test_user_activity_report(self, world):
        server, sqlcm = world
        auditor = UsageAuditor(sqlcm, period=10.0)
        alice = server.create_session(user="alice")
        bob = server.create_session(user="bob")
        for i in range(1, 4):
            alice.execute("EXEC get_order @okey = @k", {"k": i})
        bob.execute("EXEC get_order @okey = 5")
        server.run(until=11.0)
        users = {r["Login"]: r["Queries"] for r in auditor.user_reports()}
        assert users == {"alice": 3, "bob": 1}


class TestResourceGovernor:
    def test_runaway_query_cancelled(self, world):
        server, sqlcm = world
        governor = ResourceGovernor(sqlcm, runaway_budget=0.5,
                                    watchdog_interval=0.25)
        writer = server.create_session(user="writer")
        victim = server.create_session(user="victim")
        writer.submit_script([
            "BEGIN",
            "UPDATE orders SET o_totalprice = 1 WHERE o_orderkey = 1",
            Statement("COMMIT", think_time=30.0),
        ])
        victim.submit_script([
            Statement("SELECT o_totalprice FROM orders WHERE o_orderkey = 1",
                      think_time=0.1),
        ])
        server.run(until=40.0)
        # the victim spent > 0.5s blocked and was killed by the watchdog
        assert victim.results[-1].error is not None
        assert governor.stats.runaway_cancelled >= 1

    def test_mpl_limit_rejects_excess_queries(self, world):
        server, sqlcm = world
        governor = ResourceGovernor(sqlcm, runaway_budget=None,
                                    max_concurrent=1,
                                    exempt_users=("dbo",))
        # hold a lock so user queries stack up concurrently
        holder = server.create_session(user="dbo")
        holder.submit_script([
            "BEGIN",
            "UPDATE orders SET o_totalprice = 1 WHERE o_orderkey = 1",
            Statement("COMMIT", think_time=2.0),
        ])
        q1 = server.create_session(user="carol")
        q2 = server.create_session(user="carol")
        q1.submit_script([
            Statement("SELECT o_totalprice FROM orders WHERE o_orderkey = 1",
                      think_time=0.1),
        ])
        q2.submit_script([
            Statement("SELECT o_orderstatus FROM orders WHERE o_orderkey = 1",
                      think_time=0.2),
        ])
        server.run()
        assert governor.stats.mpl_rejected == 1
        assert governor.stats.rejected_users == {"carol": 1}
        errors = [r.error for r in q1.results + q2.results if r.error]
        assert len(errors) == 1

    def test_exempt_user_not_limited(self, world):
        server, sqlcm = world
        ResourceGovernor(sqlcm, runaway_budget=None, max_concurrent=0,
                         exempt_users=("dbo",))
        session = server.create_session(user="dbo")
        result = session.execute(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
        assert result.ok


class TestStreamOutlierDetector:
    """The rule-based and stream-based outlier detectors, side by side,
    must flag the same injected slowdown — and nothing else."""

    SIG_A = b"\x0a" * 8  # the template that will misbehave
    SIG_B = b"\x0b" * 8  # a well-behaved control template

    @staticmethod
    def _commit(server, ids, t, duration, sig, user):
        from repro.engine.query import QueryContext
        server.clock.advance_to(t)
        qctx = QueryContext(
            query_id=next(ids), session_id=1, text=f"SELECT /*{user}*/ 1",
            user=user, application="app", start_time=t - duration,
            end_time=t, logical_signature=sig, rows_affected=0)
        server.events.publish("query.commit", {"query": qctx})

    def test_both_detectors_flag_the_same_injected_outliers(self):
        import itertools
        server = DatabaseServer(ServerConfig(track_completed_queries=False))
        sqlcm = SQLCM(server)
        rule_based = OutlierDetector(sqlcm, factor=5.0, min_instances=3)
        stream_based = StreamOutlierDetector(
            sqlcm, k=3.0, window=4.0, hop=1.0, history=8)
        ids = itertools.count(1)

        # a steady baseline for both templates: ~10ms every second each
        t = 0.5
        while t < 30.0:
            self._commit(server, ids, t, 0.010, self.SIG_A, "alice")
            self._commit(server, ids, t + 0.4, 0.010, self.SIG_B, "bob")
            t += 1.0
        assert rule_based.outliers() == []
        assert stream_based.outliers() == []

        # inject a sustained slowdown of template A only
        while t < 36.0:
            self._commit(server, ids, t, 0.250, self.SIG_A, "alice")
            self._commit(server, ids, t + 0.4, 0.010, self.SIG_B, "bob")
            t += 1.0

        # the rule flagged individual slow instances — all of template A
        rule_rows = rule_based.outliers()
        assert rule_rows
        assert {row["User"] for row in rule_rows} == {"alice"}
        assert all(row["Duration"] == pytest.approx(0.250)
                   for row in rule_rows)

        # the stream flagged deviating windows — the same single template
        assert stream_based.outlier_signatures() == {self.SIG_A}
        flagged = stream_based.outliers()
        assert all(alert["kind"] == "deviation" for alert in flagged)
        assert all(alert["baseline"] == pytest.approx(0.010, abs=1e-3)
                   for alert in flagged)

    def test_remove_tears_down_stream(self):
        server = DatabaseServer(ServerConfig(track_completed_queries=False))
        sqlcm = SQLCM(server)
        detector = StreamOutlierDetector(sqlcm)
        assert sqlcm.has_streams
        detector.remove()
        assert not sqlcm.has_streams
