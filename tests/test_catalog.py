"""Tests for catalog schema objects."""

import pytest

from repro.engine.catalog import (Catalog, ColumnDef, IndexDef, ProcedureDef,
                                  TableSchema)
from repro.engine.types import SQLType
from repro.errors import BindError, CatalogError


def _schema(name="t"):
    return TableSchema(name, [
        ColumnDef("id", SQLType.INTEGER, nullable=False),
        ColumnDef("name", SQLType.STRING),
        ColumnDef("price", SQLType.FLOAT),
    ], primary_key=["id"])


class TestTableSchema:
    def test_column_lookup_case_insensitive(self):
        schema = _schema()
        assert schema.column_index("ID") == 0
        assert schema.column_index("Name") == 1
        assert schema.column("PRICE").sql_type is SQLType.FLOAT

    def test_unknown_column_raises_bind_error(self):
        with pytest.raises(BindError):
            _schema().column_index("missing")

    def test_primary_key_creates_clustered_index(self):
        schema = _schema()
        assert "pk_t" in schema.indexes
        index = schema.indexes["pk_t"]
        assert index.clustered and index.unique
        assert index.columns == ("id",)

    def test_no_primary_key_no_index(self):
        schema = TableSchema("x", [ColumnDef("a", SQLType.INTEGER)])
        assert schema.indexes == {}

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("x", [
                ColumnDef("a", SQLType.INTEGER),
                ColumnDef("A", SQLType.FLOAT),
            ])

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("x", [])

    def test_pk_over_unknown_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("x", [ColumnDef("a", SQLType.INTEGER)],
                        primary_key=["b"])

    def test_invalid_column_name_rejected(self):
        with pytest.raises(CatalogError):
            ColumnDef("not a name", SQLType.INTEGER)

    def test_add_index_validates_columns(self):
        schema = _schema()
        with pytest.raises(BindError):
            schema.add_index(IndexDef("ix", "t", ("missing",)))

    def test_duplicate_index_name_rejected(self):
        schema = _schema()
        schema.add_index(IndexDef("ix", "t", ("name",)))
        with pytest.raises(CatalogError):
            schema.add_index(IndexDef("ix", "t", ("price",)))

    def test_index_on_matches_leading_columns(self):
        schema = _schema()
        schema.add_index(IndexDef("ix2", "t", ("name", "price")))
        assert schema.index_on(("name",)).name == "ix2"
        assert schema.index_on(("price",)) is None

    def test_index_needs_columns(self):
        with pytest.raises(CatalogError):
            IndexDef("bad", "t", ())


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table(_schema())
        assert catalog.has_table("T")
        assert catalog.table("t").name == "t"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(_schema())

    def test_unknown_table_raises(self):
        with pytest.raises(BindError):
            Catalog().table("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(_schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_procedures(self):
        catalog = Catalog()
        catalog.create_procedure(ProcedureDef("p", ("x",), ["SELECT 1"]))
        assert catalog.has_procedure("P")
        assert catalog.procedure("p").params == ("x",)
        with pytest.raises(CatalogError):
            catalog.create_procedure(ProcedureDef("p", (), []))
        with pytest.raises(BindError):
            catalog.procedure("missing")
