"""The network service tier: protocol, server, client, admission, pushes.

These tests start a real :class:`MonitorService` on an ephemeral TCP port
(asyncio loop in a background thread via :class:`ServiceRunner`) and talk
to it with the synchronous :class:`ServiceClient` — the same wire path a
production client would use.  Virtual time advances via the service pump,
so wall-clock sleeps only bound how long we *wait*, never what happens.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import (SQLCM, DatabaseServer, GovernorPolicy, IncidentPolicy,
                   MonitorService, ServerConfig, ServiceClient,
                   ServiceConfig, ServiceRunner)
from repro.apps.auto_remediation import AutoRemediator
from repro.core.governor import (BEST_EFFORT, CRITICAL, GOV_ESSENTIAL,
                                 GOV_NORMAL, GOV_SHEDDING)
from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import (E_AUTH, E_BAD_REQUEST, E_DENIED,
                                    E_OVERLOADED, E_PARSE, E_PROTOCOL,
                                    E_RECOVERING, E_SQL, E_UNSUPPORTED,
                                    PROTOCOL_VERSION,
                                    Push, Response, decode_frame,
                                    encode_frame, jsonable, parse_request,
                                    parse_server_frame)

#: wall-clock ceiling for client waits; generous because CI is slow
WAIT = 15.0


def build_service(**kwargs) -> MonitorService:
    db = DatabaseServer(ServerConfig(track_completed_queries=True))
    db.enable_observability()
    sqlcm = SQLCM(db)
    return MonitorService(db, sqlcm, ServiceConfig(**kwargs))


@pytest.fixture
def service():
    svc = build_service()
    with ServiceRunner(svc):
        yield svc


def connect(svc: MonitorService, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout", WAIT)
    return ServiceClient("127.0.0.1", svc.port, **kwargs)


def wait_until(predicate, timeout: float = WAIT, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# protocol unit tests (no server)
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip(self):
        frame = {"id": 3, "op": "sql", "sql": "SELECT 1"}
        assert decode_frame(encode_frame(frame).strip()) == frame

    def test_jsonable_coerces_engine_values(self):
        coerced = jsonable({
            "sig": b"\x01\xff",
            "key": (1, "a"),
            "nan": float("nan"),
            5: "int-key",
        })
        assert coerced["sig"] == "01ff"
        assert coerced["key"] == [1, "a"]
        assert coerced["nan"] == "nan"
        assert coerced["5"] == "int-key"
        json.dumps(coerced)  # must be serializable as-is

    def test_parse_request_validation(self):
        request = parse_request({"id": 0, "op": "sql", "sql": "SELECT 1"})
        assert request.payload == {"sql": "SELECT 1"}
        with pytest.raises(ProtocolError):
            parse_request({"op": "sql"})                 # no id
        with pytest.raises(ProtocolError):
            parse_request({"id": -1, "op": "sql"})       # negative id
        with pytest.raises(ProtocolError):
            parse_request({"id": True, "op": "sql"})     # bool is not an id
        with pytest.raises(ProtocolError):
            parse_request({"id": 1})                     # no op

    def test_decode_rejects_bad_frames(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2]")

    def test_parse_server_frame_classifies(self):
        push = parse_server_frame({"push": "incident", "time": 1.0,
                                   "data": {"phase": "opened"}})
        assert isinstance(push, Push) and push.topic == "incident"
        ok = parse_server_frame({"id": 4, "ok": True, "data": {"x": 1}})
        assert isinstance(ok, Response) and ok.ok and ok.data == {"x": 1}
        err = parse_server_frame({"id": 4, "ok": False, "error": {
            "code": E_OVERLOADED, "message": "busy", "retry_after": 0.5}})
        assert not err.ok and err.code == E_OVERLOADED
        assert err.retry_after == 0.5

    def test_error_response_frame_shape(self):
        frame = Response(7, ok=False, code=E_SQL, message="boom",
                         retry_after=None).to_frame()
        assert frame == {"id": 7, "ok": False,
                         "error": {"code": E_SQL, "message": "boom"}}


# ---------------------------------------------------------------------------
# handshake + framing over a real socket
# ---------------------------------------------------------------------------

class TestHandshake:
    def test_hello_opens_session(self, service):
        with connect(service, user="alice") as client:
            assert client.hello["server"] == "sqlcm-service"
            assert client.hello["version"] == PROTOCOL_VERSION
            assert service.db.session(client.session_id) is not None

    def test_ops_before_hello_rejected(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port),
                                        timeout=WAIT)
        reader = sock.makefile("rb")
        sock.sendall(b'{"id": 0, "op": "ping"}\n')
        frame = json.loads(reader.readline())
        assert frame["ok"] is False
        assert frame["error"]["code"] == E_PROTOCOL
        sock.close()

    def test_version_mismatch_rejected(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port),
                                        timeout=WAIT)
        reader = sock.makefile("rb")
        sock.sendall(b'{"id": 0, "op": "hello", "version": 999}\n')
        frame = json.loads(reader.readline())
        assert frame["error"]["code"] == E_PROTOCOL
        sock.close()

    def test_auth_failure(self, service):
        service.db.set_authenticator(
            lambda user, credential: credential == "sesame")
        with pytest.raises(ServiceError) as excinfo:
            connect(service, user="mallory", credential="wrong")
        assert excinfo.value.code == E_AUTH
        assert service.db.login_failures == 1
        client = connect(service, user="alice", credential="sesame")
        client.close()

    def test_unknown_op_and_parse_error(self, service):
        with connect(service) as client:
            response = client.request("no_such_op")
            assert response.code == E_UNSUPPORTED
            # raw garbage after a valid handshake
            client._sock.sendall(b"{broken\n")
            frame = client._read_frame()
            assert isinstance(frame, Response)
            assert frame.code == E_PARSE


# ---------------------------------------------------------------------------
# SQL over the wire
# ---------------------------------------------------------------------------

class TestSQL:
    def test_ddl_dml_select_roundtrip(self, service):
        with connect(service) as client:
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            out = client.sql("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
            assert out["rows_affected"] == 2
            out = client.sql("SELECT id, v FROM t WHERE v > @floor",
                             params={"floor": 15})
            assert out["rows"] == [[2, 20]]

    def test_sql_error_is_honest(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.sql("SELECT FROM nonsense !!!")
            assert excinfo.value.code == E_SQL
            # the session (and connection) survive the failed statement
            assert client.ping()["time"] >= 0.0

    def test_no_pipelining(self, service):
        with connect(service, user="holder") as holder, \
                connect(service) as client:
            holder.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                       "v INTEGER)")
            holder.sql("INSERT INTO t (id, v) VALUES (1, 0)")
            holder.sql("BEGIN")
            holder.sql("UPDATE t SET v = 1 WHERE id = 1")
            # the first statement parks on the holder's lock, so it is
            # still in flight when the second frame arrives
            client._send({"id": 100, "op": "sql",
                          "sql": "UPDATE t SET v = 2 WHERE id = 1"})
            client._send({"id": 101, "op": "sql",
                          "sql": "UPDATE t SET v = 3 WHERE id = 1"})
            rejected = client._read_frame()
            assert rejected.request_id == 101
            assert rejected.code == E_PROTOCOL  # pipelining rejected
            holder.sql("COMMIT")
            first = client._read_frame()
            assert first.request_id == 100 and first.ok


# ---------------------------------------------------------------------------
# monitoring commands + endpoints
# ---------------------------------------------------------------------------

class TestEndpoints:
    def test_status_shape(self, service):
        with connect(service) as client:
            status = client.status()
            assert status["service"]["protocol_version"] == PROTOCOL_VERSION
            assert status["service"]["connections"] == 1
            assert status["activity"]["sessions"] == 1
            assert status["governor"] == {"enabled": False}
            assert status["incidents"]["enabled"] is False

    def test_metrics_endpoint(self, service):
        with connect(service) as client:
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            metrics = client.metrics()
            assert metrics["enabled"] is True
            assert "counters" in metrics["metrics"]

    def test_install_lat_rule_stream(self, service):
        with connect(service) as client:
            client.install_lat(
                "Duration_LAT",
                grouping=["Query.User AS U"],
                aggregations=["COUNT(Query.ID) AS N"])
            client.install_rule(
                "track", event="Query.Commit",
                actions=[{"type": "insert", "lat": "Duration_LAT"}])
            client.install_stream(
                "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
                "AGG COUNT(*) AS N")
            status = client.status()
            assert status["monitoring"]["rules"] == 1
            assert status["monitoring"]["lats"] == 1
            assert status["monitoring"]["streams"] == 1
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            client.sql("INSERT INTO t (id) VALUES (1)")
            assert len(service.sqlcm.lat("Duration_LAT")) == 1
            client.remove_rule("track")
            assert client.status()["monitoring"]["rules"] == 0

    def test_bad_installs_are_bad_requests(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.install_lat("NoGroups")  # a LAT needs grouping
            assert excinfo.value.code == E_BAD_REQUEST
            with pytest.raises(ServiceError) as excinfo:
                client.install_rule("r", event="Query.Commit",
                                    actions=[{"type": "warp_core"}])
            assert excinfo.value.code == E_BAD_REQUEST

    def test_incidents_and_investigate_endpoints(self, service):
        service.sqlcm.incident_manager(IncidentPolicy(sweep_interval=0))
        with connect(service) as client:
            client.install_rule(
                "hot", event="Query.Commit",
                actions=[{"type": "open_incident",
                          "incident_class": "test",
                          "signature": "commit-storm"}])
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            client.sql("INSERT INTO t (id) VALUES (1)")
            client.sql("INSERT INTO t (id) VALUES (2)")
            listing = client.incidents()
            assert listing["enabled"] is True
            [incident] = listing["incidents"]
            assert incident["class"] == "test"
            assert incident["occurrences"] == 2
            one = client.incidents(incident_id=incident["id"])
            assert one["incidents"][0]["timeline"]
            story = client.investigate(incident["id"])
            assert story["incident"]["id"] == incident["id"]
            with pytest.raises(ServiceError) as excinfo:
                client.investigate(999)
            assert excinfo.value.code == E_BAD_REQUEST


# ---------------------------------------------------------------------------
# pushed subscriptions
# ---------------------------------------------------------------------------

class TestPushes:
    def test_stream_alert_push_matches_engine_ring(self, service):
        with connect(service, user="w") as writer, \
                connect(service, user="l") as listener:
            listener.subscribe("stream_alert")
            writer.install_stream(
                "STREAM commits FROM Query.Commit GROUP BY Query.User AS U "
                "WINDOW TUMBLING(0.2) AGG COUNT(*) AS N")
            writer.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            for i in range(3):
                writer.sql(f"INSERT INTO t (id) VALUES ({i})")
            push = listener.wait_push(timeout=WAIT, topic="stream_alert")
            assert push.data["stream"] == "commits"
            assert push.data["kind"] == "window"
            ring = list(service.sqlcm.stream_engine()
                        .query("commits").alerts)
            assert any(a["value"] == push.data["value"]
                       and a["window_start"] == push.data["window_start"]
                       for a in ring)

    def test_unsubscribed_connection_gets_no_pushes(self, service):
        with connect(service) as writer, connect(service) as other:
            writer.install_stream(
                "STREAM s FROM Query.Commit WINDOW TUMBLING(0.2) "
                "AGG COUNT(*) AS N")
            writer.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            writer.sql("INSERT INTO t (id) VALUES (1)")
            wait_until(lambda: service.sqlcm.stream_engine()
                       .alerts_published > 0)
            other.ping()
            writer.ping()
            assert other.drain_pushes() == []
            assert writer.drain_pushes() == []

    def test_incident_push_lifecycle(self, service):
        service.sqlcm.incident_manager(IncidentPolicy(
            sweep_interval=0.1, clear_after=0.3, escalation_timeout=1e9))
        with connect(service) as client:
            client.subscribe("incident")
            client.install_rule(
                "hot", event="Query.Commit",
                actions=[{"type": "open_incident",
                          "incident_class": "test",
                          "signature": "s"}])
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            client.sql("INSERT INTO t (id) VALUES (1)")
            opened = client.wait_push(timeout=WAIT, topic="incident")
            assert opened.data["phase"] == "opened"
            # no further detections: the sweeper auto-resolves it
            resolved = client.wait_push(timeout=WAIT, topic="incident")
            assert resolved.data["phase"] == "resolved"
            assert resolved.data["incident_id"] == opened.data["incident_id"]

    def test_unknown_topic_rejected(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.subscribe("weather")
            assert excinfo.value.code == E_BAD_REQUEST


# ---------------------------------------------------------------------------
# governed admission: explicit backpressure
# ---------------------------------------------------------------------------

def frozen_governor(service, state):
    """Install a governor pinned to one ladder state (no decisions)."""
    governor = service.sqlcm.enable_governor(GovernorPolicy(
        decision_interval=1e9, window=1e9))
    governor.state = state
    return governor


class TestAdmission:
    def test_best_effort_shed_with_retry_after(self, service):
        service.config.queue_limit = 0  # force the immediate-shed path
        frozen_governor(service, GOV_SHEDDING)
        with connect(service, criticality=BEST_EFFORT) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.sql("SELECT 1 FROM nothing")
            assert excinfo.value.code == E_OVERLOADED
            assert excinfo.value.retry_after > 0.0
        assert service.requests_shed == 1

    def test_normal_admitted_at_shedding(self, service):
        frozen_governor(service, GOV_SHEDDING)
        with connect(service) as client:  # defaults to NORMAL criticality
            client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")

    def test_essential_admits_only_critical(self, service):
        service.config.queue_limit = 0
        frozen_governor(service, GOV_ESSENTIAL)
        with connect(service, criticality=CRITICAL) as vip, \
                connect(service) as pleb:
            vip.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            with pytest.raises(ServiceError) as excinfo:
                pleb.sql("SELECT id FROM t")
            assert excinfo.value.code == E_OVERLOADED

    def test_queued_request_admitted_after_recovery(self, service):
        service.config.queue_timeout = 30.0
        governor = frozen_governor(service, GOV_SHEDDING)
        with connect(service, criticality=BEST_EFFORT) as client:
            client.call("ping")
            result = {}

            def blocked_sql():
                try:
                    result["out"] = client.sql("SELECT 1 FROM nothing")
                except ServiceError as err:
                    result["err"] = err

            thread = threading.Thread(target=blocked_sql)
            thread.start()
            assert wait_until(lambda: len(service._queue) == 1)
            governor.state = GOV_NORMAL  # ladder recovers
            thread.join(WAIT)
            assert not thread.is_alive()
            # admitted and executed: a real (SQL-level) error response,
            # not an overloaded rejection
            assert result["err"].code == E_SQL
        assert service.requests_queued_total == 1
        assert service.requests_shed == 0

    def test_queued_request_expires_with_backpressure(self, service):
        service.config.queue_timeout = 0.2  # virtual seconds
        frozen_governor(service, GOV_SHEDDING)
        with connect(service, criticality=BEST_EFFORT) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.sql("SELECT 1 FROM nothing")
            assert excinfo.value.code == E_OVERLOADED
            assert excinfo.value.retry_after > 0.0
        assert service.requests_queued_total == 1

    def test_denied_requests_counted_by_governor(self, service):
        service.config.queue_limit = 0
        governor = frozen_governor(service, GOV_SHEDDING)
        with connect(service, criticality=BEST_EFFORT) as client:
            for __ in range(3):
                with pytest.raises(ServiceError):
                    client.sql("SELECT 1 FROM nothing")
        assert governor.describe()["requests_denied"] == 3


# ---------------------------------------------------------------------------
# session teardown over the wire (satellite: close_session regression)
# ---------------------------------------------------------------------------

class TestDisconnect:
    def test_mid_transaction_disconnect_releases_locks(self, service):
        with connect(service, user="bob") as bob:
            bob.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            bob.sql("INSERT INTO t (id, v) VALUES (1, 10)")
            alice = connect(service, user="alice")
            alice.sql("BEGIN")
            alice.sql("UPDATE t SET v = 99 WHERE id = 1")
            alice.disconnect_abruptly()
            assert wait_until(
                lambda: service.db.session(alice.session_id) is None)
            # bob is NOT blocked by the vanished session's transaction
            out = bob.sql("UPDATE t SET v = 5 WHERE id = 1")
            assert out["rows_affected"] == 1
            # and the abandoned update was rolled back, not committed
            assert bob.sql("SELECT v FROM t")["rows"] == [[5]]

    def test_disconnect_while_blocked_cleans_up(self, service):
        with connect(service, user="holder") as holder, \
                connect(service, user="bob") as bob:
            holder.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            holder.sql("INSERT INTO t (id, v) VALUES (1, 0)")
            holder.sql("BEGIN")
            holder.sql("UPDATE t SET v = 1 WHERE id = 1")
            dave = connect(service, user="dave")
            result = {}

            def blocked_update():
                try:
                    result["out"] = dave.sql(
                        "UPDATE t SET v = 2 WHERE id = 1")
                except ServiceError as err:
                    result["err"] = err

            thread = threading.Thread(target=blocked_update)
            thread.start()
            assert wait_until(lambda: any(
                q.state.value == "blocked"
                for q in service.db.active_queries()))
            dave.disconnect_abruptly()
            thread.join(WAIT)
            assert wait_until(
                lambda: service.db.session(dave.session_id) is None)
            holder.sql("COMMIT")
            assert bob.sql("SELECT v FROM t")["rows"] == [[1]]


# ---------------------------------------------------------------------------
# admin cancel over the wire (satellite)
# ---------------------------------------------------------------------------

class TestAdminCancel:
    def test_admin_cancels_blocked_query(self, service):
        with connect(service, user="holder") as holder, \
                connect(service, user="admin") as admin:
            holder.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            holder.sql("INSERT INTO t (id, v) VALUES (1, 0)")
            holder.sql("BEGIN")
            holder.sql("UPDATE t SET v = 1 WHERE id = 1")
            victim = connect(service, user="victim")
            result = {}

            def blocked_update():
                try:
                    result["out"] = victim.sql(
                        "UPDATE t SET v = 2 WHERE id = 1")
                except ServiceError as err:
                    result["err"] = err

            thread = threading.Thread(target=blocked_update)
            thread.start()
            assert wait_until(lambda: any(
                q.state.value == "blocked"
                for q in service.db.active_queries()))
            [blocked] = [q for q in service.db.active_queries()
                         if q.state.value == "blocked"]
            out = admin.cancel(blocked.query_id)
            assert out == {"query_id": blocked.query_id, "cancelled": True}
            thread.join(WAIT)
            assert result["err"].code == E_SQL
            assert "cancel" in str(result["err"]).lower()
            # honest outcome accounting (PR 5 semantics)
            counters = service.db.obs.metrics.snapshot()["counters"]
            assert counters.get("sqlcm.cancel.requested") == 1
            assert "sqlcm.cancel.failed" not in counters
            holder.sql("COMMIT")
            victim.close()

    def test_non_admin_denied(self, service):
        with connect(service, user="bob") as bob:
            with pytest.raises(ServiceError) as excinfo:
                bob.cancel(1)
            assert excinfo.value.code == E_DENIED

    def test_cancel_unknown_query_is_bad_request(self, service):
        with connect(service, user="admin") as admin:
            with pytest.raises(ServiceError) as excinfo:
                admin.cancel(424242)
            assert excinfo.value.code == E_BAD_REQUEST


# ---------------------------------------------------------------------------
# concurrent multi-client behavior (satellite)
# ---------------------------------------------------------------------------

class TestConcurrentClients:
    N = 6

    def test_interleaved_clients_stay_isolated(self, service):
        with connect(service, user="setup") as setup:
            setup.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                      "owner VARCHAR(16), v INTEGER)")
            setup.install_stream(
                "STREAM commits FROM Query.Commit "
                "GROUP BY Query.User AS U "
                "WINDOW TUMBLING(0.5) AGG COUNT(*) AS N")
        per_client = 5
        errors: list = []

        def worker(idx: int) -> None:
            try:
                client = connect(service, user=f"user{idx}")
                client.subscribe("stream_alert")
                client.install_rule(
                    f"rule{idx}", event="Query.Commit",
                    condition=f"Query.User = 'user{idx}'",
                    actions=[{"type": "send_mail",
                              "text": f"commit by user{idx}",
                              "address": "dba"}])
                for row in range(per_client):
                    client.sql(
                        "INSERT INTO t (id, owner, v) VALUES "
                        f"({idx * 100 + row}, 'user{idx}', {row})")
                out = client.sql(
                    "SELECT id FROM t WHERE owner = @me",
                    params={"me": f"user{idx}"})
                assert len(out["rows"]) == per_client, out
                client.close()
            except Exception as err:  # pragma: no cover - surfaced below
                errors.append((idx, err))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT * 2)
        assert not errors, errors
        # every client's rule was installed and fired independently
        for idx in range(self.N):
            rule = service.sqlcm.rules[f"rule{idx}"]
            assert rule.fire_count >= per_client
        # total rows: every client's inserts landed exactly once
        with connect(service, user="check") as check:
            out = check.sql("SELECT id FROM t")
            assert len(out["rows"]) == self.N * per_client

    def test_pushed_alerts_match_engine_ring(self, service):
        with connect(service, user="w") as writer, \
                connect(service, user="l") as listener:
            listener.subscribe("stream_alert")
            writer.install_stream(
                "STREAM commits FROM Query.Commit WINDOW TUMBLING(0.25) "
                "AGG COUNT(*) AS N")
            writer.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            for i in range(4):
                writer.sql(f"INSERT INTO t (id) VALUES ({i})")
                # ~0.4 virtual seconds per pause: commits land in
                # different tumbling windows
                time.sleep(0.02)
            query = service.sqlcm.stream_engine().query("commits")
            assert wait_until(lambda: len(query.alerts) >= 2)
            expected = {(a["window_start"], a["value"])
                        for a in query.alerts}
            got = set()

            def caught_up():
                for push in listener.drain_pushes(topic="stream_alert"):
                    got.add((push.data["window_start"],
                             push.data["value"]))
                listener.ping()
                return expected <= got

            assert wait_until(caught_up)
            # every pushed alert exists in the engine ring, not just most
            expected = {(a["window_start"], a["value"])
                        for a in query.alerts}
            assert got <= expected


# ---------------------------------------------------------------------------
# end-to-end: blocking storm with ≥ 8 clients (acceptance criteria)
# ---------------------------------------------------------------------------

class TestBlockingStormEndToEnd:
    CLIENTS = 8

    def test_storm_backpressure_incident_and_resolution(self):
        svc = build_service(queue_limit=4, queue_timeout=0.5)
        svc.sqlcm.enable_governor(GovernorPolicy(decision_interval=1e9,
                                                 window=1e9))
        AutoRemediator(
            svc.sqlcm,
            sweep_interval=0.1,
            block_wait_threshold=0.2,
            cancel_blockers=True,
            policy=IncidentPolicy(sweep_interval=0.1, clear_after=0.5,
                                  escalation_timeout=1e9))
        with ServiceRunner(svc):
            with connect(svc, user="setup") as setup:
                setup.sql("CREATE TABLE hot (id INTEGER PRIMARY KEY, "
                          "v INTEGER)")
                setup.sql("INSERT INTO hot (id, v) VALUES (1, 0)")

            # a holder keeps a transaction open on the hot row so every
            # other client piles up behind it; partway through, the
            # governor is pushed to SHEDDING so BEST_EFFORT clients see
            # explicit backpressure instead of silent queueing
            stop = threading.Event()
            outcomes: dict[int, list] = {i: [] for i in range(self.CLIENTS)}
            errors: list = []

            def holder():
                client = connect(svc, user="holder")
                try:
                    while not stop.is_set():
                        client.sql("BEGIN")
                        client.sql("UPDATE hot SET v = v + 1 WHERE id = 1")
                        time.sleep(0.15)
                        try:
                            client.sql("COMMIT")
                        except ServiceError:
                            pass  # a remediation cancel beat us to it
                finally:
                    client.close()

            def contender(idx: int):
                crit = BEST_EFFORT if idx % 2 else "normal"
                try:
                    client = connect(svc, user=f"c{idx}", criticality=crit)
                except Exception as err:  # pragma: no cover
                    errors.append((idx, err))
                    return
                for __ in range(6):
                    if stop.is_set():
                        break
                    try:
                        client.sql("UPDATE hot SET v = v + 1 WHERE id = 1")
                        outcomes[idx].append("ok")
                    except ServiceError as err:
                        outcomes[idx].append(err.code)
                client.close()

            holder_thread = threading.Thread(target=holder)
            holder_thread.start()
            threads = [threading.Thread(target=contender, args=(i,))
                       for i in range(self.CLIENTS)]
            for thread in threads:
                thread.start()
            # partway through, degrade the ladder: BEST_EFFORT requests
            # must now receive queue-or-shed treatment
            time.sleep(0.4)
            svc.sqlcm.governor.state = GOV_SHEDDING
            for thread in threads:
                thread.join(WAIT * 4)
                assert not thread.is_alive(), "a client hung"
            svc.sqlcm.governor.state = GOV_NORMAL
            stop.set()
            holder_thread.join(WAIT)
            assert not holder_thread.is_alive()
            assert not errors, errors

            # (a) every request got an answer: success, an honest SQL
            # error (deadlock/cancel), or explicit backpressure
            for idx, results in outcomes.items():
                assert len(results) == 6, (idx, results)
                assert all(code in ("ok", E_SQL, E_OVERLOADED)
                           for code in results), (idx, results)

            # (b) the storm opened a blocking incident, visible over the
            # wire, and it auto-resolves once the storm stops
            with connect(svc, user="admin") as admin:
                listing = admin.incidents()
                blocking = [i for i in listing["incidents"]
                            if i["class"] == "blocking"]
                assert blocking, listing

                def resolved():
                    inc = admin.incidents()["incidents"]
                    return all(i["resolved_at"] is not None for i in inc
                               if i["class"] == "blocking")

                assert wait_until(resolved, timeout=WAIT * 2)
                # the investigation story is reachable for the incident
                story = admin.investigate(blocking[0]["id"])
                assert story["timeline"]


# ---------------------------------------------------------------------------
# idle-connection reaping (satellite)
# ---------------------------------------------------------------------------

class TestIdleReap:
    def test_mid_transaction_idler_is_reaped_and_rolled_back(self):
        svc = build_service(idle_timeout=1.0)
        with ServiceRunner(svc):
            with connect(svc, user="bob") as bob:
                bob.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
                bob.sql("INSERT INTO t (id, v) VALUES (1, 10)")
                alice = connect(svc, user="alice")
                alice.sql("BEGIN")
                alice.sql("UPDATE t SET v = 99 WHERE id = 1")
                session_id = alice.session_id
                # alice goes silent; bob heartbeats so only alice idles out
                deadline = time.monotonic() + WAIT
                while svc.db.session(session_id) is not None \
                        and time.monotonic() < deadline:
                    bob.ping()
                    time.sleep(0.005)
                assert svc.db.session(session_id) is None
                assert svc.connections_reaped == 1
                counters = bob.metrics()["metrics"]["counters"]
                assert counters.get("sqlcm.service.reaped") == 1
                # the reap tore the transaction down: bob is not blocked
                # and the abandoned update was rolled back, not committed
                out = bob.sql("UPDATE t SET v = 5 WHERE id = 1")
                assert out["rows_affected"] == 1
                assert bob.sql("SELECT v FROM t")["rows"] == [[5]]

    def test_ping_heartbeat_prevents_reap(self):
        svc = build_service(idle_timeout=5.0)
        with ServiceRunner(svc):
            with connect(svc) as client:
                start = svc.db.clock.now
                while svc.db.clock.now - start < 12.0:  # > 2x the timeout
                    client.ping()
                    time.sleep(0.005)
                assert svc.connections_reaped == 0
                assert client.status()["service"]["connections"] == 1

    def test_no_timeout_means_no_reaping(self):
        svc = build_service()  # idle_timeout defaults to None
        with ServiceRunner(svc):
            with connect(svc) as busy:
                idler = connect(svc)
                idler.ping()
                start = svc.db.clock.now
                while svc.db.clock.now - start < 5.0:
                    busy.ping()
                    time.sleep(0.005)
                assert svc.connections_reaped == 0
                assert idler.status()["service"]["connections"] == 2


# ---------------------------------------------------------------------------
# supervised restart: rebuild the monitor, keep the listener
# ---------------------------------------------------------------------------

def build_durable_service(directory, incidents=False,
                          **kwargs) -> MonitorService:
    db = DatabaseServer(ServerConfig(track_completed_queries=True))
    db.enable_observability()
    sqlcm = SQLCM(db)
    if incidents:
        # enabled before the service attaches durability, so the manager
        # is part of checkpoint generation 1 and every recovery
        sqlcm.incident_manager(IncidentPolicy(
            sweep_interval=0.1, clear_after=0.3, escalation_timeout=1e9))
    return MonitorService(db, sqlcm, ServiceConfig(**kwargs),
                          durable_dir=str(directory))


class TestSupervisedRestart:
    def test_restart_preserves_state_and_sockets(self, tmp_path):
        svc = build_durable_service(tmp_path)
        with ServiceRunner(svc):
            with connect(svc, user="admin") as admin:
                admin.install_lat("D_LAT", grouping=["Query.User AS U"],
                                  aggregations=["COUNT(Query.ID) AS N"])
                admin.install_rule(
                    "track", event="Query.Commit",
                    actions=[{"type": "insert", "lat": "D_LAT"}])
                admin.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
                admin.sql("INSERT INTO t (id) VALUES (1)")
                old_monitor = svc.sqlcm
                digest = old_monitor.state_digest()
                out = admin.call("restart")
                assert out["state"] == "recovering"
                assert wait_until(lambda: svc.restarts == 1
                                  and svc.state == "running")
                # a genuinely new monitor, carrying the exact old state
                assert svc.sqlcm is not old_monitor
                assert svc.sqlcm.state_digest() == digest
                n_before = svc.sqlcm.lat("D_LAT").rows()[0]["N"]
                # same socket, no re-handshake: requests flow again and
                # keep feeding the rebuilt monitor's rules
                assert admin.sql("SELECT id FROM t")["rows"] == [[1]]
                assert svc.sqlcm.lat("D_LAT").rows()[0]["N"] \
                    == n_before + 1
                status = admin.status()["service"]
                assert status["state"] == "running"
                assert status["restarts"] == 1

    def test_requests_during_recovery_get_recovering_code(self, tmp_path):
        svc = build_durable_service(tmp_path)
        with ServiceRunner(svc):
            with connect(svc) as client:
                client.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
                client.sql("INSERT INTO t (id) VALUES (1)")
                svc.state = "recovering"  # hold the gate deterministically
                try:
                    with pytest.raises(ServiceError) as excinfo:
                        client.sql("SELECT id FROM t")
                    assert excinfo.value.code == E_RECOVERING
                    assert excinfo.value.retry_after is not None
                    client.ping()  # heartbeats pass the gate
                    assert client.status()["service"]["state"] \
                        == "recovering"
                finally:
                    svc.state = "running"
                assert client.sql("SELECT id FROM t")["rows"] == [[1]]

    def test_subscriptions_resume_after_restart(self, tmp_path):
        svc = build_durable_service(tmp_path, incidents=True)
        with ServiceRunner(svc):
            with connect(svc, user="admin") as admin:
                admin.subscribe("incident")
                admin.install_rule(
                    "hot", event="Query.Commit",
                    actions=[{"type": "open_incident",
                              "incident_class": "test",
                              "signature": "storm"}])
                admin.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
                admin.sql("INSERT INTO t (id) VALUES (1)")
                opened = admin.wait_push(timeout=WAIT, topic="incident")
                assert opened.data["phase"] == "opened"
                admin.drain_pushes()
                admin.call("restart")
                assert wait_until(lambda: svc.restarts == 1
                                  and svc.state == "running")
                # the standing subscription delivers pushes from the
                # rebuilt monitor without re-subscribing
                admin.sql("INSERT INTO t (id) VALUES (2)")
                push = admin.wait_push(timeout=WAIT, topic="incident")
                assert push.topic == "incident"

    def test_restart_requires_durability_and_admin(self, tmp_path):
        svc = build_service()  # no durability directory
        with ServiceRunner(svc):
            with connect(svc, user="admin") as admin:
                with pytest.raises(ServiceError) as excinfo:
                    admin.call("restart")
                assert excinfo.value.code == E_BAD_REQUEST
        durable = build_durable_service(tmp_path)
        with ServiceRunner(durable):
            with connect(durable, user="mallory") as mallory:
                with pytest.raises(ServiceError) as excinfo:
                    mallory.call("restart")
                assert excinfo.value.code == E_DENIED
            assert durable.restarts == 0
