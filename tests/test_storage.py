"""Tests for table storage and index maintenance."""

import pytest

from repro.engine.catalog import ColumnDef, IndexDef, TableSchema
from repro.engine.storage import Table
from repro.engine.types import SQLType
from repro.errors import ConstraintError, ExecutionError


@pytest.fixture
def table():
    schema = TableSchema("t", [
        ColumnDef("id", SQLType.INTEGER, nullable=False),
        ColumnDef("name", SQLType.STRING),
        ColumnDef("price", SQLType.FLOAT),
    ], primary_key=["id"])
    return Table(schema)


class TestInsert:
    def test_insert_assigns_increasing_rowids(self, table):
        r1 = table.insert([1, "a", 1.0])
        r2 = table.insert([2, "b", 2.0])
        assert r2 > r1
        assert table.row_count == 2

    def test_insert_coerces_values(self, table):
        rowid = table.insert([1, "a", 3])
        assert table.get(rowid)[2] == 3.0

    def test_unique_violation(self, table):
        table.insert([1, "a", 1.0])
        with pytest.raises(ConstraintError):
            table.insert([1, "b", 2.0])

    def test_not_null_enforced(self, table):
        with pytest.raises(ConstraintError):
            table.insert([None, "a", 1.0])

    def test_wrong_arity_rejected(self, table):
        with pytest.raises(ExecutionError):
            table.insert([1, "a"])

    def test_unique_failure_leaves_indexes_consistent(self, table):
        table.insert([1, "a", 1.0])
        with pytest.raises(ConstraintError):
            table.insert([1, "b", 2.0])
        assert table.row_count == 1
        assert len(table.indexes["pk_t"]) == 1


class TestUpdateDelete:
    def test_update_changes_values_and_returns_before_image(self, table):
        rowid = table.insert([1, "a", 1.0])
        before = table.update(rowid, {2: 9.0})
        assert before == [1, "a", 1.0]
        assert table.get(rowid) == [1, "a", 9.0]

    def test_update_maintains_indexes(self, table):
        rowid = table.insert([1, "a", 1.0])
        table.insert([2, "b", 2.0])
        table.update(rowid, {0: 5})
        pk = table.indexes["pk_t"]
        assert pk.lookup((1,)) == frozenset()
        assert pk.lookup((5,)) == {rowid}

    def test_update_unique_conflict_restores_index(self, table):
        r1 = table.insert([1, "a", 1.0])
        table.insert([2, "b", 2.0])
        with pytest.raises(ConstraintError):
            table.update(r1, {0: 2})
        assert table.indexes["pk_t"].lookup((1,)) == {r1}

    def test_update_missing_rowid(self, table):
        with pytest.raises(ExecutionError):
            table.update(99, {1: "x"})

    def test_delete_returns_before_image(self, table):
        rowid = table.insert([1, "a", 1.0])
        assert table.delete(rowid) == [1, "a", 1.0]
        assert table.get(rowid) is None
        assert table.indexes["pk_t"].lookup((1,)) == frozenset()

    def test_restore_reinserts_under_same_rowid(self, table):
        rowid = table.insert([1, "a", 1.0])
        image = table.delete(rowid)
        table.restore(rowid, image)
        assert table.get(rowid) == [1, "a", 1.0]
        assert table.indexes["pk_t"].lookup((1,)) == {rowid}

    def test_overwrite_applies_before_image(self, table):
        rowid = table.insert([1, "a", 1.0])
        before = table.update(rowid, {0: 7, 1: "z"})
        table.overwrite(rowid, before)
        assert table.get(rowid) == [1, "a", 1.0]
        assert table.indexes["pk_t"].lookup((7,)) == frozenset()

    def test_truncate(self, table):
        table.insert([1, "a", 1.0])
        table.truncate()
        assert table.row_count == 0
        assert len(table.indexes["pk_t"]) == 0


class TestSecondaryIndexes:
    def test_backfill_on_creation(self, table):
        table.insert([1, "a", 5.0])
        table.insert([2, "b", 5.0])
        index = table.add_index(IndexDef("ix_price", "t", ("price",)))
        assert index.lookup((5.0,)) == {1, 2}

    def test_non_unique_allows_duplicates(self, table):
        table.add_index(IndexDef("ix_name", "t", ("name",)))
        table.insert([1, "same", 1.0])
        table.insert([2, "same", 2.0])
        assert len(table.indexes["ix_name"].lookup(("same",))) == 2


class TestRangeScans:
    @pytest.fixture
    def loaded(self, table):
        for i in range(1, 11):
            table.insert([i, f"n{i}", float(i)])
        return table

    def test_full_range(self, loaded):
        index = loaded.indexes["pk_t"]
        assert list(index.range(None, None)) == list(range(1, 11))

    def test_bounded_range_inclusive(self, loaded):
        index = loaded.indexes["pk_t"]
        rows = [loaded.get(r)[0] for r in index.range((3,), (6,))]
        assert rows == [3, 4, 5, 6]

    def test_bounded_range_exclusive(self, loaded):
        index = loaded.indexes["pk_t"]
        rows = [loaded.get(r)[0]
                for r in index.range((3,), (6,), False, False)]
        assert rows == [4, 5]

    def test_prefix_scan_on_composite_key(self):
        schema = TableSchema("c", [
            ColumnDef("a", SQLType.INTEGER, nullable=False),
            ColumnDef("b", SQLType.INTEGER, nullable=False),
        ], primary_key=["a", "b"])
        table = Table(schema)
        for a in (1, 2):
            for b in (1, 2, 3):
                table.insert([a, b])
        index = table.indexes["pk_c"]
        rows = [table.get(r) for r in index.prefix_scan((2,))]
        assert rows == [[2, 1], [2, 2], [2, 3]]

    def test_bounded_scan_with_prefix_and_range(self):
        schema = TableSchema("c", [
            ColumnDef("a", SQLType.INTEGER, nullable=False),
            ColumnDef("b", SQLType.INTEGER, nullable=False),
        ], primary_key=["a", "b"])
        table = Table(schema)
        for a in (1, 2):
            for b in range(1, 6):
                table.insert([a, b])
        index = table.indexes["pk_c"]
        rows = [table.get(r) for r in index.bounded_scan((2,), low=2, high=4)]
        assert rows == [[2, 2], [2, 3], [2, 4]]

    def test_bounded_scan_open_low(self):
        schema = TableSchema("c", [
            ColumnDef("a", SQLType.INTEGER, nullable=False),
        ], primary_key=["a"])
        table = Table(schema)
        for a in range(1, 6):
            table.insert([a])
        index = table.indexes["pk_c"]
        rows = [table.get(r)[0]
                for r in index.bounded_scan((), high=3)]
        assert rows == [1, 2, 3]

    def test_scan_order_is_rowid_order(self, loaded):
        rowids = [rowid for rowid, __ in loaded.scan()]
        assert rowids == sorted(rowids)

    def test_page_count(self, loaded):
        assert loaded.page_count(rows_per_page=3) == 4
        assert loaded.page_count(rows_per_page=100) == 1
