"""End-to-end integration scenarios mirroring the paper's experiments."""

import pytest

from repro import (DatabaseServer, InsertAction, LATDefinition,
                   PersistAction, Rule, ServerConfig, SQLCM, Statement)
from repro.apps import TopKTracker
from repro.monitoring import (PullHistoryMonitor, PullMonitor,
                              QueryLoggingMonitor, missed_top_k,
                              top_k_ground_truth)
from repro.workloads import (TPCHConfig, WorkloadMix, mixed_paper_workload)
from repro.workloads.generator import lineitem_key_sample
from repro.workloads.tpch import setup_tpch


def build_world(with_tracking=True):
    server = DatabaseServer(ServerConfig(track_completed_queries=with_tracking))
    counts = setup_tpch(server, TPCHConfig().scaled(0.05))
    return server, counts


def run_mix(server, counts, short=150, joins=4, seed=7):
    keys = lineitem_key_sample(server, 100)
    mix = WorkloadMix(short_queries=short, join_queries=joins,
                      join_rows_low=100, join_rows_high=200, seed=seed)
    statements = mixed_paper_workload(
        mix, orders_rows=counts["orders"],
        lineitem_rows=counts["lineitem"], lineitem_keys=keys)
    session = server.create_session(application="workload")
    start = server.clock.now
    proc = session.submit_script(statements)
    # run until the workload completes: attached pollers loop forever
    server.scheduler.run_until_done(proc)
    return session, server.clock.now - start


class TestWorkloadReplay:
    def test_identical_runs_produce_identical_virtual_times(self):
        elapsed = []
        for __ in range(2):
            server, counts = build_world()
            __, duration = run_mix(server, counts)
            elapsed.append(duration)
        assert elapsed[0] == elapsed[1]

    def test_workload_has_no_errors(self):
        server, counts = build_world()
        session, __ = run_mix(server, counts)
        assert not any(r.error for r in session.results)


class TestSQLCMOverheadShape:
    """Small-scale version of Figure 2's structure: overhead grows with the
    number of rules and stays small relative to the workload."""

    def _elapsed_with_rules(self, n_rules, conditions=1):
        server, counts = build_world(with_tracking=False)
        sqlcm = SQLCM(server)
        for i in range(n_rules):
            sqlcm.create_lat(LATDefinition(
                name=f"L{i}",
                grouping=["Query.ID AS Qid"],
                aggregations=["LAST(Query.Duration) AS D",
                              "LAST(Query.Query_Text) AS T"],
                ordering=["Qid DESC"],
                max_rows=10,
            ))
            condition = " AND ".join(
                ["Query.Duration >= 0"] * conditions)
            sqlcm.add_rule(Rule(
                name=f"r{i}", event="Query.Commit", condition=condition,
                actions=[InsertAction(f"L{i}")],
            ))
        __, duration = run_mix(server, counts, short=60, joins=0)
        return duration

    def test_overhead_increases_with_rule_count(self):
        base = self._elapsed_with_rules(0)
        few = self._elapsed_with_rules(10)
        many = self._elapsed_with_rules(100)
        assert base < few < many

    def test_overhead_small_even_with_many_rules(self):
        base = self._elapsed_with_rules(0)
        many = self._elapsed_with_rules(100, conditions=10)
        overhead = (many - base) / base
        assert overhead < 0.10  # paper: < 4% at 1000 rules; small regardless

    def test_condition_complexity_cheaper_than_lat_maintenance(self):
        """Figure 2's second finding: complexity has little impact."""
        simple = self._elapsed_with_rules(50, conditions=1)
        complex_ = self._elapsed_with_rules(50, conditions=20)
        base = self._elapsed_with_rules(0)
        assert (complex_ - simple) < (simple - base)


class TestTopKApproaches:
    """Small-scale version of Figure 3: who wins on overhead and accuracy."""

    def _baseline(self):
        server, counts = build_world()
        __, duration = run_mix(server, counts)
        return duration

    def test_sqlcm_cheapest_and_exact_on_joins(self):
        base = self._baseline()

        server, counts = build_world()
        sqlcm = SQLCM(server)
        tracker = TopKTracker(sqlcm, k=4)
        __, monitored = run_mix(server, counts)
        overhead = (monitored - base) / base
        assert overhead < 0.01  # paper: < 0.1%
        truth = top_k_ground_truth(server, 4)
        assert missed_top_k(truth, tracker.top_k()) == 0

    def test_logging_much_more_expensive_than_sqlcm(self):
        base = self._baseline()

        server, counts = build_world()
        QueryLoggingMonitor(server)
        __, logged = run_mix(server, counts)
        logging_overhead = (logged - base) / base

        server2, counts2 = build_world()
        sqlcm = SQLCM(server2)
        TopKTracker(sqlcm, k=4)
        __, monitored = run_mix(server2, counts2)
        sqlcm_overhead = (monitored - base) / base

        assert logging_overhead > 0.15  # paper: > 20%
        assert logging_overhead > 20 * max(sqlcm_overhead, 1e-6)

    def test_pull_lossy_but_cheaper_than_logging(self):
        base = self._baseline()
        server, counts = build_world()
        monitor = PullMonitor(server, interval=1.0)
        monitor.start()
        __, polled = run_mix(server, counts)
        monitor.stop()
        pull_overhead = (polled - base) / base
        assert pull_overhead < 0.10
        truth = top_k_ground_truth(server, 4)
        assert missed_top_k(truth, monitor.top_k(4)) >= 1

    def test_pull_history_exact_but_costlier_than_sqlcm(self):
        base = self._baseline()
        server, counts = build_world()
        monitor = PullHistoryMonitor(server, interval=1.0)
        monitor.start()
        __, polled = run_mix(server, counts)
        monitor.stop()
        truth = top_k_ground_truth(server, 4)
        assert missed_top_k(truth, monitor.top_k(4)) == 0
        history_overhead = (polled - base) / base

        server2, counts2 = build_world()
        sqlcm = SQLCM(server2)
        TopKTracker(sqlcm, k=4)
        __, monitored = run_mix(server2, counts2)
        sqlcm_overhead = (monitored - base) / base
        assert history_overhead > sqlcm_overhead


class TestPaperRuleVerbatim:
    """The exact rule from Section 2.3: persist queries slower than a
    threshold at commit."""

    def test_slow_query_persisted(self):
        server, counts = build_world()
        sqlcm = SQLCM(server)
        sqlcm.add_rule(Rule(
            name="paper_rule",
            event="Query.Commit",
            condition="Query.Duration > 0.05",
            actions=[PersistAction("slow_queries",
                                   ["ID", "Query_Text", "Duration"],
                                   source="Query")],
        ))
        run_mix(server, counts, short=30, joins=2)
        table = server.table("slow_queries")
        assert table.row_count == 2  # exactly the two join queries
        for __, row in table.scan():
            assert row[2] > 0.05


class TestDynamicRuleManagement:
    """Section 3's closing note: rules can be added/removed dynamically,
    e.g. turned on and off based on time of day."""

    def test_toggle_rules_mid_workload(self):
        server, counts = build_world()
        sqlcm = SQLCM(server)
        sqlcm.create_lat(LATDefinition(
            name="CountLat",
            grouping=["Query.Application AS App"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(name="count_queries", event="Query.Commit",
                            actions=[InsertAction("CountLat")]))
        session = server.create_session(application="app")
        session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
        sqlcm.enable_rule("count_queries", False)
        session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 2")
        sqlcm.enable_rule("count_queries", True)
        session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 3")
        assert sqlcm.lat("CountLat").lookup(("app",))["N"] == 2

    def test_threshold_adjustment_via_replacement(self):
        server, counts = build_world()
        sqlcm = SQLCM(server)
        sqlcm.add_rule(Rule(
            name="slow", event="Query.Commit",
            condition="Query.Duration > 100",
            actions=[PersistAction("slow_q", ["ID"], source="Query")],
        ))
        sqlcm.remove_rule("slow")
        sqlcm.add_rule(Rule(
            name="slow", event="Query.Commit",
            condition="Query.Duration > 0.0001",
            actions=[PersistAction("slow_q", ["ID"], source="Query")],
        ))
        session = server.create_session()
        session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
        assert server.table("slow_q").row_count == 1
