"""Tests for Timer objects and periodic rule invocation."""

import pytest

from repro import Rule, SQLCM, SetTimerAction
from repro.core.actions import CallbackAction
from repro.errors import ActionError


@pytest.fixture
def monitored(server):
    return server, SQLCM(server)


class TestTimerService:
    def test_alert_fires_at_interval(self, monitored):
        server, sqlcm = monitored
        times = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(
                lambda s, c: times.append(round(server.clock.now, 3)))],
        ))
        sqlcm.set_timer("t", interval=1.0, repeats=3)
        server.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]

    def test_zero_repeats_disables(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        sqlcm.set_timer("t", interval=1.0, repeats=0)
        server.run(until=5.0)
        assert fired == []

    def test_negative_repeats_infinite(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        sqlcm.set_timer("t", interval=0.5, repeats=-1)
        server.run(until=5.2)
        assert len(fired) == 10

    def test_rearming_replaces_schedule(self, monitored):
        server, sqlcm = monitored
        times = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(
                lambda s, c: times.append(round(server.clock.now, 3)))],
        ))
        sqlcm.set_timer("t", interval=1.0, repeats=-1)
        server.run(until=2.5)  # fires at 1.0, 2.0
        sqlcm.set_timer("t", interval=5.0, repeats=1)  # re-arm
        server.run(until=20.0)
        assert times == [1.0, 2.0, 7.5]

    def test_disarm_stops_pending_process(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        sqlcm.set_timer("t", interval=1.0, repeats=-1)
        server.run(until=1.5)
        sqlcm.set_timer("t", interval=1.0, repeats=0)  # disarm
        server.run(until=10.0)
        assert len(fired) == 1

    def test_multiple_timers_independent(self, monitored):
        server, sqlcm = monitored
        names = []
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(
                lambda s, c: names.append(c["timer"].get("Name")))],
        ))
        sqlcm.set_timer("fast", interval=1.0, repeats=2)
        sqlcm.set_timer("slow", interval=1.5, repeats=1)
        server.run(until=10.0)
        assert names == ["fast", "slow", "fast"]

    def test_condition_can_select_specific_timer(self, monitored):
        server, sqlcm = monitored
        fired = []
        sqlcm.add_rule(Rule(
            name="only_fast", event="Timer.Alert",
            condition="Timer.Name = 'fast'",
            actions=[CallbackAction(lambda s, c: fired.append(1))],
        ))
        sqlcm.set_timer("fast", interval=1.0, repeats=1)
        sqlcm.set_timer("slow", interval=1.0, repeats=1)
        server.run(until=5.0)
        assert len(fired) == 1

    def test_set_timer_action_validation(self):
        with pytest.raises(ActionError):
            SetTimerAction("t", interval=-1.0, repeats=2).validate(None, None)

    def test_overrunning_alert_work_coalesces_missed_alarms(self, monitored):
        """Rule work outrunning the interval skips deadlines in one step."""
        server, sqlcm = monitored
        times = []

        def slow_alert(s, c):
            times.append(round(server.clock.now, 3))
            s.server.add_monitor_cost(1.2)  # 1.2s of work per 0.5s alarm

        sqlcm.add_rule(Rule(name="tick", event="Timer.Alert",
                            actions=[CallbackAction(slow_alert)]))
        sqlcm.set_timer("t", interval=0.5, repeats=-1)
        server.run(until=6.0)
        # fire at 0.5 ends at 1.7: alarms due 1.0 and 1.5 are coalesced,
        # the series resumes at 2.0 — never a burst of instantly-due alarms
        assert times == [0.5, 2.0, 3.5, 5.0]
        timer = sqlcm.timer_service.get("t")
        assert timer.overruns >= 6  # two missed alarms per completed fire

    def test_coalesced_alarms_consume_finite_repeats(self, monitored):
        server, sqlcm = monitored
        times = []

        def slow_alert(s, c):
            times.append(round(server.clock.now, 3))
            s.server.add_monitor_cost(1.2)

        sqlcm.add_rule(Rule(name="tick", event="Timer.Alert",
                            actions=[CallbackAction(slow_alert)]))
        sqlcm.set_timer("t", interval=0.5, repeats=4)
        server.run(until=20.0)
        # fire #1 at 0.5 consumes one repeat, its overrun coalesces two
        # more; fire #2 at 2.0 consumes the last repeat
        assert times == [0.5, 2.0]
        assert sqlcm.timer_service.get("t").overruns == 2

    def test_overruns_counted_in_metrics(self, monitored):
        server, sqlcm = monitored
        server.enable_observability()
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(
                lambda s, c: s.server.add_monitor_cost(1.2))],
        ))
        sqlcm.set_timer("t", interval=0.5, repeats=4)
        server.run(until=20.0)
        snap = server.obs.metrics.snapshot()
        assert snap["counters"].get("sqlcm.timer.overruns") == 2

    def test_fast_alert_work_never_overruns(self, monitored):
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(name="tick", event="Timer.Alert",
                            actions=[CallbackAction(lambda s, c: None)]))
        sqlcm.set_timer("t", interval=1.0, repeats=5)
        server.run(until=10.0)
        assert sqlcm.timer_service.get("t").overruns == 0

    def test_timer_rule_cost_charged_in_background(self, monitored):
        """Timer rule work advances the clock via the timer's own process."""
        server, sqlcm = monitored
        sqlcm.add_rule(Rule(
            name="tick", event="Timer.Alert",
            actions=[CallbackAction(lambda s, c: None)],
        ))
        sqlcm.set_timer("t", interval=1.0, repeats=1)
        server.run(until=10.0)
        assert server.take_monitor_cost() == 0.0  # drained by the timer
