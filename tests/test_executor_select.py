"""End-to-end SELECT execution tests through the full pipeline."""

import pytest

from repro.errors import EngineError


def q(server, sql, params=None):
    session = server.create_session()
    result = session.execute(sql, params)
    server.close_session(session)
    return result.rows


class TestBasicSelect:
    def test_project_columns(self, items_server):
        rows = q(items_server, "SELECT id, name FROM items WHERE id = 2")
        assert rows == [(2, "pear")]

    def test_star(self, items_server):
        rows = q(items_server, "SELECT * FROM items WHERE id = 1")
        assert rows == [(1, "apple", 1.5, 10, "fruit")]

    def test_qualified_star(self, items_server):
        rows = q(items_server, "SELECT i.* FROM items i WHERE i.id = 1")
        assert len(rows[0]) == 5

    def test_expression_in_select_list(self, items_server):
        rows = q(items_server,
                 "SELECT price * qty AS total FROM items WHERE id = 1")
        assert rows == [(15.0,)]

    def test_where_filters(self, items_server):
        rows = q(items_server, "SELECT id FROM items WHERE price > 2.0")
        assert sorted(r[0] for r in rows) == [4, 5]

    def test_order_by_desc(self, items_server):
        rows = q(items_server,
                 "SELECT name FROM items ORDER BY price DESC LIMIT 2")
        assert rows == [("hammer",), ("wrench",)]

    def test_order_by_multiple_keys(self, items_server):
        rows = q(items_server,
                 "SELECT segment, name FROM items "
                 "ORDER BY segment ASC, price DESC")
        assert rows[0] == ("fruit", "pear")
        assert rows[-1] == ("tools", "nail")

    def test_order_by_non_projected_column(self, items_server):
        rows = q(items_server, "SELECT name FROM items ORDER BY qty DESC")
        assert rows[0] == ("nail",)

    def test_order_by_select_alias(self, items_server):
        rows = q(items_server,
                 "SELECT name, price * qty AS total FROM items "
                 "ORDER BY total DESC LIMIT 2")
        assert rows[0] == ("wrench", 58.0)

    def test_order_by_aggregate_alias(self, items_server):
        rows = q(items_server,
                 "SELECT segment, SUM(qty) AS total FROM items "
                 "GROUP BY segment ORDER BY total DESC")
        assert rows == [("tools", 511), ("fruit", 55)]

    def test_alias_does_not_shadow_real_column(self, items_server):
        # "name" is both a column and an alias: the column wins for ORDER BY
        rows = q(items_server,
                 "SELECT qty AS name FROM items ORDER BY name DESC LIMIT 1")
        assert rows == [(8,)]  # ordered by the STRING column name → wrench

    def test_limit_zero(self, items_server):
        assert q(items_server, "SELECT id FROM items LIMIT 0") == []

    def test_distinct(self, items_server):
        rows = q(items_server, "SELECT DISTINCT segment FROM items")
        assert sorted(r[0] for r in rows) == ["fruit", "tools"]

    def test_in_and_between(self, items_server):
        rows = q(items_server,
                 "SELECT id FROM items WHERE id IN (1, 3, 5) "
                 "AND price BETWEEN 0.4 AND 8.0")
        assert sorted(r[0] for r in rows) == [1, 3, 5]

    def test_like(self, items_server):
        rows = q(items_server, "SELECT name FROM items WHERE name LIKE '%a%'")
        assert {"apple", "pear", "hammer", "nail"} == {r[0] for r in rows}

    def test_parameterized_query(self, items_server):
        rows = q(items_server, "SELECT name FROM items WHERE id = @target",
                 {"target": 4})
        assert rows == [("hammer",)]

    def test_empty_result(self, items_server):
        assert q(items_server, "SELECT id FROM items WHERE id = 999") == []

    def test_select_without_from(self, items_server):
        assert q(items_server, "SELECT 1 + 1") == [(2,)]
        assert q(items_server, "SELECT 'x', 2.5 * 2 AS five") == [("x", 5.0)]

    def test_select_without_from_with_params(self, items_server):
        assert q(items_server, "SELECT @p * 2", {"p": 21}) == [(42,)]

    def test_select_without_from_column_ref_rejected(self, items_server):
        session = items_server.create_session()
        with pytest.raises(EngineError):
            session.execute("SELECT price")


class TestAggregates:
    def test_scalar_aggregates(self, items_server):
        rows = q(items_server,
                 "SELECT COUNT(*), MIN(price), MAX(price), SUM(qty) "
                 "FROM items")
        assert rows == [(6, 0.05, 9.5, 566)]

    def test_avg_and_stdev(self, items_server):
        rows = q(items_server,
                 "SELECT AVG(price), STDEV(price) FROM items "
                 "WHERE segment = 'fruit'")
        avg, stdev = rows[0]
        assert avg == pytest.approx(4.0 / 3.0)
        assert stdev == pytest.approx(0.7637626, rel=1e-5)

    def test_group_by(self, items_server):
        rows = q(items_server,
                 "SELECT segment, COUNT(*), SUM(qty) FROM items "
                 "GROUP BY segment ORDER BY segment")
        assert rows == [("fruit", 3, 55), ("tools", 3, 511)]

    def test_having(self, items_server):
        rows = q(items_server,
                 "SELECT segment FROM items GROUP BY segment "
                 "HAVING SUM(qty) > 100")
        assert rows == [("tools",)]

    def test_count_distinct(self, items_server):
        rows = q(items_server, "SELECT COUNT(DISTINCT segment) FROM items")
        assert rows == [(2,)]

    def test_scalar_aggregate_on_empty_input(self, items_server):
        rows = q(items_server,
                 "SELECT COUNT(*), SUM(price) FROM items WHERE id > 100")
        assert rows == [(0, None)]

    def test_group_by_empty_input_yields_no_rows(self, items_server):
        rows = q(items_server,
                 "SELECT segment, COUNT(*) FROM items WHERE id > 100 "
                 "GROUP BY segment")
        assert rows == []

    def test_order_by_aggregate(self, items_server):
        rows = q(items_server,
                 "SELECT segment FROM items GROUP BY segment "
                 "ORDER BY SUM(qty) DESC")
        assert rows == [("tools",), ("fruit",)]


class TestJoins:
    @pytest.fixture
    def join_server(self, items_server):
        items_server.execute_ddl(
            "CREATE TABLE segments (name VARCHAR(10) NOT NULL PRIMARY KEY, "
            "manager VARCHAR(20))"
        )
        s = items_server.create_session()
        s.execute("INSERT INTO segments VALUES ('fruit', 'alice'), "
                  "('garden', 'bob')")
        return items_server

    def test_inner_join(self, join_server):
        rows = q(join_server,
                 "SELECT i.name, s.manager FROM items i "
                 "JOIN segments s ON i.segment = s.name ORDER BY i.id")
        assert rows == [("apple", "alice"), ("pear", "alice"),
                        ("plum", "alice")]

    def test_left_join_produces_nulls(self, join_server):
        rows = q(join_server,
                 "SELECT i.name, s.manager FROM items i "
                 "LEFT JOIN segments s ON i.segment = s.name "
                 "WHERE i.id = 4")
        assert rows == [("hammer", None)]

    def test_join_with_filter_on_both_sides(self, join_server):
        rows = q(join_server,
                 "SELECT i.name FROM items i "
                 "JOIN segments s ON i.segment = s.name "
                 "WHERE s.manager = 'alice' AND i.price > 1.0")
        assert sorted(r[0] for r in rows) == ["apple", "pear"]

    def test_three_way_join(self, join_server):
        join_server.execute_ddl(
            "CREATE TABLE managers (name VARCHAR(20) NOT NULL PRIMARY KEY, "
            "office VARCHAR(10))"
        )
        s = join_server.create_session()
        s.execute("INSERT INTO managers VALUES ('alice', 'NY')")
        rows = q(join_server,
                 "SELECT i.name, m.office FROM items i "
                 "JOIN segments s ON i.segment = s.name "
                 "JOIN managers m ON s.manager = m.name "
                 "WHERE i.id = 1")
        assert rows == [("apple", "NY")]

    def test_join_aggregate(self, join_server):
        rows = q(join_server,
                 "SELECT s.manager, COUNT(*) FROM items i "
                 "JOIN segments s ON i.segment = s.name GROUP BY s.manager")
        assert rows == [("alice", 3)]


class TestNullSemantics:
    @pytest.fixture
    def null_server(self, server):
        server.execute_ddl(
            "CREATE TABLE n (id INT NOT NULL PRIMARY KEY, v FLOAT)"
        )
        s = server.create_session()
        s.execute("INSERT INTO n VALUES (1, 5.0), (2, NULL), (3, 7.0)")
        return server

    def test_null_not_matched_by_comparison(self, null_server):
        rows = q(null_server, "SELECT id FROM n WHERE v > 0")
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_is_null(self, null_server):
        assert q(null_server, "SELECT id FROM n WHERE v IS NULL") == [(2,)]

    def test_aggregates_skip_nulls(self, null_server):
        rows = q(null_server, "SELECT COUNT(v), AVG(v) FROM n")
        assert rows == [(2, 6.0)]

    def test_null_sorts_first_ascending(self, null_server):
        rows = q(null_server, "SELECT id FROM n ORDER BY v ASC")
        assert rows[0] == (2,)

    def test_null_never_equi_joins(self, null_server):
        null_server.execute_ddl(
            "CREATE TABLE m (id INT NOT NULL PRIMARY KEY, v FLOAT)"
        )
        s = null_server.create_session()
        s.execute("INSERT INTO m VALUES (1, NULL)")
        rows = q(null_server,
                 "SELECT n.id FROM n JOIN m ON n.v = m.v")
        assert rows == []


class TestErrors:
    def test_unknown_table(self, items_server):
        session = items_server.create_session()
        with pytest.raises(EngineError):
            session.execute("SELECT x FROM missing")

    def test_unknown_column(self, items_server):
        session = items_server.create_session()
        with pytest.raises(EngineError):
            session.execute("SELECT missing_col FROM items")

    def test_failed_query_fires_rollback_event(self, items_server):
        events = []
        items_server.events.subscribe(
            "query.rollback", lambda e, p: events.append(p["query"]))
        session = items_server.create_session()
        with pytest.raises(EngineError):
            session.execute("SELECT missing_col FROM items")
        assert len(events) == 1
