"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (AgingSpec, AgingState, aggregate_function)
from repro.core.lat import LAT, LATDefinition
from repro.core.signatures import linearize_expr
from repro.engine.catalog import ColumnDef, TableSchema
from repro.engine.storage import Table
from repro.engine.types import SQLType, compare, sql_and, sql_not, sql_or
from repro.sim import SimClock

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          width=32)
small_ints = st.integers(min_value=-1_000_000, max_value=1_000_000)


class TestAggregateProperties:
    @given(st.lists(finite_floats, max_size=60))
    def test_count_equals_non_null_cardinality(self, values):
        func = aggregate_function("COUNT")
        state = func.new_state()
        for value in values:
            state = func.update(state, value)
        assert func.result(state) == len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_min_max_bound_all_values(self, values):
        low = aggregate_function("MIN")
        high = aggregate_function("MAX")
        s_low, s_high = low.new_state(), high.new_state()
        for value in values:
            s_low = low.update(s_low, value)
            s_high = high.update(s_high, value)
        assert low.result(s_low) == min(values)
        assert high.result(s_high) == max(values)

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_avg_between_min_and_max(self, values):
        func = aggregate_function("AVG")
        state = func.new_state()
        for value in values:
            state = func.update(state, value)
        result = func.result(state)
        assert min(values) - 1e-6 <= result <= max(values) + 1e-6

    @given(st.lists(finite_floats, max_size=40),
           st.lists(finite_floats, max_size=40))
    def test_combine_equals_sequential(self, left, right):
        """combine(update(a...), update(b...)) == update(a..., b...)."""
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV"):
            func = aggregate_function(name)
            s1, s2, s3 = (func.new_state(), func.new_state(),
                          func.new_state())
            for value in left:
                s1 = func.update(s1, value)
                s3 = func.update(s3, value)
            for value in right:
                s2 = func.update(s2, value)
                s3 = func.update(s3, value)
            combined = func.result(func.combine(s1, s2))
            sequential = func.result(s3)
            if combined is None or sequential is None:
                assert combined == sequential
            else:
                assert combined == pytest.approx(sequential,
                                                 rel=1e-5, abs=1e-6)

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        finite_floats), max_size=50).map(
            lambda items: sorted(items, key=lambda x: x[0])))
    def test_aging_storage_bound(self, timed_values):
        """Aging state never exceeds the paper's 2t/Δ storage bound."""
        spec = AgingSpec(window=10.0, delta=2.0)
        state = AgingState(aggregate_function("SUM"), spec)
        for timestamp, value in timed_values:
            state.update(value, timestamp)
            assert state.block_count <= spec.max_blocks

    @given(st.lists(st.floats(min_value=0, max_value=50, allow_nan=False),
                    min_size=1, max_size=50).map(sorted))
    def test_aging_count_matches_exact_window(self, timestamps):
        """Block aging never loses in-window values and only over-retains
        by at most one block width."""
        spec = AgingSpec(window=10.0, delta=1.0)
        state = AgingState(aggregate_function("COUNT"), spec)
        for timestamp in timestamps:
            state.update(1.0, timestamp)
        now = timestamps[-1]
        result = state.result(now)
        exact = sum(1 for t in timestamps if t > now - spec.window)
        loose = sum(1 for t in timestamps
                    if t > now - spec.window - spec.delta)
        assert exact <= result <= loose


class TestThreeValuedLogicProperties:
    tvl = st.sampled_from([True, False, None])

    @given(tvl, tvl)
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
        assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))

    @given(tvl, tvl)
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)

    @given(small_ints, small_ints)
    def test_compare_antisymmetric(self, a, b):
        assert compare(a, b) == -compare(b, a)

    @given(small_ints, small_ints, small_ints)
    def test_compare_transitive(self, a, b, c):
        if compare(a, b) <= 0 and compare(b, c) <= 0:
            assert compare(a, c) <= 0


class TestStorageProperties:
    @given(st.lists(st.tuples(small_ints, finite_floats),
                    unique_by=lambda r: r[0], max_size=60))
    def test_insert_then_lookup(self, rows):
        table = Table(TableSchema("p", [
            ColumnDef("k", SQLType.INTEGER, nullable=False),
            ColumnDef("v", SQLType.FLOAT),
        ], primary_key=["k"]))
        for key, value in rows:
            table.insert([key, value])
        index = table.indexes["pk_p"]
        for key, value in rows:
            found = index.lookup((key,))
            assert len(found) == 1
            assert table.get(next(iter(found)))[1] == pytest.approx(
                value, rel=1e-6) if value == value else True

    @given(st.lists(small_ints, unique=True, min_size=1, max_size=60))
    def test_range_scan_sorted_and_complete(self, keys):
        table = Table(TableSchema("p", [
            ColumnDef("k", SQLType.INTEGER, nullable=False),
        ], primary_key=["k"]))
        for key in keys:
            table.insert([key])
        index = table.indexes["pk_p"]
        values = [table.get(r)[0] for r in index.range(None, None)]
        assert values == sorted(keys)

    @given(st.lists(small_ints, unique=True, min_size=1, max_size=40),
           small_ints, small_ints)
    def test_bounded_range_matches_filter(self, keys, low, high):
        if low > high:
            low, high = high, low
        table = Table(TableSchema("p", [
            ColumnDef("k", SQLType.INTEGER, nullable=False),
        ], primary_key=["k"]))
        for key in keys:
            table.insert([key])
        index = table.indexes["pk_p"]
        got = [table.get(r)[0] for r in index.range((low,), (high,))]
        assert got == sorted(k for k in keys if low <= k <= high)

    @given(st.lists(st.tuples(small_ints, finite_floats),
                    unique_by=lambda r: r[0], min_size=1, max_size=30),
           st.data())
    def test_delete_restore_roundtrip(self, rows, data):
        table = Table(TableSchema("p", [
            ColumnDef("k", SQLType.INTEGER, nullable=False),
            ColumnDef("v", SQLType.FLOAT),
        ], primary_key=["k"]))
        rowids = [table.insert([k, v]) for k, v in rows]
        victim = data.draw(st.sampled_from(rowids))
        image = table.delete(victim)
        table.restore(victim, image)
        assert table.get(victim) == image
        assert table.row_count == len(rows)


class TestLATProperties:
    @settings(deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                              st.floats(min_value=0, max_value=1e6,
                                        allow_nan=False)),
                    max_size=80))
    def test_lat_matches_group_by(self, records):
        """LAT contents equal a straight GROUP BY over the inserts."""
        lat = LAT(LATDefinition(
            name="P",
            grouping=["Query.ID AS G"],
            aggregations=["COUNT(Query.Duration) AS N",
                          "SUM(Query.Duration) AS S"],
        ), SimClock())
        expected: dict[int, list[float]] = {}
        for group, value in records:
            lat.insert({"id": group, "duration": value})
            expected.setdefault(group, []).append(value)
        assert len(lat) == len(expected)
        for group, values in expected.items():
            row = lat.lookup((group,))
            assert row["N"] == len(values)
            assert row["S"] == pytest.approx(sum(values), rel=1e-9)

    @settings(deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=60),
           st.integers(min_value=1, max_value=10))
    def test_topk_lat_keeps_k_largest(self, durations, k):
        """The size-limited LAT retains exactly the top-k by ordering."""
        lat = LAT(LATDefinition(
            name="P",
            grouping=["Query.ID AS G"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_rows=k,
        ), SimClock())
        for i, duration in enumerate(durations):
            lat.insert({"id": i, "duration": duration})
        kept = sorted((row["D"] for row in lat.rows()), reverse=True)
        expected = sorted(durations, reverse=True)[:k]
        assert kept == pytest.approx(expected)

    @settings(deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                    max_size=60), st.integers(min_value=1, max_value=5))
    def test_size_limit_invariant(self, groups, max_rows):
        lat = LAT(LATDefinition(
            name="P",
            grouping=["Query.ID AS G"],
            aggregations=["COUNT(Query.Duration) AS N"],
            ordering=["N DESC"],
            max_rows=max_rows,
        ), SimClock())
        for group in groups:
            lat.insert({"id": group, "duration": 1.0})
            assert len(lat) <= max_rows


class TestSignatureProperties:
    _exprs = st.recursive(
        st.one_of(
            st.integers(-100, 100).map(
                lambda v: f"{v}" if v >= 0 else f"({v})"),
            st.sampled_from(["a", "b", "t.c"]),
        ),
        lambda inner: st.tuples(
            inner, st.sampled_from(["+", "*", "=", "<"]), inner
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        max_leaves=8,
    )

    @given(_exprs, st.integers(-100, 100), st.integers(-100, 100))
    @settings(deadline=None)
    def test_constant_values_never_affect_signature(self, template, c1, c2):
        from repro.engine.sqlparse.parser import parse_statement

        def sig_of(constant):
            sql = f"SELECT a FROM t WHERE {template} AND a = {constant}"
            return linearize_expr(parse_statement(sql).where)

        assert sig_of(c1) == sig_of(c2)
