"""Tests for SQL value types, coercion, and three-valued logic."""

import pytest

from repro.engine.types import (SQLType, arithmetic, coerce, compare,
                                infer_type, is_numeric, sql_and, sql_equal,
                                sql_not, sql_or)
from repro.errors import TypeMismatchError


class TestCoerce:
    def test_null_passes_through(self):
        for sql_type in SQLType:
            assert coerce(None, sql_type) is None

    def test_integer(self):
        assert coerce(5, SQLType.INTEGER) == 5
        assert coerce(5.0, SQLType.INTEGER) == 5
        assert coerce(True, SQLType.INTEGER) == 1

    def test_integer_rejects_fraction(self):
        with pytest.raises(TypeMismatchError):
            coerce(5.5, SQLType.INTEGER)

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("5", SQLType.INTEGER)

    def test_float(self):
        assert coerce(5, SQLType.FLOAT) == 5.0
        assert isinstance(coerce(5, SQLType.FLOAT), float)
        assert coerce(2.5, SQLType.FLOAT) == 2.5

    def test_string(self):
        assert coerce("abc", SQLType.STRING) == "abc"
        with pytest.raises(TypeMismatchError):
            coerce(5, SQLType.STRING)

    def test_datetime_accepts_numbers(self):
        assert coerce(12.5, SQLType.DATETIME) == 12.5
        assert coerce(3, SQLType.DATETIME) == 3.0

    def test_boolean(self):
        assert coerce(True, SQLType.BOOLEAN) is True
        assert coerce(0, SQLType.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            coerce(2, SQLType.BOOLEAN)

    def test_blob_encodes_strings(self):
        assert coerce(b"\x01", SQLType.BLOB) == b"\x01"
        assert coerce("hi", SQLType.BLOB) == b"hi"


class TestInference:
    def test_infer_basic(self):
        assert infer_type(1) is SQLType.INTEGER
        assert infer_type(1.5) is SQLType.FLOAT
        assert infer_type("x") is SQLType.STRING
        assert infer_type(True) is SQLType.BOOLEAN
        assert infer_type(b"") is SQLType.BLOB

    def test_is_numeric(self):
        assert is_numeric(SQLType.INTEGER)
        assert is_numeric(SQLType.FLOAT)
        assert not is_numeric(SQLType.STRING)


class TestCompare:
    def test_numbers(self):
        assert compare(1, 2) == -1
        assert compare(2, 2) == 0
        assert compare(3, 2) == 1
        assert compare(1, 1.5) == -1

    def test_strings(self):
        assert compare("a", "b") == -1
        assert compare("b", "b") == 0

    def test_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None
        assert compare(None, None) is None

    def test_mixed_types_raise(self):
        with pytest.raises(TypeMismatchError):
            compare(1, "a")

    def test_booleans_compare_as_integers(self):
        assert compare(True, 1) == 0
        assert compare(False, True) == -1

    def test_sql_equal(self):
        assert sql_equal(1, 1) is True
        assert sql_equal(1, 2) is False
        assert sql_equal(None, 1) is None


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None


class TestArithmetic:
    def test_basic_ops(self):
        assert arithmetic("+", 2, 3) == 5
        assert arithmetic("-", 2, 3) == -1
        assert arithmetic("*", 2, 3) == 6
        assert arithmetic("/", 6, 3) == 2
        assert arithmetic("/", 7, 2) == 3.5
        assert arithmetic("%", 7, 2) == 1

    def test_null_propagates(self):
        assert arithmetic("+", None, 3) is None
        assert arithmetic("*", 3, None) is None

    def test_divide_by_zero_is_null(self):
        assert arithmetic("/", 1, 0) is None
        assert arithmetic("%", 1, 0) is None

    def test_string_concatenation_with_plus(self):
        assert arithmetic("+", "a", "b") == "ab"

    def test_string_arithmetic_rejected(self):
        with pytest.raises(TypeMismatchError):
            arithmetic("*", "a", 2)
