"""DML execution, transactions, and undo tests."""

import pytest

from repro.errors import ConstraintError, EngineError, TransactionError


def q(server, sql, params=None):
    session = server.create_session()
    result = session.execute(sql, params)
    server.close_session(session)
    return result


class TestInsert:
    def test_insert_reports_rows_affected(self, items_server):
        result = q(items_server,
                   "INSERT INTO items VALUES (7, 'saw', 12.0, 2, 'tools')")
        assert result.rows_affected == 1

    def test_multi_row_insert(self, items_server):
        result = q(items_server,
                   "INSERT INTO items (id, name) VALUES (8, 'x'), (9, 'y')")
        assert result.rows_affected == 2
        rows = q(items_server, "SELECT price FROM items WHERE id = 8").rows
        assert rows == [(None,)]

    def test_duplicate_pk_rolls_back_statement(self, items_server):
        session = items_server.create_session()
        with pytest.raises(ConstraintError):
            session.execute("INSERT INTO items (id, name) VALUES (1, 'dup')")
        count = q(items_server, "SELECT COUNT(*) FROM items").rows[0][0]
        assert count == 6

    def test_insert_with_parameters(self, items_server):
        q(items_server,
          "INSERT INTO items (id, name, price) VALUES (@i, @n, @p)",
          {"i": 20, "n": "param", "p": 3.5})
        rows = q(items_server,
                 "SELECT name, price FROM items WHERE id = 20").rows
        assert rows == [("param", 3.5)]


class TestUpdate:
    def test_point_update(self, items_server):
        result = q(items_server, "UPDATE items SET qty = 99 WHERE id = 1")
        assert result.rows_affected == 1
        assert q(items_server,
                 "SELECT qty FROM items WHERE id = 1").rows == [(99,)]

    def test_update_expression_references_old_value(self, items_server):
        q(items_server, "UPDATE items SET qty = qty + 1, price = price * 2 "
                        "WHERE id = 2")
        rows = q(items_server,
                 "SELECT qty, price FROM items WHERE id = 2").rows
        assert rows == [(6, 4.0)]

    def test_update_many_rows(self, items_server):
        result = q(items_server,
                   "UPDATE items SET qty = 0 WHERE segment = 'tools'")
        assert result.rows_affected == 3

    def test_update_no_match(self, items_server):
        assert q(items_server,
                 "UPDATE items SET qty = 1 WHERE id = 999").rows_affected == 0

    def test_update_pk_maintains_index(self, items_server):
        q(items_server, "UPDATE items SET id = 100 WHERE id = 1")
        assert q(items_server,
                 "SELECT name FROM items WHERE id = 100").rows == [("apple",)]
        assert q(items_server,
                 "SELECT name FROM items WHERE id = 1").rows == []


class TestDelete:
    def test_point_delete(self, items_server):
        assert q(items_server,
                 "DELETE FROM items WHERE id = 6").rows_affected == 1
        assert q(items_server,
                 "SELECT COUNT(*) FROM items").rows == [(5,)]

    def test_delete_by_predicate(self, items_server):
        assert q(items_server,
                 "DELETE FROM items WHERE price < 1.0").rows_affected == 2

    def test_delete_all(self, items_server):
        assert q(items_server, "DELETE FROM items").rows_affected == 6


class TestTransactions:
    def test_commit_makes_changes_durable(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("UPDATE items SET qty = 1 WHERE id = 1")
        session.execute("COMMIT")
        assert q(items_server,
                 "SELECT qty FROM items WHERE id = 1").rows == [(1,)]

    def test_rollback_undoes_update(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("UPDATE items SET qty = 1 WHERE id = 1")
        session.execute("ROLLBACK")
        assert q(items_server,
                 "SELECT qty FROM items WHERE id = 1").rows == [(10,)]

    def test_rollback_undoes_insert_and_delete(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO items (id, name) VALUES (50, 'temp')")
        session.execute("DELETE FROM items WHERE id = 2")
        session.execute("ROLLBACK")
        assert q(items_server,
                 "SELECT COUNT(*) FROM items").rows == [(6,)]
        assert q(items_server,
                 "SELECT name FROM items WHERE id = 2").rows == [("pear",)]

    def test_rollback_restores_indexes(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("UPDATE items SET id = 77 WHERE id = 3")
        session.execute("ROLLBACK")
        assert q(items_server,
                 "SELECT name FROM items WHERE id = 3").rows == [("plum",)]
        assert q(items_server,
                 "SELECT name FROM items WHERE id = 77").rows == []

    def test_multi_statement_atomicity(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("UPDATE items SET qty = qty - 5 WHERE id = 1")
        session.execute("UPDATE items SET qty = qty + 5 WHERE id = 2")
        session.execute("ROLLBACK")
        rows = q(items_server,
                 "SELECT qty FROM items WHERE id IN (1, 2) ORDER BY id").rows
        assert rows == [(10,), (5,)]

    def test_commit_without_begin_fails(self, items_server):
        session = items_server.create_session()
        result = session.execute("SELECT id FROM items WHERE id = 1")
        assert result.ok
        commit = session.execute("COMMIT")
        assert commit.error is not None

    def test_nested_begin_rejected(self, items_server):
        session = items_server.create_session()
        session.execute("BEGIN")
        result = session.execute("BEGIN")
        assert result.error is not None

    def test_autocommit_releases_locks(self, items_server):
        q(items_server, "UPDATE items SET qty = 1 WHERE id = 1")
        # a second session can immediately write the same row
        result = q(items_server, "UPDATE items SET qty = 2 WHERE id = 1")
        assert result.rows_affected == 1

    def test_txn_commit_event_carries_statements(self, items_server):
        captured = []
        items_server.events.subscribe(
            "txn.commit", lambda e, p: captured.append(p["statements"]))
        session = items_server.create_session()
        session.execute("BEGIN")
        session.execute("UPDATE items SET qty = 1 WHERE id = 1")
        session.execute("SELECT id FROM items WHERE id = 1")
        session.execute("COMMIT")
        assert len(captured[-1]) == 2


class TestDDL:
    def test_create_table_via_session(self, server):
        session = server.create_session()
        session.execute("CREATE TABLE fresh (a INT NOT NULL PRIMARY KEY, "
                        "b FLOAT)")
        session.execute("INSERT INTO fresh VALUES (1, 2.0)")
        assert session.execute("SELECT b FROM fresh").rows == [(2.0,)]

    def test_create_index_enables_seek(self, items_server):
        items_server.execute_ddl(
            "CREATE INDEX ix_price ON items (price)")
        rows = q(items_server,
                 "SELECT name FROM items WHERE price = 9.5").rows
        assert rows == [("hammer",)]

    def test_ddl_invalidates_plan_cache(self, items_server):
        q(items_server, "SELECT id FROM items WHERE id = 1")
        assert len(items_server.plan_cache) > 0
        items_server.execute_ddl("CREATE INDEX ix_q ON items (qty)")
        assert len(items_server.plan_cache) == 0
