"""Tests for the continuous stream-query subsystem.

Covers the declarative language (parse + bind errors), the engine's
event path (WHERE filtering, lazy window flush, HAVING / anomaly
alerts), the three sinks (alert ring, sink LAT, ``sqlcm.stream_alert``
meta-event consumed by ECA rules), and the failure semantics (isolation
at the ``stream.eval`` / ``stream.window`` fault sites, boundary-lost
not-retried, per-query quarantine).
"""

from __future__ import annotations

import itertools

import pytest

from repro import (FaultInjector, LATDefinition, QuarantinePolicy, Rule,
                   SendMailAction, SQLCM)
from repro.core.actions import CallbackAction
from repro.core.resilience import RuleHealthRegistry
from repro.engine.query import QueryContext
from repro.errors import StreamError, StreamSyntaxError
from repro.stream import (DeviationSpec, STREAM_FAULT_SITES, TopKSpec,
                          parse_stream_query)

_IDS = itertools.count(1)


def commit(server, t, duration, *, sig=None, user="u", app="tests",
           text="SELECT 1", qtype="SELECT", rows=0):
    """Advance the clock to ``t`` and publish one synthetic query.commit."""
    server.clock.advance_to(t)
    qctx = QueryContext(
        query_id=next(_IDS), session_id=1, text=text, user=user,
        application=app, query_type=qtype, start_time=t - duration,
        end_time=t, logical_signature=sig, rows_affected=rows)
    server.events.publish("query.commit", {"query": qctx})
    return qctx


# ---------------------------------------------------------------------------
# language
# ---------------------------------------------------------------------------

class TestLanguage:
    def test_full_statement_parses_and_binds(self):
        spec = parse_stream_query(
            "STREAM slow_apps FROM Query.Commit "
            "WHERE Query.Duration > 0.001 "
            "GROUP BY Query.Application AS App "
            "WINDOW SLIDING(10, 2) "
            "AGG AVG(Query.Duration) AS Avg_D, COUNT(*) AS N "
            "HAVING Window.Avg_D > 0.05 AND Window.N >= 3 "
            "ANOMALY DEVIATION(Avg_D, 3, 12)")
        assert spec.name == "slow_apps"
        assert spec.event_spec == "Query.Commit"
        assert spec.engine_event == "query.commit"
        assert spec.where is not None and spec.where.classes == {"query"}
        assert [(g.attribute, g.alias) for g in spec.groups] == \
            [("Application", "App")]
        assert (spec.window.kind, spec.window.length, spec.window.hop) == \
            ("sliding", 10.0, 2.0)
        assert [(a.func, a.attribute, a.alias) for a in spec.aggs] == \
            [("AVG", "Duration", "Avg_D"), ("COUNT", None, "N")]
        assert spec.having is not None
        assert isinstance(spec.anomaly, DeviationSpec)
        assert spec.anomaly.column == "Avg_D"
        assert spec.anomaly.k == 3.0 and spec.anomaly.history == 12
        assert spec.output_columns == ("App", "Avg_D", "N")

    def test_default_aliases_and_name_parameter(self):
        spec = parse_stream_query(
            "FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG AVG(Query.Duration), COUNT(*)", name="t1")
        assert spec.name == "t1"
        assert spec.output_columns == ("Avg_Duration", "Count")
        assert spec.groups == ()

    def test_window_kinds(self):
        sliding = parse_stream_query(
            "STREAM s FROM Query.Commit WINDOW SLIDING(10) AGG COUNT(*)")
        assert sliding.window.hop == 1.0  # default: ten panes per window
        hopping = parse_stream_query(
            "STREAM h FROM Query.Commit WINDOW HOPPING(6, 2) AGG COUNT(*)")
        assert hopping.window.panes_per_window == 3
        topk = parse_stream_query(
            "STREAM k FROM Query.Commit GROUP BY Query.User "
            "WINDOW TUMBLING(5) AGG SUM(Query.Duration) AS Total "
            "ANOMALY TOPK(Total, 2)")
        assert isinstance(topk.anomaly, TopKSpec)
        assert topk.anomaly.k == 2

    @pytest.mark.parametrize("text,fragment", [
        ("WINDOW TUMBLING(5) AGG COUNT(*)", "must start with"),
        ("STREAM s FROM Query.Commit AGG COUNT(*)", "WINDOW clause"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5)", "AGG clause"),
        ("STREAM s AGG COUNT(*) FROM Query.Commit WINDOW TUMBLING(5)",
         "must start with"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
         "AGG COUNT(*) HAVING Window.Count > 0 GROUP BY Query.User",
         "out of order"),
        ("STREAM s FROM Query.Commit FROM Query.Commit "
         "WINDOW TUMBLING(5) AGG COUNT(*)", "duplicate FROM"),
        ("STREAM s FROM Query.Commit GROUP Query.User "
         "WINDOW TUMBLING(5) AGG COUNT(*)", "expected BY"),
        ("STREAM s FROM Query.Commit WINDOW SIDEWAYS(5) AGG COUNT(*)",
         "unknown window kind"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5, 2) AGG COUNT(*)",
         "single length"),
        ("STREAM s FROM Query.Commit WINDOW HOPPING(6) AGG COUNT(*)",
         "explicit hop"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) AGG MEDIAN(*)",
         "unknown aggregate"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
         "AGG SUM(*)", "is not defined"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
         "AGG COUNT(*) AS N, SUM(Query.Duration) AS N", "duplicate output"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) AGG COUNT(*) AS N "
         "ANOMALY DEVIATION(Missing, 3)", "not an output column"),
        ("STREAM s FROM Query.Commit WINDOW TUMBLING(5) AGG COUNT(*) AS N "
         "ANOMALY SPIKES(N, 3)", "unknown anomaly operator"),
        ("FROM Query.Commit WINDOW TUMBLING(5) AGG COUNT(*)",
         "needs a name"),
    ])
    def test_syntax_errors(self, text, fragment):
        with pytest.raises(StreamSyntaxError, match=fragment):
            parse_stream_query(text)

    def test_where_may_only_reference_the_from_class(self):
        with pytest.raises(StreamSyntaxError, match="only reference Query"):
            parse_stream_query(
                "STREAM s FROM Query.Commit "
                "WHERE Transaction.Duration > 1 "
                "WINDOW TUMBLING(5) AGG COUNT(*)")

    def test_group_and_agg_attributes_are_schema_checked(self):
        with pytest.raises(Exception):  # SchemaError from attribute lookup
            parse_stream_query(
                "STREAM s FROM Query.Commit GROUP BY Query.Nonsense "
                "WINDOW TUMBLING(5) AGG COUNT(*)")

    def test_having_binds_against_output_columns(self):
        # Window.<col> references survive clause splitting (WINDOW is also
        # a clause word) and bind case-insensitively
        spec = parse_stream_query(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N HAVING Window.n >= 2")
        assert spec.having.evaluate({}, {"window": {"n": 3}})
        assert not spec.having.evaluate({}, {"window": {"n": 1}})


# ---------------------------------------------------------------------------
# engine: registration + event path
# ---------------------------------------------------------------------------

class TestEngine:
    def test_register_remove_and_duplicates(self, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s1 FROM Query.Commit WINDOW TUMBLING(5) AGG COUNT(*)")
        assert streams.query("S1") is query  # case-insensitive lookup
        assert sqlcm.has_streams
        with pytest.raises(StreamError, match="already exists"):
            streams.register(
                "STREAM s1 FROM Query.Commit WINDOW TUMBLING(5) "
                "AGG COUNT(*)")
        streams.remove("s1")
        with pytest.raises(StreamError, match="unknown stream query"):
            streams.query("s1")

    def test_sink_lat_must_cover_streamalert(self, sqlcm):
        sqlcm.create_lat(LATDefinition(
            name="Q_LAT", monitored_class="Query",
            grouping=["Query.User AS U"],
            aggregations=["COUNT(Query.ID) AS N"]))
        with pytest.raises(StreamError, match="StreamAlert"):
            sqlcm.stream_engine().register(
                "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
                "AGG COUNT(*)", sink_lat="Q_LAT")

    def test_where_filters_and_counts(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WHERE Query.Duration > 0.1 "
            "WINDOW TUMBLING(10) AGG COUNT(*) AS N")
        commit(server, 1.0, 0.01)
        commit(server, 2.0, 0.5)
        commit(server, 3.0, 0.02)
        assert query.events_seen == 3
        assert query.events_ingested == 1
        assert query.where_rejected == 2

    def test_tumbling_window_emits_correct_aggregates(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(10) "
            "AGG AVG(Query.Duration) AS Avg_D, COUNT(*) AS N")
        for i in range(4):
            commit(server, 1.0 + i, 0.2, user="alice")
        commit(server, 5.0, 0.6, user="bob")
        # nothing emits until the clock passes the window end
        assert query.windows_emitted == 0
        server.clock.advance_to(11.0)
        streams.flush()
        assert query.windows_emitted == 1
        rows = {a["row"]["U"]: a["row"] for a in query.alerts}
        assert rows["alice"]["N"] == 4
        assert rows["alice"]["Avg_D"] == pytest.approx(0.2)
        assert rows["bob"]["N"] == 1
        assert all(a["kind"] == "window" for a in query.alerts)
        assert all(a["window_start"] == 0.0 and a["window_end"] == 10.0
                   for a in query.alerts)

    def test_event_arrival_flushes_due_windows_first(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N")
        commit(server, 1.0, 0.01)
        # this event is at t=12: the [0,5) window closes before it lands
        commit(server, 12.0, 0.01)
        assert query.windows_emitted == 1
        [alert] = query.alerts
        assert alert["row"]["N"] == 1 and alert["window_end"] == 5.0

    def test_having_gates_alerts(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(10) AGG AVG(Query.Duration) AS Avg_D "
            "HAVING Window.Avg_D > 0.1")
        for i in range(3):
            commit(server, 1.0 + i, 0.01, user="fast")
            commit(server, 1.2 + i, 0.5, user="slow")
        server.clock.advance_to(10.0)
        streams.flush()
        assert [a["row"]["U"] for a in query.alerts] == ["slow"]
        assert query.alerts[0]["kind"] == "having"
        assert query.alerts[0]["value"] == pytest.approx(0.5)

    def test_sliding_windows_overlap(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW SLIDING(4, 2) "
            "AGG COUNT(*) AS N")
        commit(server, 1.0, 0.01)
        commit(server, 3.0, 0.01)
        server.clock.advance_to(8.0)
        streams.flush()
        # overlapping boundaries every 2s; [0,4) sees both events
        counts = [(a["window_start"], a["window_end"], a["row"]["N"])
                  for a in query.alerts]
        assert counts == [(-2.0, 2.0, 1), (0.0, 4.0, 2), (2.0, 6.0, 1)]

    def test_disabled_query_ignores_events(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) AGG COUNT(*)")
        streams.enable("s", False)
        commit(server, 1.0, 0.01)
        assert query.events_ingested == 0
        streams.enable("s")
        commit(server, 2.0, 0.01)
        assert query.events_ingested == 1

    def test_real_query_execution_feeds_streams(self, items_server):
        sqlcm = SQLCM(items_server)
        query = sqlcm.stream_engine().register(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(1) AGG COUNT(*) AS N, MAX(Query.Duration)")
        session = items_server.create_session(user="app")
        for __ in range(3):
            result = session.execute("SELECT price FROM items WHERE id = 1")
            assert result.error is None
        items_server.clock.advance(2.0)
        sqlcm.stream_engine().flush()
        assert query.events_ingested == 3
        assert query.windows_emitted >= 1
        total = sum(a["row"]["N"] for a in query.alerts)
        assert total == 3

    def test_stream_grouping_on_signature_forces_signatures(
            self, items_server):
        sqlcm = SQLCM(items_server)
        assert not sqlcm.signatures_needed
        query = sqlcm.stream_engine().register(
            "STREAM s FROM Query.Commit "
            "GROUP BY Query.Logical_Signature AS Sig "
            "WINDOW TUMBLING(1) AGG COUNT(*) AS N")
        assert sqlcm.signatures_needed
        session = items_server.create_session()
        session.execute("SELECT price FROM items WHERE id = 2")
        items_server.clock.advance(2.0)
        sqlcm.stream_engine().flush()
        [alert] = query.alerts
        assert isinstance(alert["key"][0], bytes)  # a real signature

    def test_monitor_cost_is_charged(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        streams.register(
            "STREAM s FROM Query.Commit WHERE Query.Duration >= 0 "
            "WINDOW TUMBLING(5) AGG COUNT(*) AS N")
        server.take_monitor_cost()
        commit(server, 1.0, 0.01)
        server.clock.advance_to(6.0)
        streams.flush()
        assert server.take_monitor_cost() > 0.0


# ---------------------------------------------------------------------------
# anomaly operators in the pipeline
# ---------------------------------------------------------------------------

class TestAnomalies:
    def test_deviation_flags_shifted_window(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(2) "
            "AGG AVG(Query.Duration) AS Avg_D "
            "ANOMALY DEVIATION(Avg_D, 3, 8)")
        t = 0.5
        for __ in range(10):  # quiet baseline: one window per 2s
            commit(server, t, 0.01)
            t += 2.0
        commit(server, t, 0.5)  # the spike
        t += 2.0
        server.clock.advance_to(t + 4.0)
        streams.flush()
        flagged = [a for a in query.alerts if a["kind"] == "deviation"]
        assert len(flagged) == 1
        assert flagged[0]["value"] == pytest.approx(0.5)
        assert flagged[0]["baseline"] == pytest.approx(0.01)
        assert flagged[0]["sigma"] is not None

    def test_topk_ranks_window_rows(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit GROUP BY Query.User AS U "
            "WINDOW TUMBLING(10) AGG SUM(Query.Duration) AS Total "
            "ANOMALY TOPK(Total, 2)")
        commit(server, 1.0, 0.1, user="low")
        commit(server, 2.0, 0.5, user="mid")
        commit(server, 3.0, 0.9, user="high")
        server.clock.advance_to(11.0)
        streams.flush()
        ranked = [(a["rank"], a["row"]["U"]) for a in query.alerts]
        assert ranked == [(1, "high"), (2, "mid")]
        assert all(a["kind"] == "topk" for a in query.alerts)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------

class TestSinks:
    def test_alert_ring_is_bounded(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(1) "
            "AGG COUNT(*) AS N", max_alerts=3)
        for i in range(8):
            commit(server, 0.5 + i, 0.01)
        server.clock.advance_to(10.0)
        streams.flush()
        assert query.alert_count == 8
        assert len(query.alerts) == 3  # ring kept only the newest

    def test_sink_lat_receives_alerts(self, server, sqlcm):
        sqlcm.create_lat(LATDefinition(
            name="Alert_LAT", monitored_class="StreamAlert",
            grouping=["StreamAlert.Stream_Name AS Stream"],
            aggregations=["COUNT(StreamAlert.Kind) AS N",
                          "LAST(StreamAlert.Value) AS Last_Value"],
            ordering=["N DESC"], max_rows=10))
        streams = sqlcm.stream_engine()
        streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N", sink_lat="Alert_LAT")
        commit(server, 1.0, 0.01)
        commit(server, 2.0, 0.01)
        server.clock.advance_to(6.0)
        streams.flush()
        [row] = sqlcm.lat("Alert_LAT").rows()
        assert row["Stream"] == "s"
        assert row["N"] == 1
        assert row["Last_Value"] == 2  # COUNT of the window

    def test_drop_lat_refuses_active_sink(self, server, sqlcm):
        """Regression: ``drop_lat`` guarded rule-referenced LATs but let a
        stream query's sink LAT go, silently stopping alert sinking."""
        from repro.errors import LATError
        sqlcm.create_lat(LATDefinition(
            name="Sink_LAT", monitored_class="StreamAlert",
            grouping=["StreamAlert.Stream_Name AS Stream"],
            aggregations=["COUNT(StreamAlert.Kind) AS N"]))
        streams = sqlcm.stream_engine()
        streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N", sink_lat="Sink_LAT")
        with pytest.raises(LATError, match="alert sink"):
            sqlcm.drop_lat("Sink_LAT")
        # removing the stream query releases the LAT
        streams.remove("s")
        sqlcm.drop_lat("Sink_LAT")
        assert not sqlcm.has_lat("Sink_LAT")

    def test_stream_alert_closes_the_loop_through_eca_rules(
            self, server, sqlcm):
        """Acceptance: a sliding-window stream query with HAVING fires a
        ``sqlcm.stream_alert`` that an ordinary ECA rule consumes."""
        streams = sqlcm.stream_engine()
        streams.register(
            "STREAM slow_users FROM Query.Commit "
            "GROUP BY Query.User AS U "
            "WINDOW SLIDING(10, 5) "
            "AGG AVG(Query.Duration) AS Avg_D, COUNT(*) AS N "
            "HAVING Window.Avg_D > 0.1 AND Window.N >= 2")
        seen = []
        sqlcm.add_rule(Rule(
            name="page_dba", event="StreamAlert.Alert",
            condition="StreamAlert.Value > 0.1",
            actions=[
                CallbackAction(lambda s, c: seen.append(
                    (c["streamalert"].get("Stream_Name"),
                     c["streamalert"].get("Group_Key")))),
                SendMailAction(
                    "stream {StreamAlert.Stream_Name} flagged "
                    "{StreamAlert.Group_Key}", "dba@example.com"),
            ]))
        for i in range(4):
            commit(server, 1.0 + i, 0.01, user="fast")
            commit(server, 1.3 + i, 0.4, user="slow")
        server.clock.advance_to(12.0)
        streams.flush()
        assert seen and all(s == ("slow_users", "slow") for s in seen)
        assert len(sqlcm.outbox) == len(seen)
        assert "slow_users" in sqlcm.outbox[0].body
        assert "slow" in sqlcm.outbox[0].body


# ---------------------------------------------------------------------------
# failure semantics
# ---------------------------------------------------------------------------

class TestFaults:
    def test_fault_sites_are_registered(self, sqlcm):
        sqlcm.stream_engine()
        injector = FaultInjector()
        for site in STREAM_FAULT_SITES:
            injector.fail_next(site, count=0)  # unknown sites would raise

    def test_eval_fault_drops_one_event_not_the_stream(self, items_server):
        sqlcm = SQLCM(items_server)
        query = sqlcm.stream_engine().register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N")
        injector = FaultInjector()
        injector.fail_next("stream.eval", count=1)
        sqlcm.set_fault_injector(injector)
        session = items_server.create_session()
        # the faulted evaluation never surfaces on the monitored query
        result = session.execute("SELECT price FROM items WHERE id = 1")
        assert result.error is None
        assert query.events_ingested == 0
        assert query.errors == 1
        assert "FaultInjected" in query.last_error
        # the next event flows normally
        session.execute("SELECT price FROM items WHERE id = 1")
        assert query.events_ingested == 1

    def test_window_fault_loses_the_boundary_not_the_stream(
            self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(2) "
            "AGG COUNT(*) AS N")
        injector = FaultInjector()
        sqlcm.set_fault_injector(injector)
        commit(server, 1.0, 0.01)
        injector.fail_next("stream.window", count=1)
        server.clock.advance_to(3.0)
        streams.flush()  # poisoned boundary: lost, not retried
        assert query.windows_emitted == 0
        assert query.errors == 1
        commit(server, 3.5, 0.01)
        server.clock.advance_to(5.0)
        streams.flush()
        assert query.windows_emitted == 1  # [2,4) emitted normally
        [alert] = query.alerts
        assert alert["window_start"] == 2.0

    def test_repeated_faults_quarantine_the_query(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        streams.health = RuleHealthRegistry(QuarantinePolicy(
            failure_threshold=2, window=60.0, cooldown=1000.0))
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N")
        injector = FaultInjector()
        injector.fail_next("stream.eval", count=2)
        sqlcm.set_fault_injector(injector)
        commit(server, 1.0, 0.01)
        commit(server, 1.5, 0.01)
        assert streams.quarantined_queries() == ["s"]
        # quarantined: events are ignored, no further errors accrue
        commit(server, 2.0, 0.01)
        assert query.events_ingested == 0
        assert query.errors == 2
        streams.release_quarantine("s")
        commit(server, 2.5, 0.01)
        assert query.events_ingested == 1

    def test_describe_exposes_health(self, server, sqlcm):
        streams = sqlcm.stream_engine()
        query = streams.register(
            "STREAM s FROM Query.Commit WINDOW TUMBLING(5) "
            "AGG COUNT(*) AS N")
        commit(server, 1.0, 0.01)
        info = query.describe()
        assert info["name"] == "s"
        assert info["event"] == "Query.Commit"
        assert info["window"] == "tumbling(5/5)"
        assert info["ingested"] == 1
        assert info["errors"] == 0
