"""Tests for the rule-condition language (paper Section 5.2)."""

import pytest

from repro.core.condition import bind_condition, parse_condition
from repro.core.objects import MonitoredObject
from repro.core.schema import SCHEMA
from repro.errors import ConditionSyntaxError, SchemaError


def _query_obj(**attrs):
    cls = SCHEMA.monitored_class("Query")
    extra = {k.lower(): v for k, v in attrs.items()}
    return MonitoredObject(cls, {}, extra)


def _bind(text, lats=None, columns=None):
    lats = lats or set()
    columns = columns or {}
    return bind_condition(text, SCHEMA, lats,
                          lambda name: columns.get(name, set()))


def _eval(text, context=None, lat_rows=None, lats=None, columns=None):
    compiled = _bind(text, lats, columns)
    return compiled.evaluate(context or {}, lat_rows or {})


class TestParsing:
    def test_simple_comparison(self):
        tree = parse_condition("Query.Duration > 100")
        assert tree.op == ">"

    def test_precedence_and_or(self):
        tree = parse_condition("Query.A = 1 OR Query.B = 2 AND Query.C = 3")
        assert tree.op == "OR"
        assert tree.right.op == "AND"

    def test_arithmetic_precedence(self):
        tree = parse_condition("Query.A + 2 * 3 > 1")
        assert tree.left.op == "+"
        assert tree.left.right.op == "*"

    def test_parentheses(self):
        tree = parse_condition("(Query.A + 2) * 3 > 1")
        assert tree.left.op == "*"

    def test_string_literal(self):
        tree = parse_condition("Query.User = 'o''brien'")
        assert tree.right.value == "o'brien"

    def test_bare_name_rejected(self):
        with pytest.raises(ConditionSyntaxError):
            parse_condition("Duration > 5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ConditionSyntaxError):
            parse_condition("Query.A > 5 extra")

    def test_bad_character_rejected(self):
        with pytest.raises(ConditionSyntaxError):
            parse_condition("Query.A > #")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ConditionSyntaxError):
            parse_condition("(Query.A > 5")


class TestBinding:
    def test_classes_collected(self):
        compiled = _bind("Query.Duration > 5 AND Blocker.Wait_Time > 1")
        assert compiled.classes == {"query", "blocker"}

    def test_lats_collected(self):
        compiled = _bind(
            "Query.Duration > MyLat.Avg",
            lats={"mylat"}, columns={"mylat": {"avg"}},
        )
        assert compiled.lats == {"mylat"}

    def test_atomic_count(self):
        compiled = _bind(
            "Query.Duration > 5 AND Query.ID = 1 OR NOT Query.Times_Blocked < 2"
        )
        assert compiled.atomic_count == 3

    def test_unknown_class_rejected(self):
        with pytest.raises(SchemaError):
            _bind("Nothing.Value > 5")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            _bind("Query.Nonexistent > 5")

    def test_unknown_lat_column_rejected(self):
        with pytest.raises(SchemaError):
            _bind("MyLat.Ghost > 5", lats={"mylat"},
                  columns={"mylat": {"real"}})


class TestEvaluation:
    def test_object_attribute_comparison(self):
        context = {"query": _query_obj(Duration=150.0)}
        assert _eval("Query.Duration > 100", context) is True
        assert _eval("Query.Duration > 200", context) is False

    def test_arithmetic_in_condition(self):
        context = {"query": _query_obj(Duration=10.0, Estimated_Cost=3.0)}
        assert _eval("Query.Duration > 2 * Query.Estimated_Cost + 1",
                     context) is True

    def test_string_equality(self):
        context = {"query": _query_obj(User='alice')}
        assert _eval("Query.User = 'alice'", context) is True
        assert _eval("Query.User != 'bob'", context) is True

    def test_and_or_not(self):
        context = {"query": _query_obj(Duration=10.0, Times_Blocked=0)}
        assert _eval("Query.Duration > 5 AND Query.Times_Blocked = 0",
                     context) is True
        assert _eval("Query.Duration > 50 OR Query.Times_Blocked = 0",
                     context) is True
        assert _eval("NOT Query.Duration > 50", context) is True

    def test_null_attribute_never_matches(self):
        context = {"query": _query_obj(Duration=None)}
        assert _eval("Query.Duration > 0", context) is False
        assert _eval("Query.Duration = 0", context) is False

    def test_lat_row_reference(self):
        context = {"query": _query_obj(Duration=60.0)}
        lat_rows = {"mylat": {"Avg": 10.0}}
        assert _eval("Query.Duration > 5 * MyLat.Avg", context, lat_rows,
                     lats={"mylat"}, columns={"mylat": {"avg"}}) is True

    def test_missing_lat_row_makes_condition_false(self):
        """The paper's implicit ∃ quantification (Section 5.2)."""
        context = {"query": _query_obj(Duration=60.0)}
        lat_rows = {"mylat": None}
        assert _eval("Query.Duration > 5 * MyLat.Avg", context, lat_rows,
                     lats={"mylat"}, columns={"mylat": {"avg"}}) is False

    def test_missing_lat_row_false_even_under_not(self):
        context = {"query": _query_obj(Duration=60.0)}
        lat_rows = {"mylat": None}
        assert _eval("NOT (Query.Duration > MyLat.Avg)", context, lat_rows,
                     lats={"mylat"}, columns={"mylat": {"avg"}}) is False

    def test_division_by_zero_is_null(self):
        context = {"query": _query_obj(Duration=5.0)}
        assert _eval("Query.Duration / 0 > 1", context) is False

    def test_unary_minus(self):
        context = {"query": _query_obj(Duration=5.0)}
        assert _eval("-Query.Duration < 0", context) is True

    def test_cross_type_comparison_false_not_error(self):
        context = {"query": _query_obj(User="alice")}
        assert _eval("Query.User > 5", context) is False
