"""Every fault-site literal used in src/ must be a registered site.

The injector validates sites at :meth:`FaultInjector.arm` time, but a
``check_fault("typo.site")`` call in engine code would silently never
fire (``FaultInjector.check`` returns 0 for unarmed sites).  This test
greps the source tree for site literals and cross-checks them against
:func:`repro.core.resilience.known_fault_sites`, so a misspelt or
unregistered site is a test failure, not a dead injection point.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro  # noqa: F401  -- imports register subsystem sites
import repro.chaos  # noqa: F401
from repro.core.resilience import known_fault_sites

SRC = Path(__file__).resolve().parent.parent / "src"

#: check_fault("site") / faults.check("site") call sites
_CALL_RE = re.compile(
    r"""(?:check_fault|faults\.check)\(\s*['"]([a-z0-9_.]+)['"]""")


def _used_sites() -> dict[str, list[str]]:
    used: dict[str, list[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _CALL_RE.finditer(text):
            used.setdefault(match.group(1), []).append(
                str(path.relative_to(SRC)))
    return used


def test_sources_actually_use_fault_sites():
    """Guard the guard: the grep must find the known call sites."""
    used = _used_sites()
    assert used, "no check_fault call sites found under src/"
    assert "chaos.workload" in used
    assert "chaos.scenario" in used
    # the durability crash points (checkpoint + journal) must stay live
    assert "durability.checkpoint" in used
    assert "durability.append" in used


def test_every_used_site_is_registered():
    known = set(known_fault_sites())
    unknown = {site: files for site, files in _used_sites().items()
               if site not in known}
    assert not unknown, (
        f"fault sites used in src/ but never registered: {unknown}; "
        f"register them via register_fault_sites() at subsystem import")
