"""Additional cross-cutting scenarios from the paper's text."""

import pytest

from repro import (AggSpec, AgingSpec, DatabaseServer, InsertAction,
                   LATDefinition, PersistAction, Rule, ServerConfig, SQLCM,
                   Statement)
from repro.core.actions import CallbackAction
from repro.engine.txn import IsolationLevel


@pytest.fixture
def world(items_server):
    return items_server, SQLCM(items_server)


def _run(server, sql, params=None):
    session = server.create_session()
    result = session.execute(sql, params)
    server.close_session(session)
    return result


class TestEvictedRowPersistence:
    """Section 4.3: 'it is possible to specify additional rules that e.g.
    persist the evicted row to a table'."""

    def test_evicted_rows_persisted_by_rule(self, world):
        server, sqlcm = world
        sqlcm.create_lat(LATDefinition(
            name="Tiny",
            grouping=["Query.ID AS Qid"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_rows=1,
        ))
        sqlcm.add_rule(Rule(name="fill", event="Query.Commit",
                            actions=[InsertAction("Tiny")]))
        sqlcm.add_rule(Rule(
            name="spill", event="Evicted.Evict",
            actions=[PersistAction("evicted_log", ["Qid", "D"],
                                   source="Evicted")],
        ))
        for __ in range(3):
            _run(server, "SELECT id FROM items WHERE id = 1")
        table = server.table("evicted_log")
        assert table.row_count == 2  # 3 inserts into a 1-row LAT

    def test_eviction_cascade_respects_event_ordering(self, world):
        """Evict events are queued until the triggering event's rules all
        ran (Section 5's ordering contract)."""
        server, sqlcm = world
        order = []
        sqlcm.create_lat(LATDefinition(
            name="Tiny2",
            grouping=["Query.ID AS Qid"],
            aggregations=["MAX(Query.Duration) AS D"],
            ordering=["D DESC"],
            max_rows=1,
        ))
        sqlcm.add_rule(Rule(name="fill", event="Query.Commit",
                            actions=[InsertAction("Tiny2")]))
        sqlcm.add_rule(Rule(
            name="after_fill", event="Query.Commit",
            actions=[CallbackAction(lambda s, c: order.append("commit"))],
        ))
        sqlcm.add_rule(Rule(
            name="on_evict", event="Evicted.Evict",
            actions=[CallbackAction(lambda s, c: order.append("evict"))],
        ))
        _run(server, "SELECT id FROM items WHERE id = 1")
        _run(server, "SELECT id FROM items WHERE id = 2")
        # each commit's rules finish before the evict event is processed
        assert order == ["commit", "commit", "evict"]


class TestLockEscalation:
    def test_large_update_takes_table_lock(self, items_server):
        """Full-table updates escalate to a table X lock, blocking even
        readers of unrelated rows (the trade-off SQL Server makes)."""
        writer = items_server.create_session()
        reader = items_server.create_session()
        writer.submit_script([
            "BEGIN",
            "UPDATE items SET qty = 0",  # no predicate → scan → table X
            Statement("COMMIT", think_time=0.5),
        ])
        reader.submit_script([
            Statement("SELECT name FROM items WHERE id = 1",
                      think_time=0.1),
        ])
        items_server.run()
        assert reader.results[-1].query.times_blocked == 1

    def test_point_updates_use_row_locks(self, items_server):
        writer = items_server.create_session()
        reader = items_server.create_session()
        writer.submit_script([
            "BEGIN",
            "UPDATE items SET qty = 0 WHERE id = 1",
            Statement("COMMIT", think_time=0.5),
        ])
        reader.submit_script([
            Statement("SELECT name FROM items WHERE id = 2",
                      think_time=0.1),
        ])
        items_server.run()
        assert reader.results[-1].query.times_blocked == 0


class TestAgingInRules:
    def test_aging_average_reacts_to_regime_change(self, world):
        """Aging (Section 4.3): baseline performance changes over time, so
        old probe values should stop influencing the average."""
        server, sqlcm = world
        sqlcm.create_lat(LATDefinition(
            name="Aged",
            grouping=["Query.Application AS App"],
            aggregations=[AggSpec("AVG", "Duration", "Avg_D",
                                  aging=AgingSpec(window=10.0, delta=1.0))],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("Aged")]))
        session = server.create_session(application="app")
        session.execute("SELECT id FROM items WHERE id = 1")
        early = sqlcm.lat("Aged").lookup(("app",))["Avg_D"]
        assert early > 0
        server.clock.advance(50.0)
        # the old sample aged out entirely
        assert sqlcm.lat("Aged").lookup(("app",))["Avg_D"] is None

    def test_aging_lat_not_cacheable_for_eviction(self, world):
        """Ordering on an aging column disables importance memoization but
        still evicts correctly as values decay."""
        server, sqlcm = world
        lat = sqlcm.create_lat(LATDefinition(
            name="AgedOrder",
            grouping=["Query.ID AS Qid"],
            aggregations=[AggSpec("SUM", "Duration", "S",
                                  aging=AgingSpec(window=5.0, delta=1.0))],
            ordering=["S DESC"],
            max_rows=2,
        ))
        assert lat._ordering_cacheable is False
        for i in range(4):
            lat.insert({"id": i, "duration": float(i + 1)})
        assert len(lat) == 2


class TestMultiGroupingColumns:
    def test_lat_with_composite_group_key(self, world):
        server, sqlcm = world
        sqlcm.create_lat(LATDefinition(
            name="ByUserType",
            grouping=["Query.User AS U", "Query.Query_Type AS T"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("ByUserType")]))
        alice = server.create_session(user="alice")
        bob = server.create_session(user="bob")
        alice.execute("SELECT id FROM items WHERE id = 1")
        alice.execute("UPDATE items SET qty = 1 WHERE id = 1")
        bob.execute("SELECT id FROM items WHERE id = 2")
        lat = sqlcm.lat("ByUserType")
        assert lat.lookup(("alice", "SELECT"))["N"] == 1
        assert lat.lookup(("alice", "UPDATE"))["N"] == 1
        assert lat.lookup(("bob", "SELECT"))["N"] == 1
        assert lat.lookup(("bob", "UPDATE")) is None

    def test_condition_matches_on_composite_key(self, world):
        server, sqlcm = world
        sqlcm.create_lat(LATDefinition(
            name="ByUserType2",
            grouping=["Query.User AS U", "Query.Query_Type AS T"],
            aggregations=["COUNT(Query.ID) AS N"],
        ))
        sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                            actions=[InsertAction("ByUserType2")]))
        hits = []
        sqlcm.add_rule(Rule(
            name="updates_twice", event="Query.Commit",
            condition="ByUserType2.N >= 2 AND Query.Query_Type = 'UPDATE'",
            actions=[CallbackAction(lambda s, c: hits.append(
                c["query"].get("User")))],
        ))
        alice = server.create_session(user="alice")
        alice.execute("UPDATE items SET qty = 1 WHERE id = 1")
        alice.execute("SELECT id FROM items WHERE id = 1")
        alice.execute("UPDATE items SET qty = 2 WHERE id = 1")
        assert hits == ["alice"]


class TestBlockerDesignation:
    def test_shared_holders_designate_one_blocker(self, items_server):
        """Section 6.1: when multiple queries share a resource another
        query waits on, one holder is designated the Blocker."""
        sqlcm = SQLCM(items_server)
        blockers = []
        sqlcm.add_rule(Rule(
            name="watch", event="Query.Blocked",
            actions=[CallbackAction(
                lambda s, c: blockers.append(
                    c["blocker"].get("User") if "blocker" in c else None),
                required=())],
        ))
        r1 = items_server.create_session(user="s_holder_1")
        r2 = items_server.create_session(user="s_holder_2")
        w = items_server.create_session(user="writer")
        # two readers hold S on the same row inside explicit txns
        for reader in (r1, r2):
            reader.isolation = IsolationLevel.REPEATABLE_READ
            reader.submit_script([
                "BEGIN",
                "SELECT name FROM items WHERE id = 1",
                Statement("COMMIT", think_time=0.5),
            ])
        w.submit_script([
            Statement("UPDATE items SET qty = 0 WHERE id = 1",
                      think_time=0.1),
        ])
        items_server.run()
        assert len(blockers) == 1
        assert blockers[0] in ("s_holder_1", "s_holder_2")
