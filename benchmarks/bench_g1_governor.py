"""G1: the overload governor enforces the paper's < 4% envelope.

The paper's Figure 2 shows monitoring overhead staying under ~4% for its
1000-rule setup — but nothing *enforces* that bound: a hostile rule set on
a fast client path silently blows the budget.  This experiment builds that
hostile configuration (E2-shaped rules — per-rule LAT keeping the last 10
queries, ~20 atomic conditions each — against a deliberately cheap
statement path) and runs it three ways:

* **baseline** — no monitoring at all (the denominator);
* **ungoverned** — full rule set, no governor: overhead breaches 4%;
* **governed** — same rule set under the closed-loop governor: the ladder
  degrades (deterministic sampling, then shedding if needed), overhead
  lands back inside the envelope, and once the storm passes the ladder
  recovers to NORMAL with zero flapping.

A CRITICAL sentinel rule + LAT ride along to show degradation never
touches protected components.  The governed run is executed twice and must
be bit-identical (sample digest, sampled-out count, LAT contents):
hash-based admission is a pure function of the event trace.

Writes ``BENCH_governor.json`` (machine-readable overhead ratios per
ladder state) next to the repo's other bench artifacts.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import build_server, quick, run_workload
from repro import (CostModel, GovernorPolicy, InsertAction, LATDefinition,
                   Rule, SQLCM)
from repro.core.governor import GOV_NORMAL

N_RULES = quick(1000, 400)
N_CONDITIONS = 20
STORM_QUERIES = quick(500, 240)
CALM_QUERIES = quick(250, 120)

#: E2 uses the stock cost model, where 1000 rules stay under 4% (the
#: paper's result).  G1's point is the *unenforced* regime, so it cheapens
#: the statement path ~5x: the same rule set now costs >4% per query —
#: exactly the configuration the governor exists for.
GOV_COSTS = replace(CostModel(), statement_overhead=2e-3)

POLICY = GovernorPolicy(
    target_overhead=0.04,   # the paper envelope
    exit_overhead=0.02,
    window=0.08,
    cooldown=0.2,
    decision_interval=0.02,
    sample_rate=8,
)

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_governor.json"


def _install_monitoring(sqlcm: SQLCM, n_rules: int) -> None:
    # the protected component: a CRITICAL audit trail that must survive
    # every ladder state
    sqlcm.create_lat(LATDefinition(
        name="Sentinel_LAT",
        monitored_class="Query",
        grouping=["Query.Application AS App"],
        aggregations=["COUNT(Query.ID) AS Commits"],
        criticality="critical",
    ))
    sqlcm.add_rule(Rule(
        name="g1_sentinel", event="Query.Commit",
        criticality="critical",
        actions=[InsertAction("Sentinel_LAT")],
    ))
    # the hostile load: E2's shape, one LAT + 20 conditions per rule
    condition = " AND ".join(
        f"Query.Duration >= {j * -1.0}" for j in range(N_CONDITIONS))
    for i in range(n_rules):
        sqlcm.create_lat(LATDefinition(
            name=f"G1_LAT_{i}",
            monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=[
                "LAST(Query.Query_Text) AS Text",
                "LAST(Query.Duration) AS Duration",
                "LAST(Query.Estimated_Cost) AS Cost",
                "LAST(Query.Query_Type) AS Qtype",
            ],
            ordering=["Qid DESC"],
            max_rows=10,
        ))
        sqlcm.add_rule(Rule(
            name=f"g1_rule_{i}",
            event="Query.Commit",
            condition=condition,
            actions=[InsertAction(f"G1_LAT_{i}")],
        ))


def _baseline() -> float:
    server, counts = build_server(costs=GOV_COSTS, track_completed=False)
    return run_workload(server, counts, short=STORM_QUERIES, joins=0)


def _run(governed: bool):
    """Storm (full rule set) then calm (hostile rules pulled); returns
    (storm virtual seconds, sqlcm, governor-or-None)."""
    server, counts = build_server(costs=GOV_COSTS, track_completed=False)
    sqlcm = SQLCM(server)
    governor = sqlcm.enable_governor(POLICY) if governed else None
    _install_monitoring(sqlcm, N_RULES)
    storm = run_workload(server, counts, short=STORM_QUERIES, joins=0,
                         application="storm")
    # the storm passes: the DBA pulls the hostile deployment but the
    # workload (and the sentinel) keep running
    for i in range(N_RULES):
        sqlcm.enable_rule(f"g1_rule_{i}", False)
    run_workload(server, counts, short=CALM_QUERIES, joins=0,
                 application="calm")
    return storm, sqlcm, governor


def _replay_fingerprint(sqlcm: SQLCM, governor) -> tuple:
    return (
        governor.sample_digest,
        governor.evals_sampled_out,
        governor.evals_suspended,
        len(governor.transitions),
        sqlcm.lat("G1_LAT_0").integrity_signature(),
        sum(row["Commits"] for row in sqlcm.lat("Sentinel_LAT").rows()),
    )


def test_g1_governor_enforces_envelope(report, benchmark):
    results: dict = {}

    def run_all():
        base = _baseline()
        ungoverned_storm, __, __ = _run(governed=False)
        governed_storm, sqlcm, governor = _run(governed=True)
        results["base"] = base
        results["ungoverned_pct"] = 100.0 * (ungoverned_storm - base) / base
        results["governed_pct"] = 100.0 * (governed_storm - base) / base
        results["sqlcm"] = sqlcm
        results["governor"] = governor
        return base

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    governor = results["governor"]
    sqlcm = results["sqlcm"]
    transitions = governor.transitions
    per_state = governor.state_overheads()

    lines = [
        "G1: closed-loop governor vs the paper's < 4% envelope",
        f"hostile load: {N_RULES} rules x {N_CONDITIONS} conditions, "
        f"per-rule LATs, {STORM_QUERIES} storm + {CALM_QUERIES} calm "
        f"queries",
        f"baseline:   {results['base']:.3f}s virtual",
        f"ungoverned: +{results['ungoverned_pct']:.2f}%   "
        f"(envelope: 4%)",
        f"governed:   +{results['governed_pct']:.2f}%   "
        f"(final state: {governor.state})",
        "per-state overhead ratio: " + "  ".join(
            f"{state}={ratio * 100:.2f}%"
            for state, ratio in per_state.items()),
        "ladder: " + " -> ".join(
            f"{t.to_state}@{t.time:.2f}s({t.reason})"
            for t in transitions),
    ]
    report(*lines)

    # --- the envelope ----------------------------------------------------
    assert results["ungoverned_pct"] > 4.0, \
        "hostile configuration must breach the envelope when ungoverned"
    assert results["governed_pct"] <= 4.0, \
        "governed overhead must stay inside the paper's envelope"

    # --- degradation and clean recovery, zero flapping -------------------
    assert transitions, "the governor never reacted to the storm"
    reasons = [t.reason for t in transitions]
    first_recover = reasons.index("recover") if "recover" in reasons \
        else len(reasons)
    assert all(r == "escalate" for r in reasons[:first_recover])
    assert all(r == "recover" for r in reasons[first_recover:]), \
        f"ladder flapped: {reasons}"
    assert governor.state == GOV_NORMAL, "storm over: must recover fully"
    assert not governor.suspended
    for earlier, later in zip(transitions, transitions[1:]):
        assert later.time - earlier.time >= POLICY.cooldown - 1e-9
    assert governor.evals_sampled_out > 0  # SAMPLED actually sampled

    # --- criticality protection ------------------------------------------
    sentinel = sqlcm.rules["g1_sentinel"]
    total_queries = STORM_QUERIES + CALM_QUERIES
    assert sentinel.evaluation_count >= total_queries, \
        "CRITICAL sentinel must see every commit in every ladder state"
    commits = sum(row["Commits"]
                  for row in sqlcm.lat("Sentinel_LAT").rows())
    assert commits >= total_queries

    # --- machine-readable artifact ---------------------------------------
    artifact = {
        "experiment": "G1",
        "config": {
            "rules": N_RULES,
            "conditions": N_CONDITIONS,
            "storm_queries": STORM_QUERIES,
            "calm_queries": CALM_QUERIES,
            "statement_overhead": GOV_COSTS.statement_overhead,
            "policy": {
                "target_overhead": POLICY.target_overhead,
                "exit_overhead": POLICY.exit_overhead,
                "window": POLICY.window,
                "cooldown": POLICY.cooldown,
                "decision_interval": POLICY.decision_interval,
                "sample_rate": POLICY.sample_rate,
            },
        },
        "baseline_virtual_s": results["base"],
        "ungoverned_overhead_pct": results["ungoverned_pct"],
        "governed_overhead_pct": results["governed_pct"],
        "envelope_pct": 4.0,
        "state_overhead_ratio": per_state,
        "state_virtual_time_s": {
            state: t for state, t in governor.state_time.items() if t > 0.0},
        "transitions": [
            {"time": t.time, "from": t.from_state, "to": t.to_state,
             "reason": t.reason, "measured": t.overhead_ratio,
             "estimated": t.estimated_ratio}
            for t in transitions
        ],
        "evals_sampled_out": governor.evals_sampled_out,
        "evals_suspended": governor.evals_suspended,
        "sample_digest": governor.sample_digest,
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n",
                         encoding="utf-8")
    report(f"wrote {_ARTIFACT.name}")


def test_g1_governed_run_is_replay_stable(report, benchmark):
    """Two identical governed runs sample the identical event subset."""
    fingerprints: list[tuple] = []

    def run_twice():
        for __ in range(2):
            __, sqlcm, governor = _run(governed=True)
            fingerprints.append(_replay_fingerprint(sqlcm, governor))

    benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert fingerprints[0] == fingerprints[1], \
        "hash-based sampling must be a pure function of the event trace"
    report("G1 replay: two governed runs bit-identical "
           f"(digest {fingerprints[0][0]:#010x}, "
           f"{fingerprints[0][1]} evals sampled out)")
    if _ARTIFACT.exists():
        data = json.loads(_ARTIFACT.read_text(encoding="utf-8"))
        data["replay_stable"] = True
        _ARTIFACT.write_text(json.dumps(data, indent=2) + "\n",
                             encoding="utf-8")
