"""R2: monitor recovery cost — checkpoint cadence vs journal replay.

Not a paper experiment — this bench guards the durability extension: the
monitor's crash-safety story is checkpoint + journal replay, and its
operational cost is the time a supervised restart spends rebuilding the
monitor.  Two knobs control that cost:

* **journal length** — records written since the last checkpoint; replay
  is linear in it, so recovery time grows with the time since the last
  checkpoint;
* **checkpoint interval** — a tighter cadence trades steady-state
  checkpoint writes for a shorter journal (and faster recovery) at the
  moment of the crash.

For every grid point the bench recovers through the full
:func:`verify_recovery` path, so digest equality with the pre-crash
monitor is asserted, not assumed; each recovery is then repeated and must
be bit-identical (same digest, same records replayed) — replay is
deterministic, a recovered monitor is a repro, not an approximation.

Writes ``BENCH_recovery.json`` (per-grid-point replay counts, wall
timings, and digests) next to the repo's other bench artifacts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import quick
from repro import (DatabaseServer, InsertAction, LATDefinition, Rule,
                   ServerConfig, SQLCM)
from repro.core.durability import DigestTap, DurabilityManager, verify_recovery

#: events journaled after the final checkpoint (replay length axis)
JOURNAL_LENGTHS = quick([50, 200, 800], [20, 60])

#: virtual seconds between automatic checkpoints (cadence axis); the
#: workload always spans 100 virtual seconds
CHECKPOINT_INTERVALS = quick([5.0, 20.0, 80.0], [10.0, 50.0])

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"


def build_monitor():
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    server.execute_ddl(
        "CREATE TABLE items (id INT NOT NULL PRIMARY KEY, "
        "name VARCHAR(30), price FLOAT)")
    loader = server.create_session()
    loader.execute(
        "INSERT INTO items (id, name, price) VALUES (1, 'a', 1.5), "
        "(2, 'b', 2.0)")
    server.close_session(loader)
    sqlcm = SQLCM(server)
    sqlcm.create_lat(LATDefinition(
        name="Q_LAT", monitored_class="Query",
        grouping=["Query.User AS U"],
        aggregations=["COUNT(Query.ID) AS N",
                      "AVG(Query.Duration) AS D"]))
    sqlcm.add_rule(Rule(name="track", event="Query.Commit",
                        actions=[InsertAction("Q_LAT")]))
    sqlcm.stream_engine().register(
        "STREAM s1 FROM Query.Commit GROUP BY Query.User AS U "
        "WINDOW TUMBLING(2) AGG COUNT(*) AS N")
    return server, sqlcm


def work(server, n):
    for i in range(n):
        session = server.create_session(user=f"u{i % 5}")
        session.execute("SELECT id FROM items WHERE id = 1")
        server.close_session(session)
        server.clock.advance(0.05)


def timed_recovery(directory, tap):
    """Recover twice; assert digest equality and bit-stable replay."""
    start = time.perf_counter()
    first = verify_recovery(directory, tap)
    wall = time.perf_counter() - start
    second = verify_recovery(directory, tap)
    digest = first.sqlcm.state_digest()
    assert digest == second.sqlcm.state_digest(), "replay is not bit-stable"
    assert first.records_replayed == second.records_replayed
    return wall, first, digest


def test_r2_recovery_cost(report, benchmark, tmp_path):
    artifact = {"quick": bool(quick(False, True)),
                "journal_lengths": {}, "checkpoint_intervals": {}}
    lines = ["R2: recovery cost (journal replay + checkpoint cadence)",
             f"{'journal events':>14} {'replayed':>9} {'recover':>9}"]

    # --- axis 1: journal length at a fixed (single) checkpoint ----------
    taps = {}
    for n_events in JOURNAL_LENGTHS:
        server, sqlcm = build_monitor()
        directory = str(tmp_path / f"len-{n_events}")
        manager = DurabilityManager(sqlcm, directory)
        manager.attach()  # the only checkpoint: everything after replays
        tap = DigestTap(manager)
        work(server, n_events)
        taps[n_events] = (directory, tap)
        wall, rep, digest = timed_recovery(directory, tap)
        artifact["journal_lengths"][str(n_events)] = {
            "records_replayed": rep.records_replayed,
            "recover_wall_s": round(wall, 6),
            "digest": f"0x{digest:08x}",
        }
        lines.append(f"{n_events:>14} {rep.records_replayed:>9} "
                     f"{wall * 1e3:>8.1f}ms")

    # pytest-benchmark timing on the longest journal (a stable hot path)
    longest = max(JOURNAL_LENGTHS)
    directory, tap = taps[longest]
    benchmark.pedantic(lambda: verify_recovery(directory, tap),
                       rounds=quick(5, 1), iterations=1)

    # --- axis 2: checkpoint cadence over a fixed workload ---------------
    lines.append(f"{'ckpt interval':>14} {'ckpts':>6} {'replayed':>9} "
                 f"{'recover':>9}")
    for interval in CHECKPOINT_INTERVALS:
        server, sqlcm = build_monitor()
        directory = str(tmp_path / f"int-{interval}")
        manager = DurabilityManager(sqlcm, directory,
                                    checkpoint_interval=interval)
        manager.attach()
        tap = DigestTap(manager)
        slices = quick(40, 12)
        for index in range(slices):
            work(server, 5)
            # stretch the workload over ~100 virtual seconds so every
            # cadence on the grid gets a chance to fire; the crash lands
            # after the last slice, so that one never checkpoints
            server.clock.advance(100.0 / slices)
            if index < slices - 1:
                manager.maybe_checkpoint()
        wall, rep, digest = timed_recovery(directory, tap)
        artifact["checkpoint_intervals"][str(interval)] = {
            "checkpoints_taken": manager.checkpoints_taken,
            "records_replayed": rep.records_replayed,
            "recover_wall_s": round(wall, 6),
            "digest": f"0x{digest:08x}",
        }
        lines.append(f"{interval:>13.0f}s {manager.checkpoints_taken:>6} "
                     f"{rep.records_replayed:>9} {wall * 1e3:>8.1f}ms")

    # a tighter cadence must not replay more than the loosest one
    replayed = [artifact["checkpoint_intervals"][str(i)]["records_replayed"]
                for i in CHECKPOINT_INTERVALS]
    assert replayed[0] <= replayed[-1], \
        "tighter checkpoint cadence should shorten journal replay"

    report(*lines)
    _ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True))
