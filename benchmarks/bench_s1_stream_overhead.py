"""S1: overhead of concurrent continuous stream queries (stream extension).

Not a paper experiment — this bench guards the Figure 2 envelope for the
stream-query subsystem the same way R1 does for the fault-isolation layer:
N concurrent sliding-window stream queries ride the E2 short-select
workload's event path, and the added virtual time must stay inside the
paper's < 4% monitoring budget.

Each stream query groups by a query attribute, keeps two window aggregates
(AVG + COUNT) over a sliding window, filters with a WHERE condition, and
carries a HAVING clause that rarely fires — the realistic "armed but
quiet" monitoring configuration.  A second assertion checks the windows
are maintained *incrementally* by operation count: per-event work is one
state update per aggregate, and emission work is pane merges bounded by
panes-per-window — never a rescan of the events in the window.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server, quick, run_workload
from repro import SQLCM

SHORT_QUERIES = quick(300, 120)
N_STREAMS = quick(20, 8)
WINDOW_LEN = 10.0
WINDOW_HOP = 1.0

_GROUPERS = ["Query.User AS G", "Query.Application AS G",
             "Query.Query_Type AS G", "Query.Rows_Affected AS G"]


def _install_streams(sqlcm: SQLCM, n: int) -> list:
    streams = sqlcm.stream_engine()
    queries = []
    for i in range(n):
        group = _GROUPERS[i % len(_GROUPERS)]
        queries.append(streams.register(
            f"STREAM s1_{i} FROM Query.Commit "
            f"WHERE Query.Duration >= 0 "
            f"GROUP BY {group} "
            f"WINDOW SLIDING({WINDOW_LEN:g}, {WINDOW_HOP:g}) "
            f"AGG AVG(Query.Duration) AS Avg_D, COUNT(*) AS N "
            f"HAVING Window.Avg_D > 3600"))  # armed but effectively quiet
    return queries


def _elapsed(n_streams: int):
    server, counts = build_server(track_completed=False)
    sqlcm = SQLCM(server)
    queries = _install_streams(sqlcm, n_streams) if n_streams else []
    elapsed = run_workload(server, counts, short=SHORT_QUERIES, joins=0)
    sqlcm.stream_engine().flush()
    return elapsed, queries


def test_s1_stream_overhead(report, benchmark):
    results: dict[int, float] = {}
    sampled: list = []

    def run_all():
        base, __ = _elapsed(0)
        for n in (N_STREAMS // 2, N_STREAMS):
            elapsed, queries = _elapsed(n)
            results[n] = 100.0 * (elapsed - base) / base
            if n == N_STREAMS:
                sampled.extend(queries)
        return base

    base = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"S1: stream-query subsystem overhead on the E2 short-select "
        f"workload",
        f"baseline: {SHORT_QUERIES} short selects in {base:.3f}s virtual",
    ]
    for n, overhead in sorted(results.items()):
        lines.append(
            f"{n:>3} sliding-window stream queries "
            f"({WINDOW_LEN:g}s/{WINDOW_HOP:g}s, AVG+COUNT, WHERE+HAVING): "
            f"{overhead:.2f}%")
    lines.append("paper envelope (Figure 2): < 4%")
    report(*lines)

    # every stream saw the whole workload and emitted windows
    assert all(q.events_ingested == SHORT_QUERIES for q in sampled)
    assert all(q.windows_emitted > 0 for q in sampled)
    # the headline claim: full stream fleet inside the Figure 2 envelope
    assert results[N_STREAMS] < 4.0

    # incrementality, by operation count (not wall-clock): per-event work
    # is exactly one state update per aggregate...
    n_aggs = 2
    for q in sampled:
        assert q.window.update_ops == SHORT_QUERIES * n_aggs
    # ...and per-emission merge work is bounded by panes-per-window, never
    # by the number of events inside the window
    panes = int(WINDOW_LEN / WINDOW_HOP)
    for q in sampled:
        emissions = q.windows_emitted * max(1, q.window.group_count)
        assert q.window.combine_ops <= emissions * (panes - 1) * n_aggs


def test_s1_stream_ingest_wall_time(benchmark):
    """Wall time of one short select with 20 stream queries attached."""
    server, counts = build_server(track_completed=False)
    sqlcm = SQLCM(server)
    _install_streams(sqlcm, N_STREAMS)
    session = server.create_session()
    session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    def one_query():
        session.execute(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    benchmark(one_query)
    assert all(q.events_ingested > 0
               for q in sqlcm.stream_engine().queries())
