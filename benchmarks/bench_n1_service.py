"""N1: the network service tier under a concurrent client storm.

G1 proves the closed-loop governor holds the paper's < 4% envelope for a
single scripted session.  N1 proves the same property survives the layer
the paper assumes but never builds: many *real* client connections
multiplexed over TCP onto one monitored engine.  Eight client threads
hammer the service with DML while G1's hostile rule configuration
(per-rule LATs, ~20 atomic conditions each, cheap statement path) taxes
every commit, a holder connection periodically pins a hot row to provoke
a blocking storm, and the auto-remediation loop runs against it.

The bench asserts the service-tier contract end to end:

* every request is answered — success, an honest SQL error, or explicit
  ``overloaded`` backpressure with a retry hint; no client ever hangs;
* the governor keeps *measured* monitoring overhead inside the 4%
  envelope for the whole run (ratio of attributed monitoring cost to
  virtual time, summed across ladder states);
* the CRITICAL sentinel still sees every committed statement;
* the blocking storm surfaces as an incident over the wire and
  auto-resolves once remediation clears it.

Writes ``BENCH_service.json`` (throughput, admission counters, per-state
overhead ratios, incident lifecycle facts) next to the repo's other
bench artifacts.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import quick
from repro import (SQLCM, CostModel, DatabaseServer, GovernorPolicy,
                   IncidentPolicy, MonitorService, ServerConfig,
                   ServiceClient, ServiceConfig, ServiceRunner)
from repro.apps.auto_remediation import AutoRemediator
from repro.core.governor import BEST_EFFORT
from repro.errors import ServiceError
from repro.service.protocol import E_OVERLOADED, E_SQL

from benchmarks.bench_g1_governor import GOV_COSTS, POLICY, \
    _install_monitoring

N_CLIENTS = 8
REQUESTS = quick(48, 12)          # statements per client
N_RULES = quick(200, 60)          # hostile rule count (G1 shape)

#: wall-clock ceiling on any single wait; generous because CI is slow
WAIT = 30.0

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _build_service() -> MonitorService:
    config = ServerConfig(track_completed_queries=True)
    config.costs = GOV_COSTS
    db = DatabaseServer(config)
    db.enable_observability()
    sqlcm = SQLCM(db)
    sqlcm.enable_governor(replace(POLICY))
    _install_monitoring(sqlcm, N_RULES)
    AutoRemediator(
        sqlcm,
        sweep_interval=0.1,
        block_wait_threshold=0.2,
        cancel_blockers=True,
        policy=IncidentPolicy(sweep_interval=0.1, clear_after=0.5,
                              escalation_timeout=1e9))
    return MonitorService(db, sqlcm,
                          ServiceConfig(queue_limit=8, queue_timeout=0.5))


def _client_workload(svc: MonitorService, idx: int,
                     outcomes: dict, errors: list) -> None:
    crit = BEST_EFFORT if idx % 2 else "normal"
    try:
        client = ServiceClient("127.0.0.1", svc.port, user=f"bench{idx}",
                               criticality=crit, timeout=WAIT)
    except Exception as err:  # pragma: no cover - setup failure
        errors.append((idx, err))
        return
    try:
        for j in range(REQUESTS):
            try:
                if j % 4 == 1:
                    # join the hot-row fight: these block behind the
                    # holder until remediation cancels it
                    client.sql("UPDATE hot SET v = v + 1 WHERE id = 1")
                elif j % 4 == 3:
                    client.sql("SELECT v FROM bench WHERE owner = @me",
                               params={"me": idx})
                else:
                    client.sql("INSERT INTO bench (owner, v) VALUES "
                               "(@me, @v)", params={"me": idx, "v": j})
                outcomes[idx].append("ok")
            except ServiceError as err:
                outcomes[idx].append(err.code)
                if err.code == E_OVERLOADED:
                    # honor the backpressure hint (bounded for the bench)
                    time.sleep(min(err.retry_after or 0.05, 0.1))
    finally:
        client.close()


def _holder_storm(svc: MonitorService, stop: threading.Event) -> None:
    """Pin the hot row in an open transaction so contenders pile up and
    the remediation loop has a blocker to cancel."""
    client = ServiceClient("127.0.0.1", svc.port, user="holder",
                           timeout=WAIT)
    try:
        while not stop.is_set():
            try:
                client.sql("BEGIN")
                client.sql("UPDATE hot SET v = v + 1 WHERE id = 1")
                time.sleep(0.15)
                client.sql("COMMIT")
            except ServiceError:
                pass  # a remediation cancel beat us to the commit
    finally:
        client.close()


def _wait_until(predicate, timeout: float = WAIT,
                interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_n1_service_storm(report, benchmark):
    svc = _build_service()
    results: dict = {}

    def run_all():
        with ServiceRunner(svc):
            with ServiceClient("127.0.0.1", svc.port, user="setup",
                               timeout=WAIT) as setup:
                setup.sql("CREATE TABLE bench (owner INTEGER, v INTEGER)")
                setup.sql("CREATE TABLE hot (id INTEGER PRIMARY KEY, "
                          "v INTEGER)")
                setup.sql("INSERT INTO hot (id, v) VALUES (1, 0)")

            stop = threading.Event()
            outcomes: dict = {i: [] for i in range(N_CLIENTS)}
            errors: list = []
            holder = threading.Thread(target=_holder_storm,
                                      args=(svc, stop))
            holder.start()
            threads = [threading.Thread(target=_client_workload,
                                        args=(svc, i, outcomes, errors))
                       for i in range(N_CLIENTS)]
            wall_start = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT * 4)
                assert not thread.is_alive(), "a bench client hung"
            wall = time.monotonic() - wall_start
            stop.set()
            holder.join(WAIT)
            assert not holder.is_alive(), "the holder hung"
            assert not errors, errors

            with ServiceClient("127.0.0.1", svc.port, user="admin",
                               timeout=WAIT) as admin:
                def blocking_incidents():
                    return [i for i in admin.incidents()["incidents"]
                            if i["class"] == "blocking"]

                assert _wait_until(lambda: bool(blocking_incidents())), \
                    "the storm never opened a blocking incident"

                def resolved():
                    return all(i["resolved_at"] is not None
                               for i in blocking_incidents())

                assert _wait_until(resolved, timeout=WAIT * 2), \
                    "blocking incident never auto-resolved"
                results["incidents"] = blocking_incidents()
            results["outcomes"] = outcomes
            results["wall"] = wall
            results["service"] = svc.describe()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    governor = svc.sqlcm.governor
    per_state = governor.state_overheads()
    total_time = sum(governor.state_time.values())
    total_cost = sum(governor.state_cost.values())
    overhead = total_cost / total_time if total_time > 0 else 0.0

    flat = [code for codes in results["outcomes"].values()
            for code in codes]
    counts = {code: flat.count(code) for code in sorted(set(flat))}
    expected = N_CLIENTS * REQUESTS
    throughput = len(flat) / results["wall"] if results["wall"] else 0.0

    sentinel = svc.sqlcm.rules["g1_sentinel"]
    incidents = results["incidents"]

    artifact = {
        "bench": "n1_service_storm",
        "clients": N_CLIENTS,
        "requests_per_client": REQUESTS,
        "hostile_rules": N_RULES,
        "wall_seconds": round(results["wall"], 3),
        "requests_answered": len(flat),
        "requests_per_second": round(throughput, 1),
        "outcome_counts": counts,
        "service": results["service"],
        "overhead_overall": overhead,
        "overhead_per_state": per_state,
        "overhead_ok": overhead <= POLICY.target_overhead,
        "governor_state": governor.state,
        "governor_transitions": len(governor.transitions),
        "blocking_incidents": [
            {"id": i["id"], "occurrences": i["occurrences"],
             "resolved": i["resolved_at"] is not None}
            for i in incidents],
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True))

    report(
        "N1: service tier under an 8-client storm + hostile monitoring",
        f"{N_CLIENTS} clients x {REQUESTS} requests, {N_RULES} hostile "
        f"rules, auto-remediation on",
        f"answered: {len(flat)}/{expected}  outcomes: {counts}  "
        f"({throughput:.0f} req/s wall)",
        f"admission: shed={results['service']['requests_shed']} "
        f"queued={results['service']['requests_queued_total']}",
        f"overhead: {overhead * 100:.2f}% overall (envelope 4%)  "
        "per-state: " + "  ".join(
            f"{state}={ratio * 100:.2f}%"
            for state, ratio in per_state.items()),
        f"incidents: {len(incidents)} blocking, all resolved "
        f"(final governor state: {governor.state})",
    )

    # (a) no request lost: every submission has an explicit outcome
    assert len(flat) == expected, counts
    assert all(code in ("ok", E_SQL, E_OVERLOADED) for code in flat), \
        counts

    # (b) the governor kept measured overhead inside the paper envelope
    assert overhead <= POLICY.target_overhead, \
        f"measured overhead {overhead:.4f} breaches the 4% envelope"

    # criticality protection across the wire: the CRITICAL sentinel saw
    # every statement that actually committed
    assert sentinel.evaluation_count >= counts.get("ok", 0)

    # (c) the storm surfaced as an incident and auto-resolved
    assert incidents
    assert all(i["resolved_at"] is not None for i in incidents)
