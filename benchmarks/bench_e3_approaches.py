"""E3 (Figure 3): efficiency of different monitoring approaches.

The task: identify the 10 most expensive queries of a mixed workload
(short single-row selects interleaved with 3-table range joins).

Approaches, as in Section 6.2.2:

* **SQLCM** — a 10-row LAT ordered by duration, persisted at the end.
* **Query_logging** — every commit synchronously written to a reporting
  table, answer via SQL post-processing.
* **PULL** — client polls snapshots of active queries at rates 1/s ..
  1/300s; lossy (misses short-lived queries, underestimates durations).
* **PULL_history** — the server keeps a completion history that the client
  drains; exact, but polls are costly and at slow rates the history's
  memory evicts buffer-pool pages.

Paper findings: SQLCM < 0.1% overhead and exact; Query_logging > 20%
overhead; PULL misses 5/7/9 of the top-10 at 1s/5s/≥10s polling;
PULL_history exact but clearly costlier than SQLCM, with a tuning problem
at both ends of the polling-rate range.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server, figure3_cost_model, run_workload
from repro import SQLCM
from repro.apps import TopKTracker
from repro.monitoring import (PullHistoryMonitor, PullMonitor,
                              QueryLoggingMonitor, missed_top_k,
                              top_k_ground_truth)

K = 10
# paper ratio: 20,000 shorts : 100 joins; scaled 1/5 keeping the shape
SHORT = 4000
JOINS = 15
POLL_RATES = [1.0, 5.0, 10.0, 60.0, 300.0]


def _run(monitor_factory=None):
    """Fresh server, identical workload. Returns (elapsed, truth, answer,
    extra) where extra carries monitor-specific detail."""
    server, counts = build_server(costs=figure3_cost_model())
    monitor = monitor_factory(server) if monitor_factory else None
    elapsed = run_workload(server, counts, short=SHORT, joins=JOINS)
    truth = top_k_ground_truth(server, K, exclude_apps=("query_logging",))
    if monitor is None:
        return elapsed, truth, [], {}
    if hasattr(monitor, "stop"):
        monitor.stop()
    answer = monitor.top_k(K)
    extra = {}
    if isinstance(monitor, PullHistoryMonitor):
        extra["peak_history_rows"] = monitor.peak_history_rows
    if isinstance(monitor, (PullMonitor, PullHistoryMonitor)):
        extra["polls"] = monitor.poll_count
    return elapsed, truth, answer, extra


def _sqlcm(server):
    return TopKTracker(SQLCM(server), k=K)


def _logging(server):
    return QueryLoggingMonitor(server)


def _pull(rate):
    def factory(server):
        monitor = PullMonitor(server, rate)
        monitor.start()
        return monitor
    return factory


def _pull_history(rate):
    def factory(server):
        monitor = PullHistoryMonitor(server, rate)
        monitor.start()
        return monitor
    return factory


def test_e3_monitoring_approaches(report, benchmark):
    rows = []

    def run_all():
        base, __, __, __ = _run()
        configs = [("SQLCM", _sqlcm), ("Query_logging", _logging)]
        configs += [(f"PULL {rate:.0f}s", _pull(rate))
                    for rate in POLL_RATES]
        configs += [(f"PULL_history {rate:.0f}s", _pull_history(rate))
                    for rate in POLL_RATES]
        for name, factory in configs:
            elapsed, truth, answer, extra = _run(factory)
            overhead = 100.0 * (elapsed - base) / base
            missed = missed_top_k(truth, answer)
            rows.append((name, overhead, missed, extra))
        return base

    base = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "E3 (Figure 3): top-10-expensive-queries task, per approach",
        f"workload: {SHORT} short selects + {JOINS} joins, "
        f"baseline {base:.1f}s virtual",
        f"{'approach':<22} {'overhead':>9} {'missed':>7}  notes",
    ]
    by_name = {}
    for name, overhead, missed, extra in rows:
        by_name[name] = (overhead, missed)
        notes = ", ".join(f"{k}={v}" for k, v in extra.items())
        lines.append(f"{name:<22} {overhead:8.3f}% {missed:7d}  {notes}")
    lines.append(
        "paper: SQLCM <0.1% exact; logging >20%; PULL misses 5/7/9 at "
        "1s/5s/>=10s; PULL_history exact but costlier than SQLCM"
    )
    report(*lines)

    # --- the paper's findings, asserted -----------------------------------
    sqlcm_overhead, sqlcm_missed = by_name["SQLCM"]
    assert sqlcm_overhead < 0.1
    assert sqlcm_missed == 0
    logging_overhead, logging_missed = by_name["Query_logging"]
    assert logging_overhead > 20.0
    assert logging_missed == 0
    # PULL: lossy, monotonically worse at slower rates; wrong at every rate
    pull_missed = [by_name[f"PULL {r:.0f}s"][1] for r in POLL_RATES]
    assert all(m >= 1 for m in pull_missed)
    assert pull_missed[0] <= pull_missed[-1]
    assert pull_missed[-1] >= 8
    # PULL overhead grows with polling frequency
    pull_overheads = [by_name[f"PULL {r:.0f}s"][0] for r in POLL_RATES]
    assert pull_overheads[0] > pull_overheads[-1]
    # PULL_history: exact at every rate but costlier than SQLCM
    for rate in POLL_RATES:
        overhead, missed = by_name[f"PULL_history {rate:.0f}s"]
        assert missed == 0
        assert overhead > sqlcm_overhead
    # ... and picking its rate is a tuning problem: at slow rates the
    # server-side history degrades the buffer cache (paper Section 6.2.2)
    assert by_name["PULL_history 300s"][0] > by_name["PULL_history 5s"][0]
