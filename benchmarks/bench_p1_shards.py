"""P1: sharded dispatch scales event throughput; sharding is lossless.

The paper's SQLCM instruments a single server process; its dispatch path
is serial.  This experiment measures the sharded tier (``repro.shard``)
on the TPC-H stress workload:

* a serial live monitor records the engine event trace and the reference
  state digest;
* the same trace replays through ``ShardedSQLCM`` at 1 / 2 / 4 / 8
  shards.  Every replay must digest-equal the serial run — the
  determinism proof, using the governor's replay-stable hashing
  technique (CRC32 over canonical state) — while the **virtual
  makespan** (max per-shard accumulated monitoring cost) shrinks with
  the shard count;
* event throughput = events / makespan must scale >= 3x at 8 shards
  vs 1 shard;
* the 8-shard replay also runs on the thread executor: digests must
  again match (executor-independence), and the wall-clock times are
  reported — not asserted, since the GIL serializes pure-Python
  bytecode and makes wall speedup hardware-dependent.

The monitored configuration is partition-aligned: every LAT and rule
groups by ``Query.ID``, the default partition key, so each monitored
group lives entirely inside one shard (DESIGN.md section 12's alignment
contract).  Writes ``BENCH_shard.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import build_server, quick, run_workload
from repro import (EventTrace, InsertAction, LATDefinition, Rule,
                   SerialShardExecutor, ShardedSQLCM, SQLCM,
                   ThreadShardExecutor)

SHORT_QUERIES = quick(2400, 320)
JOIN_QUERIES = quick(8, 2)
N_RULES = quick(12, 6)
N_CONDITIONS = 12
SHARD_COUNTS = (1, 2, 4, 8)
SCALE_TARGET = 3.0  # throughput(8 shards) >= 3x throughput(1 shard)

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _install_monitoring(monitor) -> None:
    """Partition-aligned monitoring: everything groups by Query.ID."""
    condition = " AND ".join(
        f"Query.Duration >= {j * -1.0}" for j in range(N_CONDITIONS))
    monitor.create_lat(LATDefinition(
        name="P1_Profile",
        monitored_class="Query",
        grouping=["Query.ID AS Qid"],
        aggregations=[
            "AVG(Query.Duration) AS Avg_D",
            "MAX(Query.Duration) AS Max_D",
            "COUNT(Query.ID) AS N",
            "LAST(Query.Query_Type) AS Qtype",
        ],
    ))
    monitor.add_rule(Rule(
        name="p1_profile", event="Query.Commit",
        actions=[InsertAction("P1_Profile")],
    ))
    # unbounded LATs: a size limit makes eviction work depend on the
    # shard-local occupancy (a partition of a 64-row LAT evicts less
    # than the serial LAT does), which would break the exact
    # cost-conservation check below.  Bounded-LAT merge semantics are
    # covered by tests/test_sharding.py.
    for i in range(N_RULES):
        monitor.create_lat(LATDefinition(
            name=f"P1_LAT_{i}",
            monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS Duration",
                          "LAST(Query.Estimated_Cost) AS Cost"],
        ))
        monitor.add_rule(Rule(
            name=f"p1_rule_{i}",
            event="Query.Commit",
            condition=condition,
            actions=[InsertAction(f"P1_LAT_{i}")],
        ))


def _serial_reference():
    """Live serial run; returns (digest, trace, serial monitor cost)."""
    server, counts = build_server(track_completed=False)
    monitor = SQLCM(server)
    _install_monitoring(monitor)
    trace = EventTrace().attach(server)
    run_workload(server, counts, short=SHORT_QUERIES, joins=JOIN_QUERIES)
    trace.detach()
    return monitor.state_digest(), trace, server.monitor_cost_total


def _replay(trace, n_shards: int, executor):
    """Replay on a fresh sharded monitor; returns (digest, result, wall)."""
    server, __ = build_server(track_completed=False)
    facade = ShardedSQLCM(server, n_shards=n_shards, subscribe=False)
    _install_monitoring(facade)
    wall_start = time.perf_counter()
    result = facade.run_trace(trace, executor=executor)
    wall = time.perf_counter() - wall_start
    return facade.state_digest(), result, wall


def test_p1_shard_scaling(report, benchmark):
    state: dict = {}

    def run_all():
        digest, trace, serial_cost = _serial_reference()
        rows = []
        for n in SHARD_COUNTS:
            shard_digest, result, wall = _replay(
                trace, n, SerialShardExecutor())
            rows.append({
                "shards": n,
                "executor": "serial",
                "digest": shard_digest,
                "makespan_virtual_s": result["makespan"],
                "throughput_events_per_vs":
                    result["events"] / result["makespan"],
                "shard_events": result["shard_events"],
                "shard_costs": result["shard_costs"],
                "wall_s": wall,
            })
        thread_digest, thread_result, thread_wall = _replay(
            trace, 8, ThreadShardExecutor())
        state.update(digest=digest, trace=trace, serial_cost=serial_cost,
                     rows=rows, thread_digest=thread_digest,
                     thread_result=thread_result, thread_wall=thread_wall)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    digest = state["digest"]
    rows = state["rows"]
    by_shards = {row["shards"]: row for row in rows}

    # --- determinism proof: sharded == serial, every count, both
    # executors ---------------------------------------------------------
    for row in rows:
        assert row["digest"] == digest, \
            f"digest diverged at {row['shards']} shards"
    assert state["thread_digest"] == digest, \
        "thread executor changed the result"
    assert state["thread_result"]["makespan"] == \
        by_shards[8]["makespan_virtual_s"], \
        "virtual makespan must be executor-independent"

    # --- cost conservation: sharding moves work, never adds or drops it
    for row in rows:
        assert sum(row["shard_costs"]) == \
            pytest.approx(state["serial_cost"], rel=1e-9)

    # --- the scaling claim ---------------------------------------------
    single = by_shards[1]["throughput_events_per_vs"]
    eight = by_shards[8]["throughput_events_per_vs"]
    speedup = eight / single
    assert speedup >= SCALE_TARGET, \
        f"8-shard speedup {speedup:.2f}x below the {SCALE_TARGET}x target"

    lines = [
        "P1: sharded dispatch on the TPC-H stress workload",
        f"trace: {len(state['trace'])} events "
        f"({SHORT_QUERIES} short + {JOIN_QUERIES} join statements), "
        f"{N_RULES + 1} rules, {N_RULES + 1} Query.ID-keyed LATs",
        f"serial reference digest: {digest:#010x}",
        "shards  makespan(virt)   events/virt-s   speedup   wall(s)",
    ]
    for row in rows:
        lines.append(
            f"{row['shards']:>6}  {row['makespan_virtual_s']:>13.6f}  "
            f"{row['throughput_events_per_vs']:>14.0f}  "
            f"{row['throughput_events_per_vs'] / single:>6.2f}x  "
            f"{row['wall_s']:>7.3f}")
    lines.append(
        f"thread executor @8 shards: digest match, "
        f"wall {state['thread_wall']:.3f}s vs serial-executor "
        f"{by_shards[8]['wall_s']:.3f}s (GIL-bound; reported, not "
        f"asserted)")
    report(*lines)

    artifact = {
        "experiment": "P1",
        "config": {
            "short_queries": SHORT_QUERIES,
            "join_queries": JOIN_QUERIES,
            "rules": N_RULES + 1,
            "conditions_per_rule": N_CONDITIONS,
            "partition_key": "query",
            "scale_target": SCALE_TARGET,
        },
        "trace_events": len(state["trace"]),
        "serial_digest": digest,
        "serial_monitor_cost_virtual_s": state["serial_cost"],
        "runs": [
            {key: value for key, value in row.items()}
            for row in rows
        ],
        "thread_executor_8_shards": {
            "digest_matches": state["thread_digest"] == digest,
            "wall_s": state["thread_wall"],
            "makespan_virtual_s": state["thread_result"]["makespan"],
        },
        "speedup_8_vs_1": speedup,
        "deterministic": True,
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n",
                         encoding="utf-8")
    report(f"wrote {_ARTIFACT.name}")
