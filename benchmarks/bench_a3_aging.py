"""A3 (ablation): block-based aging aggregates (paper Section 4.3).

The paper ages LAT aggregates by grouping values into Δ-wide blocks and
dropping whole blocks, bounding extra storage by 2t/Δ instead of storing
every value.  This ablation sweeps Δ and reports, per setting: the storage
(live block count) and the worst-case relative error of the aged COUNT
against an exact sliding window — quantifying the storage/accuracy
trade-off the paper's design point picks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AgingSpec, AgingState, aggregate_function

WINDOW = 60.0
DELTAS = [1.0, 5.0, 15.0, 30.0, 60.0]
EVENTS = 3000
HORIZON = 600.0


def _event_times(seed: int = 5) -> list[float]:
    rng = np.random.default_rng(seed)
    return sorted(float(t) for t in rng.uniform(0, HORIZON, EVENTS))


def _exact_window_count(times: list[float], now: float) -> int:
    return sum(1 for t in times if now - WINDOW < t <= now)


def test_a3_aging_storage_accuracy_tradeoff(report, benchmark):
    times = _event_times()
    checkpoints = [float(t) for t in range(100, int(HORIZON), 50)]

    def sweep():
        results = []
        for delta in DELTAS:
            spec = AgingSpec(window=WINDOW, delta=delta)
            state = AgingState(aggregate_function("COUNT"), spec)
            max_blocks = 0
            worst_err = 0.0
            index = 0
            for checkpoint in checkpoints:
                while index < len(times) and times[index] <= checkpoint:
                    state.update(1.0, times[index])
                    index += 1
                max_blocks = max(max_blocks, state.block_count)
                aged = state.result(checkpoint)
                exact = _exact_window_count(times[:index], checkpoint)
                if exact:
                    worst_err = max(worst_err, abs(aged - exact) / exact)
            results.append((delta, max_blocks, spec.max_blocks, worst_err))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "A3: aging-aggregate storage/accuracy trade-off "
        f"(window t={WINDOW:.0f}s, {EVENTS} events)",
        f"{'delta':>7} {'blocks':>7} {'bound 2t/d':>11} {'worst err':>10}",
    ]
    for delta, blocks, bound, err in results:
        lines.append(f"{delta:7.1f} {blocks:7d} {bound:11d} {err:9.1%}")
    report(*lines)

    for delta, blocks, bound, err in results:
        assert blocks <= bound  # the paper's storage bound holds
        # error bounded by one block's worth of the window
        assert err <= delta / WINDOW + 0.35
    # finer blocks → more storage, less error (monotone trade-off)
    block_counts = [blocks for __, blocks, __, __ in results]
    errors = [err for __, __, __, err in results]
    assert block_counts[0] > block_counts[-1]
    assert errors[0] <= errors[-1]


def test_a3_aging_update_wall_time(benchmark):
    spec = AgingSpec(window=WINDOW, delta=5.0)
    state = AgingState(aggregate_function("AVG"), spec)
    times = _event_times()

    def run():
        for i, t in enumerate(times):
            state.update(float(i % 100), t)
        return state.result(times[-1])

    result = benchmark(run)
    assert result is not None
