"""Shared infrastructure for the experiment benchmarks.

Each ``bench_eN_*`` file regenerates one table/figure from the paper's
Section 6.2 (see DESIGN.md's per-experiment index).  The printed tables
report *virtual-time* overheads — the quantity the paper measures — while
pytest-benchmark's own timings capture the Python wall cost of the same
code paths.

Scale note: workload sizes default to ~1/10 of the paper's (the paper runs
20,000 queries against a 6M-row lineitem on a dedicated 2000-era server).
Relative overheads are determined by per-query operation counts, not by
workload length, so the shape survives the scaling; EXPERIMENTS.md records
paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CostModel, DatabaseServer, ServerConfig
from repro.workloads import TPCHConfig, WorkloadMix, mixed_paper_workload
from repro.workloads.generator import lineitem_key_sample
from repro.workloads.tpch import setup_tpch

#: TPC-H scale for benchmarks: 12k lineitem (paper: 6M)
BENCH_TPCH = TPCHConfig().scaled(0.2)

#: set by ``--quick`` (CI smoke runs): bench modules shrink their grids
#: via :func:`quick` so every figure still exercises its code path in
#: seconds instead of minutes.  Overhead *assertions* stay active either
#: way — only grid extents and repetition counts shrink.
QUICK = False


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink benchmark grids to smoke-test size (CI)")


def pytest_configure(config):
    global QUICK
    QUICK = config.getoption("--quick", default=False)


def quick(full, small):
    """Pick the smoke-test value under ``--quick``, the full value
    otherwise.  Usable at bench-module import time: pytest loads this
    conftest (and runs ``pytest_configure``) before collecting modules."""
    return small if QUICK else full


def figure3_cost_model() -> CostModel:
    """Cost model for E3: join queries last ~1s (as multi-second queries
    did on the paper's 6M-row tables), synchronous log writes cost what a
    forced disk write did in 2000 relative to a short query, and the buffer
    pool sits near the working set so PULL_history's server-side history
    (fat rows: full query text) visibly evicts cache pages at low polling
    rates — the paper's "tuning problem"."""
    return replace(
        CostModel(),
        table_scan_per_row=80e-6,
        hash_build_per_row=5e-6,
        hash_probe_per_row=4e-6,
        log_write_row_sync=3.2e-3,
        buffer_pool_pages=200,
        history_rows_per_page=10,
    )


def build_server(costs: CostModel | None = None,
                 track_completed: bool = True) -> tuple[DatabaseServer, dict]:
    config = ServerConfig(track_completed_queries=track_completed)
    if costs is not None:
        config.costs = costs
    server = DatabaseServer(config)
    counts = setup_tpch(server, BENCH_TPCH)
    return server, counts


def run_workload(server, counts, *, short: int, joins: int,
                 join_rows=(1000, 2000), seed: int = 7,
                 application: str = "workload") -> float:
    """Run the paper's mixed workload; returns virtual elapsed seconds."""
    keys = lineitem_key_sample(server, 200)
    mix = WorkloadMix(short_queries=short, join_queries=joins,
                      join_rows_low=join_rows[0], join_rows_high=join_rows[1],
                      seed=seed)
    statements = mixed_paper_workload(
        mix, orders_rows=counts["orders"],
        lineitem_rows=counts["lineitem"], lineitem_keys=keys)
    session = server.create_session(application=application)
    start = server.clock.now
    proc = session.submit_script(statements)
    # run until the workload finishes: pollers and timers may loop forever
    server.scheduler.run_until_done(proc)
    errors = [r.error for r in session.results if r.error]
    assert not errors, f"workload errors: {errors[:3]}"
    return server.clock.now - start


@pytest.fixture
def report(capsys):
    """Print a results table so it survives pytest's output capture."""
    def _print(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)
    return _print
