"""C1: chaos drill suite — closed-loop recovery under injected failures.

Not a paper experiment — this bench guards the robustness extension built
on the paper's machinery: the monitoring rules, stream queries, and
governor that Sections 3-5 reproduce are wired into a closed loop
(incident manager + auto-remediator), and each registered chaos scenario
injects one failure mode the loop must detect, remediate, and fully
recover from:

* ``blocking_storm``     — a blocking chain; blocked blockers cancelled;
* ``deadlock_cascade``   — deadlock waves; engine self-heals, the stream
  HAVING alert opens the incident, remediation stays idle;
* ``runaway_query``      — a long-blocked reader cancelled by duration;
* ``hot_row_contention`` — a write convoy that exhausts the remediation
  budget (honest-failure + suppression path);
* ``overload_spike``     — a hostile rule breaches the 4% envelope; the
  governor reacts and the remediator quarantines the hog rule.

For every scenario the bench asserts full recovery (incident resolved,
lock graph empty, overhead inside the scenario ceiling) and reports
time-to-detect / time-to-remediate / time-to-recover.  The whole suite is
run twice with the same seed and must be bit-identical per the chaos
determinism contract (``timeline_digest`` plus the full result dict).

Writes ``BENCH_chaos.json`` (per-scenario recovery timings, remediation
outcomes, and digests) next to the repo's other bench artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import quick
from repro.chaos import SCENARIOS, run_suite

#: quick mode shrinks each scenario's optional load (victim count,
#: deadlock waves, spike volume), not its core failure shape — the
#: recovery assertions stay identical either way.
QUICK_DRILLS = quick(False, True)
SEED = 1301

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def test_c1_chaos_suite_recovers(report, benchmark):
    results: dict = {}

    def run_twice():
        results["first"] = run_suite(seed=SEED, quick=QUICK_DRILLS)
        results["second"] = run_suite(seed=SEED, quick=QUICK_DRILLS)

    benchmark.pedantic(run_twice, rounds=1, iterations=1)

    first, second = results["first"], results["second"]
    assert set(first) == set(SCENARIOS), "a registered drill did not run"

    lines = [
        "C1: chaos drill suite (seed %d%s)"
        % (SEED, ", quick" if QUICK_DRILLS else ""),
        f"{'scenario':<20} {'detect':>7} {'remediate':>9} "
        f"{'recover':>8}  outcomes",
    ]
    artifact = {"seed": SEED, "quick": QUICK_DRILLS, "scenarios": {}}
    for name, result in first.items():
        # --- recovery invariants (per scenario) --------------------------
        assert result.ok, f"{name} failed: {result.failures}"
        assert result.time_to_detect is not None, f"{name}: never detected"
        assert result.time_to_recover is not None, f"{name}: never recovered"
        assert result.time_to_detect <= result.time_to_recover
        # remediation, where attempted, must not precede detection
        if result.time_to_remediate is not None:
            assert result.time_to_detect <= result.time_to_remediate

        # --- determinism: second run is bit-identical --------------------
        assert result.timeline_digest == second[name].timeline_digest, \
            f"{name}: same-seed runs produced different incident timelines"
        assert result.to_dict() == second[name].to_dict(), \
            f"{name}: same-seed runs diverged outside the timeline"

        outcomes = ", ".join(
            f"{k}={v}" for k, v in sorted(result.remediation_outcomes.items())
        ) or "none"
        remediate = ("%7.2fs" % result.time_to_remediate
                     if result.time_to_remediate is not None else "      -")
        lines.append(
            f"{name:<20} {result.time_to_detect:>6.2f}s {remediate:>9} "
            f"{result.time_to_recover:>7.2f}s  {outcomes}")
        artifact["scenarios"][name] = result.to_dict()

    report(*lines)
    _ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True))
