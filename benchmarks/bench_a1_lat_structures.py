"""A1 (ablation): the LAT's hash + ordered-eviction structure vs a naive
list-based LAT.

The paper (Section 6.1) stores LATs as "a heap structure on the ordering
columns and a hash array on the grouping columns for fast row lookup".
This ablation compares insert and lookup wall time against
:class:`~repro.core.lat.NaiveListLAT` (linear membership probe + full
re-sort per insert) to show why the structure matters once LATs see every
query on a busy server.
"""

from __future__ import annotations

import pytest

from repro.core.lat import LAT, LATDefinition, NaiveListLAT
from repro.sim import SimClock

GROUPS = 200
INSERTS = 2000


def _definition() -> LATDefinition:
    return LATDefinition(
        name="A1",
        monitored_class="Query",
        grouping=["Query.ID AS G"],
        aggregations=["COUNT(Query.Duration) AS N",
                      "AVG(Query.Duration) AS D"],
        ordering=["D DESC"],
        max_rows=GROUPS // 2,
    )


def _records():
    return [{"id": i % GROUPS, "duration": float(i % 37)}
            for i in range(INSERTS)]


@pytest.mark.parametrize("structure", [LAT, NaiveListLAT],
                         ids=["hash+ordered (paper)", "naive list"])
def test_a1_insert_throughput(benchmark, structure):
    records = _records()

    def run():
        lat = structure(_definition(), SimClock())
        for record in records:
            lat.insert(record)
        return lat

    lat = benchmark(run)
    assert len(lat) == GROUPS // 2


@pytest.mark.parametrize("structure", [LAT, NaiveListLAT],
                         ids=["hash+ordered (paper)", "naive list"])
def test_a1_lookup_throughput(benchmark, structure):
    lat = structure(_definition(), SimClock())
    for record in _records():
        lat.insert(record)
    keys = [(i,) for i in range(GROUPS)]

    def run():
        hits = 0
        for key in keys:
            if lat.lookup(key) is not None:
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits == GROUPS // 2


def test_a1_structures_agree(report, benchmark):
    """Correctness guard: both structures produce identical contents."""
    def run():
        fast = LAT(_definition(), SimClock())
        naive = NaiveListLAT(_definition(), SimClock())
        for record in _records():
            fast.insert(record)
            naive.insert(record)
        return fast, naive

    fast, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast.rows() == naive.rows()
    report("A1: both LAT structures agree on "
           f"{len(fast)} rows after {INSERTS} inserts")
