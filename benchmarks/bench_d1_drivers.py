"""D1: the paper's accuracy-vs-interval curve against a *real* database.

Every other experiment runs on the virtual-clock engine; D1 reruns the
Figure 3 comparison with the sqlite3 probe driver, monitoring an actual
database file.  The workload mixes four duration tiers — microsecond PK
lookups, ~0.1s scans, ~0.4s partial joins, multi-second joins — and two
monitors watch it side by side:

* **probe** (SQLCM): event-driven Top-K tracker riding the driver's
  ``query.commit`` stream — sees every completion, regardless of length;
* **PULL**: snapshot polling of ``active_queries`` at each grid interval,
  riding the driver's tick listener (sqlite has no scheduler to spawn a
  poller on).

The sqlite driver's clock is deterministic (VM-progress ticks), so the
curve is bit-stable across runs: the probe misses none of the true top-k
at any interval, while PULL's misses grow as the interval passes each
duration tier — queries shorter than the polling interval vanish.

Writes ``BENCH_driver.json`` (per-interval miss counts, truth durations,
probe-cost estimate) next to the repo's other bench artifacts.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from benchmarks.conftest import quick
from repro import SQLCM
from repro.apps.topk import TopKTracker
from repro.drivers import SQLiteDriver
from repro.monitoring import PullMonitor, missed_top_k, top_k_ground_truth

ROWS = quick(2000, 800)
K = 8
#: WHERE bounds for the join tiers (pair count ~ bound², so the big tier
#: runs seconds of virtual time and the medium tier a few tenths)
BIG_BOUND = quick(300, 150)
MEDIUM_BOUND = quick(80, 50)
SHORTS_PER_LONG = 4
INTERVALS = quick((0.005, 0.02, 0.1, 0.5), (0.002, 0.25))

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_driver.json"


def _build_database(path: str) -> SQLiteDriver:
    driver = SQLiteDriver(path)
    # load through a dedicated application so ground truth can exclude
    # setup statements (the monitors never see them either — they attach
    # after the build)
    loader = driver.connect(user="dbo", application="loader")
    result = loader.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b REAL)")
    assert result.ok, result.error
    for lo in range(1, ROWS + 1, 500):
        hi = min(lo + 500, ROWS + 1)
        values = ", ".join(f"({i}, {float(i)})" for i in range(lo, hi))
        assert loader.execute("INSERT INTO t VALUES " + values).ok
    loader.close()
    return driver


def _long_queries() -> list[str]:
    """The true top-k population: two big joins, three medium joins,
    three full scans (distinct literals keep the query ids distinct
    while the template — and so the signature — stays shared per tier)."""
    big = [f"SELECT sum(t1.b) FROM t t1, t t2 "
           f"WHERE t1.a < {BIG_BOUND + j} AND t2.a < {BIG_BOUND + j}"
           for j in range(2)]
    medium = [f"SELECT sum(t1.b) FROM t t1, t t2 "
              f"WHERE t1.a < {MEDIUM_BOUND + j} AND t2.a < {MEDIUM_BOUND + j}"
              for j in range(3)]
    small = [f"SELECT sum(b) FROM t WHERE a > {j}" for j in range(3)]
    return big + medium + small


def _run_workload(driver: SQLiteDriver) -> None:
    i = 0
    for sql in _long_queries():
        for __ in range(SHORTS_PER_LONG):
            i += 1
            result = driver.execute(
                f"SELECT b FROM t WHERE a = {i % ROWS + 1}")
            assert result.ok, result.error
        result = driver.execute(sql)
        assert result.ok, result.error


def _one_interval(tmp_path, interval: float) -> dict:
    driver = _build_database(str(tmp_path / f"d1_{interval}.db"))
    try:
        sqlcm = SQLCM(driver=driver)
        tracker = TopKTracker(sqlcm, k=K)
        pull = PullMonitor(driver, interval)
        pull.start()
        _run_workload(driver)
        pull.stop()
        truth = top_k_ground_truth(
            driver, K, exclude_apps=("query_logging", "monitor", "loader"))
        return {
            "interval": interval,
            "probe_missed": missed_top_k(truth, tracker.top_k(K)),
            "pull_missed": missed_top_k(truth, pull.top_k(K)),
            "pull_polls": pull.poll_count,
            "truth_durations": [round(dur, 6) for __, __unused, dur in truth],
            "probe_cost_estimate": driver.probe_cost,
            "vm_ticks": driver.vm_ticks,
        }
    finally:
        driver.close()


def test_d1_probe_beats_polling_at_every_interval(report, benchmark,
                                                  tmp_path):
    """Figure 3 on sqlite: probe misses nothing, PULL decays with the
    interval."""
    rows: list[dict] = []

    def run_grid():
        rows.clear()
        for interval in INTERVALS:
            rows.append(_one_interval(tmp_path, interval))

    benchmark.pedantic(run_grid, rounds=1, iterations=1)

    for row in rows:
        assert row["probe_missed"] == 0, \
            f"probe missed top-k queries at interval {row['interval']}"
        assert row["pull_missed"] >= row["probe_missed"]
    assert rows[0]["pull_missed"] == 0, \
        "finest polling should still catch the whole top-k"
    assert rows[-1]["pull_missed"] >= 2, \
        "coarse polling must miss the short-duration tiers"

    lines = [f"D1: top-{K} misses on sqlite3 {sqlite3.sqlite_version} "
             f"({ROWS} rows)",
             f"{'interval':>10}  {'probe':>6}  {'pull':>5}  {'polls':>6}"]
    for row in rows:
        lines.append(f"{row['interval']:>10}  {row['probe_missed']:>6}  "
                     f"{row['pull_missed']:>5}  {row['pull_polls']:>6}")
    report(*lines)

    artifact = {
        "experiment": "D1",
        "backend": f"sqlite3 {sqlite3.sqlite_version}",
        "config": {
            "rows": ROWS,
            "k": K,
            "big_bound": BIG_BOUND,
            "medium_bound": MEDIUM_BOUND,
            "shorts_per_long": SHORTS_PER_LONG,
        },
        "intervals": rows,
    }
    _ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n",
                         encoding="utf-8")
    report(f"wrote {_ARTIFACT.name}")


def test_d1_probe_curve_is_deterministic(report, benchmark, tmp_path):
    """The driver's VM-tick clock makes the whole experiment replayable:
    two runs at the same interval agree on every duration and miss."""
    interval = INTERVALS[len(INTERVALS) // 2]
    fingerprints: list[tuple] = []

    def run_twice():
        fingerprints.clear()
        for attempt in range(2):
            row = _one_interval(tmp_path / f"run{attempt}", interval)
            fingerprints.append((
                tuple(row["truth_durations"]), row["pull_missed"],
                row["probe_missed"], row["pull_polls"], row["vm_ticks"],
            ))

    (tmp_path / "run0").mkdir()
    (tmp_path / "run1").mkdir()
    benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert fingerprints[0] == fingerprints[1], \
        "sqlite probe timings must be a pure function of VM work"
    report(f"D1 replay: interval {interval} bit-identical across runs "
           f"({fingerprints[0][4]} VM ticks)")
    if _ARTIFACT.exists():
        data = json.loads(_ARTIFACT.read_text(encoding="utf-8"))
        data["replay_stable"] = True
        _ARTIFACT.write_text(json.dumps(data, indent=2) + "\n",
                             encoding="utf-8")
