"""O1: overhead of the self-observability layer.

Not a paper experiment — this bench guards the paper's Figure 2 envelope
after the observability work: with the layer enabled, every dispatch gets
an attribution frame + span, every rule an attribution frame, every LAT
insert a frame + span + metric updates, and every pool charge a tally into
the per-component attribution map.  The paper's < 4% overhead claim at
full monitoring load must survive all of that *while the layer is on* —
and cost exactly nothing extra while it is off (the shipping default).

Three configurations over the E2-style workload (short selects, per-rule
LATs):

* ``monitored`` — rules installed, observability off (the E2 setup as it
  now runs; ``server.obs`` is the null object).
* ``observed``  — same rules with ``server.enable_observability()``:
  attribution, spans, and metrics all collecting and self-charging.
* The bench also asserts the conservation invariant on the observed run:
  per-component attributed costs sum to the monitor-pool total.
"""

from __future__ import annotations

import math

from benchmarks.conftest import build_server, quick, run_workload
from repro import InsertAction, LATDefinition, Rule, SQLCM

SHORT_QUERIES = quick(300, 40)
N_RULES = quick(100, 12)
N_CONDITIONS = 5


def _install_rules(sqlcm: SQLCM) -> None:
    for i in range(N_RULES):
        sqlcm.create_lat(LATDefinition(
            name=f"O1_LAT_{i}",
            monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS Duration"],
            ordering=["Qid DESC"],
            max_rows=10,
        ))
        condition = " AND ".join(
            [f"Query.Duration >= {j * -1.0}" for j in range(N_CONDITIONS)]
        )
        sqlcm.add_rule(Rule(
            name=f"o1_rule_{i}",
            event="Query.Commit",
            condition=condition,
            actions=[InsertAction(f"O1_LAT_{i}")],
        ))


def _elapsed(monitored: bool, observed: bool):
    server, counts = build_server(track_completed=False)
    if observed:
        server.enable_observability()
    sqlcm = None
    if monitored:
        sqlcm = SQLCM(server)
        _install_rules(sqlcm)
    elapsed = run_workload(server, counts, short=SHORT_QUERIES, joins=0)
    return elapsed, server, sqlcm


def test_o1_observability_overhead(report, benchmark):
    results: dict[str, float] = {}
    pools: dict[str, float] = {}
    servers: dict[str, object] = {}

    def run_all():
        base, __, __sqlcm = _elapsed(False, False)
        for label, observed in [("monitored", False), ("observed", True)]:
            elapsed, server, __sqlcm = _elapsed(True, observed)
            results[label] = 100.0 * (elapsed - base) / base
            pools[label] = server.monitor_cost_total
            servers[label] = server
        return base

    base = benchmark.pedantic(run_all, rounds=1, iterations=1)

    observed = servers["observed"]
    attribution = observed.obs.attribution
    attributed = attribution.attributed_total()
    pool = observed.monitor_cost_total
    obs_tax = 100.0 * (pools["observed"] - pools["monitored"]) \
        / pools["monitored"]
    top = attribution.top(3)

    lines = [
        "O1: self-observability layer overhead "
        f"({N_RULES} rules x {N_CONDITIONS} conditions, "
        f"{SHORT_QUERIES} short selects)",
        f"baseline: {base:.3f}s virtual",
        f"monitored (observability off): {results['monitored']:.2f}%",
        f"observed  (attribution+spans+metrics): {results['observed']:.2f}%",
        f"observability tax on the monitor pool: {obs_tax:.2f}% "
        f"({pools['monitored'] * 1e3:.3f}ms -> "
        f"{pools['observed'] * 1e3:.3f}ms)",
        f"conservation: pool={pool * 1e6:.3f}us "
        f"attributed={attributed * 1e6:.3f}us",
        "top offenders: " + ", ".join(
            f"{kind}:{name}={cost * 1e6:.1f}us" for kind, name, cost, __
            in top),
        "paper envelope (Figure 2): < 4%",
    ]
    report(*lines)

    # the null-object path must not move the needle at all: identical
    # monitoring work => identical pool charges when observability is off
    assert results["monitored"] < 4.0
    # the instrumented instrument must stay inside the paper's envelope
    assert results["observed"] < 4.0
    # conservation invariant: every pool charge landed in some component
    assert math.isclose(attributed, pool, rel_tol=1e-9)
    # attribution found the paper's "biggest factor": a LAT leads the board
    assert top and top[0][0] in ("lat", "rule")


def test_o1_disabled_is_free(report):
    """Observability off (the default) adds zero virtual cost: the pool
    total is bit-identical with and without the layer importable."""
    __, server_off, __x = _elapsed(True, False)
    __, server_on, __y = _elapsed(True, True)
    assert not server_off.observability_enabled
    assert server_on.observability_enabled
    # same seed + same workload: the off run's pool must match a repeat
    # off run exactly (no hidden state), and the on run must be strictly
    # larger (the layer charges for itself)
    __, server_off2, __z = _elapsed(True, False)
    assert server_off.monitor_cost_total == server_off2.monitor_cost_total
    assert server_on.monitor_cost_total > server_off.monitor_cost_total
    report(
        "O1: disabled-observability check",
        f"pool (off): {server_off.monitor_cost_total * 1e3:.6f}ms "
        f"(repeat: {server_off2.monitor_cost_total * 1e3:.6f}ms)",
        f"pool (on):  {server_on.monitor_cost_total * 1e3:.6f}ms",
    )
