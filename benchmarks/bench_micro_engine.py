"""Engine micro-benchmarks: the hot paths under every experiment.

Wall-time (pytest-benchmark) measurements of the substrate operations whose
virtual costs the experiments charge: point selects through the full
pipeline, DML, lock acquisition, condition evaluation, and event dispatch
with an attached SQLCM.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server
from repro import Rule, SQLCM
from repro.core.actions import CallbackAction
from repro.core.condition import bind_condition
from repro.core.objects import MonitoredObject
from repro.core.schema import SCHEMA
from repro.engine.locks import LockManager
from repro.sim import SimClock


def test_micro_point_select(benchmark):
    server, __ = build_server(track_completed=False)
    session = server.create_session()
    sql = "SELECT o_totalprice FROM orders WHERE o_orderkey = 7"
    session.execute(sql)  # warm plan cache

    benchmark(lambda: session.execute(sql))


def test_micro_point_update(benchmark):
    server, __ = build_server(track_completed=False)
    session = server.create_session()
    sql = "UPDATE orders SET o_totalprice = o_totalprice + 1 " \
          "WHERE o_orderkey = 7"
    session.execute(sql)

    benchmark(lambda: session.execute(sql))


def test_micro_range_join(benchmark):
    server, __ = build_server(track_completed=False)
    session = server.create_session()
    sql = ("SELECT l.l_extendedprice, o.o_totalprice FROM lineitem l "
           "JOIN orders o ON l.l_orderkey = o.o_orderkey "
           "WHERE l.l_orderkey BETWEEN 100 AND 140")
    session.execute(sql)

    result = benchmark(lambda: session.execute(sql))
    assert result.rows


def test_micro_lock_grant_release(benchmark):
    locks = LockManager(SimClock())

    def cycle():
        for i in range(100):
            locks.request(1, ("row", "t", i), "X")
        locks.release_all(1)

    benchmark(cycle)


def test_micro_condition_eval(benchmark):
    compiled = bind_condition(
        "Query.Duration > 5 * Query.Estimated_Cost AND "
        "Query.Times_Blocked = 0 AND Query.Query_Type = 'SELECT'",
        SCHEMA, set(), lambda name: set(),
    )
    obj = MonitoredObject(SCHEMA.monitored_class("Query"), {}, {
        "duration": 10.0, "estimated_cost": 1.0, "times_blocked": 0,
        "query_type": "SELECT",
    })
    context = {"query": obj}

    def evaluate():
        return compiled.evaluate(context, {})

    assert benchmark(evaluate) is True


def test_micro_event_dispatch_with_sqlcm(benchmark):
    server, __ = build_server(track_completed=False)
    sqlcm = SQLCM(server)
    hits = []
    sqlcm.add_rule(Rule(
        name="r", event="Query.Commit",
        condition="Query.Duration >= 0",
        actions=[CallbackAction(lambda s, c: hits.append(1))],
    ))
    session = server.create_session()
    sql = "SELECT o_totalprice FROM orders WHERE o_orderkey = 3"
    session.execute(sql)

    benchmark(lambda: session.execute(sql))
    assert hits
