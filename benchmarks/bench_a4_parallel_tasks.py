"""A4 (ablation): multiple monitoring tasks in parallel.

The paper's closing observation for Figure 3: "differences between SQLCM
and the other techniques will add up when multiple monitoring tasks are
executed in parallel."  This bench stacks 1..4 concurrent monitoring tasks
and measures how total overhead grows for SQLCM (rule-based tasks on one
engine) versus the event-logging alternative (one reporting stream per
task).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server, run_workload
from repro import SQLCM
from repro.apps import (BlockingAnalyzer, OutlierDetector, TopKTracker,
                        UsageAuditor)
from repro.monitoring import QueryLoggingMonitor

SHORT = 400

_TASK_FACTORIES = [
    lambda sqlcm: TopKTracker(sqlcm, k=10),
    lambda sqlcm: OutlierDetector(sqlcm),
    lambda sqlcm: UsageAuditor(sqlcm, period=3600.0),
    lambda sqlcm: BlockingAnalyzer(sqlcm),
]


def _sqlcm_elapsed(n_tasks: int) -> float:
    server, counts = build_server(track_completed=False)
    if n_tasks:
        sqlcm = SQLCM(server)
        for factory in _TASK_FACTORIES[:n_tasks]:
            factory(sqlcm)
    return run_workload(server, counts, short=SHORT, joins=0)


def _logging_elapsed(n_tasks: int) -> float:
    server, counts = build_server(track_completed=False)
    for i in range(n_tasks):
        QueryLoggingMonitor(server, table_name=f"task_log_{i}")
    return run_workload(server, counts, short=SHORT, joins=0)


def test_a4_parallel_monitoring_tasks(report, benchmark):
    results = {}

    def run_all():
        base = _sqlcm_elapsed(0)
        for n in (1, 2, 3, 4):
            results[("sqlcm", n)] = \
                100.0 * (_sqlcm_elapsed(n) - base) / base
            results[("logging", n)] = \
                100.0 * (_logging_elapsed(n) - base) / base
        return base

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "A4: overhead (%) as monitoring tasks stack up "
        f"({SHORT} short queries)",
        f"{'tasks':>6} {'SQLCM':>9} {'event logging':>14}",
    ]
    for n in (1, 2, 3, 4):
        lines.append(f"{n:>6} {results[('sqlcm', n)]:8.3f}% "
                     f"{results[('logging', n)]:13.2f}%")
    lines.append("paper: the gap 'adds up when multiple monitoring tasks "
                 "are executed in parallel'")
    report(*lines)

    # logging overhead grows by tens of percent per task; SQLCM stays tiny
    for n in (1, 2, 3, 4):
        assert results[("logging", n)] > 15 * n
        assert results[("sqlcm", n)] < 1.0
    # both grow roughly additively
    assert results[("logging", 4)] > 2.5 * results[("logging", 1)]
    assert results[("sqlcm", 4)] > results[("sqlcm", 1)]
