"""E1 (Section 6.2.1): overhead of signature computation.

Paper finding: signature computation, measured relative to total
*optimization* time, costs 0.5% for single-line selections without
conditions and falls to 0.011% for complex TPC-H queries — i.e. the
relative cost *decreases* with query complexity, because optimizer search
grows much faster than the linear tree linearization.

This bench compiles a suite of queries of increasing complexity and
reports, per query: the virtual optimization cost, the virtual signature
cost, and their ratio.  pytest-benchmark additionally times the Python
signature computation itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server
from repro.core.signatures import (linearize_logical, linearize_physical,
                                   digest)
from repro.engine.planner.logical import build_logical_plan, walk_logical
from repro.engine.planner.physical import plan_node_count, walk_physical
from repro.engine.sqlparse.parser import parse_statement

# complexity ladder: trivial selection → multi-join aggregate
QUERY_SUITE = [
    ("single-row selection, no condition",
     "SELECT l_extendedprice FROM lineitem"),
    ("single-row point selection",
     "SELECT l_extendedprice FROM lineitem "
     "WHERE l_orderkey = 5 AND l_linenumber = 1"),
    ("selection with 4 predicates",
     "SELECT l_extendedprice, l_quantity FROM lineitem "
     "WHERE l_orderkey > 10 AND l_quantity > 5 AND l_discount < 0.05 "
     "AND l_partkey = 17"),
    ("2-table join",
     "SELECT l.l_extendedprice, o.o_totalprice FROM lineitem l "
     "JOIN orders o ON l.l_orderkey = o.o_orderkey "
     "WHERE o.o_totalprice > 1000"),
    ("3-table join with aggregation (TPC-H style)",
     "SELECT o.o_orderstatus, COUNT(*), SUM(l.l_extendedprice), "
     "AVG(p.p_retailprice) FROM lineitem l "
     "JOIN orders o ON l.l_orderkey = o.o_orderkey "
     "JOIN part p ON l.l_partkey = p.p_partkey "
     "WHERE l.l_quantity > 10 AND o.o_totalprice > 500 "
     "GROUP BY o.o_orderstatus ORDER BY COUNT(*) DESC"),
]


def _compile_costs(server, sql: str) -> tuple[float, float]:
    """(virtual optimization cost, virtual signature cost) for one query."""
    costs = server.costs
    stmt = parse_statement(sql)
    logical = build_logical_plan(stmt, server.catalog)
    physical = server.optimizer.optimize(logical)
    nodes = plan_node_count(physical)
    joins = sum(1 for n in walk_physical(physical)
                if type(n).__name__ in ("PhysHashJoin", "PhysNLJoin"))
    optimize_cost = (costs.optimize_base + costs.optimize_per_node * nodes
                     + costs.optimize_search_per_join * (2 ** joins - 1))
    logical_nodes = sum(1 for __ in walk_logical(logical))
    signature_cost = costs.signature_per_node * (logical_nodes + nodes)
    # sanity: the signatures actually compute
    assert digest(linearize_logical(logical))
    assert digest(linearize_physical(physical))
    return optimize_cost, signature_cost


def test_e1_signature_overhead_table(report, benchmark):
    server, __ = build_server()
    lines = [
        "E1: signature computation relative to optimization time",
        f"{'query':<48} {'optimize':>10} {'signature':>10} {'ratio':>8}",
    ]
    ratios = []

    def run_suite():
        return [(name,) + _compile_costs(server, sql)
                for name, sql in QUERY_SUITE]

    suite_costs = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    for name, optimize_cost, signature_cost in suite_costs:
        ratio = 100.0 * signature_cost / optimize_cost
        ratios.append(ratio)
        lines.append(
            f"{name:<48} {optimize_cost * 1e3:9.2f}ms "
            f"{signature_cost * 1e6:8.1f}us {ratio:7.3f}%"
        )
    lines.append(
        f"paper: 0.5% (trivial) .. 0.011% (complex); "
        f"measured: {ratios[0]:.3f}% .. {ratios[-1]:.3f}%"
    )
    report(*lines)
    # the paper's shape: small everywhere, decreasing with complexity
    assert ratios[0] < 2.0
    assert ratios[-1] < ratios[0] / 5
    assert ratios[-1] < 0.1


@pytest.mark.parametrize("name,sql", QUERY_SUITE,
                         ids=[n for n, __ in QUERY_SUITE])
def test_e1_signature_wall_time(benchmark, name, sql):
    """Wall time of the actual linearization+digest per query."""
    server, __ = build_server()
    stmt = parse_statement(sql)
    logical = build_logical_plan(stmt, server.catalog)
    physical = server.optimizer.optimize(logical)

    def compute():
        return (digest(linearize_logical(logical)),
                digest(linearize_physical(physical)))

    logical_sig, physical_sig = benchmark(compute)
    assert len(logical_sig) == 20 and len(physical_sig) == 20
