"""E2 (Figure 2): overhead of rule evaluation and LAT maintenance.

Paper setup: 10,000 short single-row clustered-index selects on lineitem;
100-1000 rules, *all* evaluated on every query, each with 1-20 atomic
conditions and each maintaining its own fixed-size in-memory LAT storing
all attributes (incl. query text) of the last 10 queries seen, indexed by
signature id.

Paper findings: overhead < 4% even at 1000 rules × 20 conditions; overhead
scales with the number of rules; condition complexity has little impact —
LAT maintenance is the biggest factor.

This bench reruns the grid at 1/20 of the query count (percentages are
per-query ratios, so the workload length cancels out) and prints the
Figure 2 matrix.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server, quick, run_workload
from repro import InsertAction, LATDefinition, Rule, SQLCM

SHORT_QUERIES = quick(300, 120)
RULE_COUNTS = quick([100, 250, 500, 1000], [100, 300])
CONDITION_COUNTS = quick([1, 5, 10, 20], [1, 5])


def _install_rules(sqlcm: SQLCM, n_rules: int, n_conditions: int) -> None:
    """The paper's E2 monitoring load: per-rule conditions + per-rule LAT
    keeping the last 10 queries' attributes, keyed by query id."""
    for i in range(n_rules):
        sqlcm.create_lat(LATDefinition(
            name=f"E2_LAT_{i}",
            monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=[
                "LAST(Query.Query_Text) AS Text",
                "LAST(Query.Duration) AS Duration",
                "LAST(Query.Estimated_Cost) AS Cost",
                "LAST(Query.Query_Type) AS Qtype",
            ],
            ordering=["Qid DESC"],  # keep the 10 most recent
            max_rows=10,
        ))
        condition = " AND ".join(
            [f"Query.Duration >= {j * -1.0}" for j in range(n_conditions)]
        )
        sqlcm.add_rule(Rule(
            name=f"e2_rule_{i}",
            event="Query.Commit",
            condition=condition,
            actions=[InsertAction(f"E2_LAT_{i}")],
        ))


def _elapsed(n_rules: int, n_conditions: int) -> float:
    server, counts = build_server(track_completed=False)
    if n_rules:
        sqlcm = SQLCM(server)
        _install_rules(sqlcm, n_rules, n_conditions)
    return run_workload(server, counts, short=SHORT_QUERIES, joins=0)


def test_e2_rule_overhead_grid(report, benchmark):
    results: dict[tuple[int, int], float] = {}

    def run_grid():
        base = _elapsed(0, 0)
        for rules in RULE_COUNTS:
            for conditions in CONDITION_COUNTS:
                elapsed = _elapsed(rules, conditions)
                results[(rules, conditions)] = \
                    100.0 * (elapsed - base) / base
        return base

    base = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    lines = [
        "E2 (Figure 2): workload overhead (%) from rule evaluation + LAT "
        "maintenance",
        f"baseline: {SHORT_QUERIES} short selects in {base:.3f}s virtual",
        f"{'rules':>6} | " + " ".join(f"{c:>7}c" for c in CONDITION_COUNTS),
    ]
    for rules in RULE_COUNTS:
        row = " ".join(f"{results[(rules, c)]:7.2f}%"
                       for c in CONDITION_COUNTS)
        lines.append(f"{rules:>6} | {row}")
    worst = max(results.values())
    lines.append(f"paper: < 4% at 1000 rules x 20 conditions; "
                 f"measured worst: {worst:.2f}%")
    report(*lines)

    # Figure 2's three findings (grid extents vary under --quick, so the
    # comparisons use the grid's own corners)
    least_rules, most_rules = RULE_COUNTS[0], RULE_COUNTS[-1]
    least_conds, most_conds = CONDITION_COUNTS[0], CONDITION_COUNTS[-1]
    assert worst < 4.0
    for conditions in CONDITION_COUNTS:  # overhead grows with rule count
        assert results[(least_rules, conditions)] \
            < results[(most_rules, conditions)]
    # condition complexity is a smaller factor than rule count
    complexity_spread = results[(most_rules, most_conds)] \
        - results[(most_rules, least_conds)]
    rule_spread = results[(most_rules, least_conds)] \
        - results[(least_rules, least_conds)]
    assert complexity_spread < rule_spread


def test_e2_single_rule_eval_wall_time(benchmark):
    """Wall time of one event dispatch through 100 rules (the hot path)."""
    server, counts = build_server(track_completed=False)
    sqlcm = SQLCM(server)
    _install_rules(sqlcm, 100, 5)
    session = server.create_session()
    session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    def one_query():
        session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    benchmark(one_query)
    assert sqlcm.rule_firings > 0
