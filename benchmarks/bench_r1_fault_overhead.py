"""R1: overhead of the fault-isolation layer (robustness extension).

Not a paper experiment — this bench guards the paper's Figure 2 envelope
after the resilience work: every rule evaluation now passes through an
isolation boundary (quarantine check, per-combination try/except,
side-effect retry).  The paper's < 4% overhead claim at full monitoring
load must survive that machinery.

Three configurations over the E2-style workload (short selects, per-rule
LATs):

* ``monitored`` — rules installed, no fault injector (the E2 setup as it
  now runs, isolation boundary included).
* ``armed``     — a :class:`~repro.core.resilience.FaultInjector` attached
  and armed at **every** site with rate 0.0: measures the pure cost of
  fault-checking on the hot path.
* ``faulty``    — 10% exception faults at every site.  The workload must
  still complete with *zero* query errors (fault isolation working); the
  overhead number is reported but not bounded, since injected faults
  legitimately change the work done.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server, run_workload
from repro import (FaultInjector, InsertAction, LATDefinition,
                   QuarantinePolicy, Rule, SendMailAction, SQLCM)
from repro.core.resilience import FAULT_SITES

SHORT_QUERIES = 300
N_RULES = 100
N_CONDITIONS = 5


def _install_rules(sqlcm: SQLCM) -> None:
    for i in range(N_RULES):
        sqlcm.create_lat(LATDefinition(
            name=f"R1_LAT_{i}",
            monitored_class="Query",
            grouping=["Query.ID AS Qid"],
            aggregations=["LAST(Query.Duration) AS Duration"],
            ordering=["Qid DESC"],
            max_rows=10,
        ))
        condition = " AND ".join(
            [f"Query.Duration >= {j * -1.0}" for j in range(N_CONDITIONS)]
        )
        sqlcm.add_rule(Rule(
            name=f"r1_rule_{i}",
            event="Query.Commit",
            condition=condition,
            actions=[InsertAction(f"R1_LAT_{i}")],
        ))
    # one side-effect rule so the sink site + retry path see traffic;
    # fires on a tail slice of the workload only — mail delivery is far
    # costlier than a short select and would otherwise dominate the ratio
    sqlcm.add_rule(Rule(
        name="r1_mailer",
        event="Query.Commit",
        condition=f"Query.ID >= {SHORT_QUERIES - 15}",
        actions=[SendMailAction("query {Query.ID} done", "dba@example.com")],
    ))


def _elapsed(monitored: bool, fault_rate: float | None):
    server, counts = build_server(track_completed=False)
    sqlcm = None
    if monitored:
        faults = None
        if fault_rate is not None:
            faults = FaultInjector(seed=11)
            for site in FAULT_SITES:
                faults.arm(site, rate=fault_rate, mode="exception")
        # keep rules active under fire: we measure isolation machinery,
        # not the cheaper workload a quarantined fleet would run
        sqlcm = SQLCM(server, faults=faults,
                      quarantine=QuarantinePolicy(failure_threshold=10**9))
        _install_rules(sqlcm)
    elapsed = run_workload(server, counts, short=SHORT_QUERIES, joins=0)
    return elapsed, sqlcm


def test_r1_fault_isolation_overhead(report, benchmark):
    results: dict[str, float] = {}
    stats: dict[str, object] = {}

    def run_all():
        base, __ = _elapsed(False, None)
        for label, rate in [("monitored", None), ("armed", 0.0),
                            ("faulty", 0.10)]:
            elapsed, sqlcm = _elapsed(True, rate)
            results[label] = 100.0 * (elapsed - base) / base
            stats[label] = sqlcm
        return base

    base = benchmark.pedantic(run_all, rounds=1, iterations=1)

    faulty = stats["faulty"]
    lines = [
        "R1: fault-isolation layer overhead "
        f"({N_RULES} rules x {N_CONDITIONS} conditions)",
        f"baseline: {SHORT_QUERIES} short selects in {base:.3f}s virtual",
        f"monitored (isolation boundary, no injector): "
        f"{results['monitored']:.2f}%",
        f"armed (injector at {len(FAULT_SITES)} sites, rate 0): "
        f"{results['armed']:.2f}%",
        f"faulty (10% exception faults everywhere):     "
        f"{results['faulty']:.2f}%",
        f"faulty run: {faulty.faults.injected_total()} faults injected, "
        f"{faulty.rule_errors} rule errors isolated, "
        f"{faulty.dead_letters.depth} dead letters, "
        f"0 query errors",
        "paper envelope (Figure 2): < 4%",
    ]
    report(*lines)

    # the isolation boundary must not break the paper's headline claim
    assert results["monitored"] < 4.0
    # checking armed-but-quiet fault sites is almost free
    assert results["armed"] < 4.0
    # under 10% faults the workload still completed error-free
    # (run_workload asserts no query errors) and faults really fired
    assert faulty.faults.injected_total() > 0
    assert faulty.rule_errors > 0


def test_r1_quarantine_flat_cost(benchmark):
    """Wall time of one dispatch through 100 healthy rules — the
    quarantine check rides the same hot path E2 measures."""
    server, counts = build_server(track_completed=False)
    sqlcm = SQLCM(server)
    _install_rules(sqlcm)
    session = server.create_session()
    session.execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    def one_query():
        session.execute(
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 1")

    benchmark(one_query)
    assert sqlcm.rule_firings > 0
    assert not sqlcm.quarantined_rules()
