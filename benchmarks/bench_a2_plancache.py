"""A2 (ablation): signature caching with the plan cache.

Paper, Section 4.2: "the logical query signature is computed during query
optimization and stored as part of the query plan; thus, if a query plan is
cached, so is its signature, thereby avoiding the need to recompute it
often."

This ablation runs a template-heavy workload twice — once with a normal
plan cache and once with a 1-entry cache that thrashes — and reports the
virtual compile + signature cost per query and the wall time of the
compile-or-cache path.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import build_server
from repro import ServerConfig, SQLCM
from repro.workloads.tpch import setup_tpch
from repro.workloads import TPCHConfig

QUERIES = 300
TEMPLATES = 10


def _run_compiles(cache_entries: int) -> tuple[float, int]:
    """Returns (total virtual compile cost, plan-cache misses)."""
    from repro import DatabaseServer

    config = ServerConfig()
    config.plan_cache_entries = cache_entries
    server = DatabaseServer(config)
    setup_tpch(server, TPCHConfig().scaled(0.02))
    sqlcm = SQLCM(server)
    sqlcm.enable_signatures(True)
    session = server.create_session()
    total = 0.0
    for i in range(QUERIES):
        template = i % TEMPLATES
        result = session.execute(
            f"SELECT o_totalprice FROM orders WHERE o_orderkey = "
            f"{template + 1}"
        )
        total += result.query.compile_time
    return total, server.plan_cache.misses


def test_a2_plan_and_signature_caching(report, benchmark):
    def run():
        cached_cost, cached_misses = _run_compiles(cache_entries=2048)
        thrash_cost, thrash_misses = _run_compiles(cache_entries=1)
        return cached_cost, cached_misses, thrash_cost, thrash_misses

    cached_cost, cached_misses, thrash_cost, thrash_misses = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "A2: plan/signature caching ablation "
        f"({QUERIES} queries over {TEMPLATES} templates)",
        f"  normal cache : {cached_misses:4d} compiles, "
        f"{cached_cost * 1e3:8.2f}ms total compile cost",
        f"  1-entry cache: {thrash_misses:4d} compiles, "
        f"{thrash_cost * 1e3:8.2f}ms total compile cost",
        f"  caching saves {100 * (1 - cached_cost / thrash_cost):.1f}% of "
        "compile+signature cost",
    )
    assert cached_misses == TEMPLATES
    assert thrash_misses == QUERIES
    assert cached_cost < thrash_cost / 5


def test_a2_cached_compile_wall_time(benchmark):
    server, __ = build_server()
    session = server.create_session()
    sql = "SELECT o_totalprice FROM orders WHERE o_orderkey = 1"
    session.execute(sql)  # warm the cache

    def compile_cached():
        qctx = server.begin_query(session, sql, {})
        server.compile_query(qctx)
        server.finish_query(qctx, type(qctx.state)("committed"))

    benchmark(compile_cached)
    assert server.plan_cache.hits > 0
