#!/usr/bin/env python
"""Example 3 / Figure 3 in miniature: four ways to find the top-k queries.

Runs the same workload under (a) no monitoring, (b) SQLCM's top-k LAT,
(c) synchronous query logging, (d) snapshot polling, and (e) history
polling — then reports each approach's overhead and how many of the true
top-10 it missed.  The full-size experiment is
``benchmarks/bench_e3_approaches.py``.

Run:  python examples/topk_comparison.py
"""

from repro import DatabaseServer, ServerConfig, SQLCM
from repro.apps import TopKTracker
from repro.monitoring import (PullHistoryMonitor, PullMonitor,
                              QueryLoggingMonitor, missed_top_k,
                              top_k_ground_truth)
from repro.workloads import TPCHConfig, WorkloadMix, mixed_paper_workload
from repro.workloads.generator import lineitem_key_sample
from repro.workloads.tpch import setup_tpch

K = 10


def build_and_run(monitor_factory=None):
    """Fresh server + identical workload; returns (elapsed, truth, answer)."""
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    counts = setup_tpch(server, TPCHConfig().scaled(0.05))
    monitor = monitor_factory(server) if monitor_factory else None

    keys = lineitem_key_sample(server, 100)
    statements = mixed_paper_workload(
        WorkloadMix(short_queries=400, join_queries=15,
                    join_rows_low=100, join_rows_high=200),
        orders_rows=counts["orders"],
        lineitem_rows=counts["lineitem"],
        lineitem_keys=keys,
    )
    session = server.create_session(application="workload")
    start = server.clock.now
    proc = session.submit_script(statements)
    # run until the workload finishes (pollers loop until stopped)
    server.scheduler.run_until_done(proc)
    if monitor is not None and hasattr(monitor, "stop"):
        monitor.stop()
    elapsed = server.clock.now - start
    truth = top_k_ground_truth(server, K, exclude_apps=("query_logging",
                                                        "loader"))
    answer = monitor.top_k(K) if monitor is not None else []
    return elapsed, truth, answer


def main() -> None:
    base, __, __ = build_and_run()
    print(f"baseline (no monitoring): {base:.3f}s virtual\n")
    print(f"{'approach':<22} {'overhead':>9} {'missed of top-10':>17}")

    def sqlcm_factory(server):
        return TopKTracker(SQLCM(server), k=K)

    rows = [
        ("SQLCM", sqlcm_factory),
        ("Query_logging", lambda s: QueryLoggingMonitor(s)),
        ("PULL 1s", lambda s: _started(PullMonitor(s, 1.0))),
        ("PULL 5s", lambda s: _started(PullMonitor(s, 5.0))),
        ("PULL_history 5s", lambda s: _started(PullHistoryMonitor(s, 5.0))),
    ]
    for name, factory in rows:
        elapsed, truth, answer = build_and_run(factory)
        overhead = 100.0 * (elapsed - base) / base
        missed = missed_top_k(truth, answer)
        print(f"{name:<22} {overhead:8.2f}% {missed:17d}")


def _started(monitor):
    monitor.start()
    return monitor


if __name__ == "__main__":
    main()
