#!/usr/bin/env python
"""Example 5 from the paper: resource governing from inside the server.

Two policies run without any DBA in the loop:

* a watchdog timer cancels *runaway* queries (here: queries stuck behind a
  lock far beyond their budget), and
* a per-user MPL limit rejects a user's queries beyond K concurrent.

Run:  python examples/resource_governing.py
"""

from repro import DatabaseServer, SQLCM, Statement
from repro.apps import ResourceGovernor


def main() -> None:
    server = DatabaseServer()
    server.execute_ddl(
        "CREATE TABLE jobs (id INT NOT NULL PRIMARY KEY, state VARCHAR(10))"
    )
    loader = server.create_session()
    loader.execute("INSERT INTO jobs VALUES " + ", ".join(
        f"({i}, 'ready')" for i in range(1, 21)))

    sqlcm = SQLCM(server)
    governor = ResourceGovernor(
        sqlcm,
        runaway_budget=2.0,      # cancel queries running > 2s
        watchdog_interval=0.5,
        max_concurrent=1,        # each user: at most 1 query at a time
        exempt_users=("dbo", "batch"),
    )

    # a batch job wedges a row for 30 seconds
    batch = server.create_session(user="batch")
    batch.submit_script([
        "BEGIN",
        "UPDATE jobs SET state = 'run' WHERE id = 1",
        Statement("COMMIT", think_time=30.0),
    ])

    # dave's first query gets stuck behind the batch lock (runaway);
    # his second one violates the MPL limit while the first still runs
    dave_a = server.create_session(user="dave")
    dave_b = server.create_session(user="dave")
    dave_a.submit_script([
        Statement("SELECT state FROM jobs WHERE id = 1", think_time=0.2),
    ])
    dave_b.submit_script([
        Statement("SELECT state FROM jobs WHERE id = 2", think_time=0.6),
    ])

    server.run(until=40.0)

    print(f"runaway queries cancelled: {governor.stats.runaway_cancelled}")
    print(f"MPL rejections:            {governor.stats.mpl_rejected} "
          f"{governor.stats.rejected_users}")
    for name, session in (("dave_a", dave_a), ("dave_b", dave_b)):
        result = session.results[-1]
        outcome = "ok" if result.ok else f"cancelled ({result.error[:40]}...)"
        print(f"  {name}: {outcome}")


if __name__ == "__main__":
    main()
