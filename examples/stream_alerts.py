#!/usr/bin/env python
"""Continuous stream queries closing the loop with ECA rules.

A storefront runs a steady mix of point lookups; partway through, one
application starts issuing a much heavier scan.  A single continuous
query watches per-application average latency over a sliding window and
raises a ``sqlcm.stream_alert`` whenever a window crosses the threshold;
an ordinary ECA rule subscribed to ``StreamAlert.Alert`` turns each alert
into a DBA mail — stream queries detect, rules react.

Run:  python examples/stream_alerts.py
"""

from repro import DatabaseServer, Rule, SQLCM, SendMailAction, Statement
from repro.monitoring.report import stream_activity


def main() -> None:
    server = DatabaseServer()
    server.execute_ddl(
        "CREATE TABLE orders (id INT NOT NULL PRIMARY KEY, "
        "customer INT, total FLOAT)")
    loader = server.create_session()
    loader.execute("INSERT INTO orders VALUES " + ", ".join(
        f"({i}, {i % 97}, {(i * 7) % 500 + 1.0})" for i in range(1, 2001)))

    sqlcm = SQLCM(server)
    streams = sqlcm.stream_engine()

    # the continuous query: per-application average latency, 10-second
    # window sliding every 2 seconds, alert when a window's average
    # crosses 20 ms with at least 3 statements in it
    monitor = streams.register(
        "STREAM slow_apps FROM Query.Commit "
        "GROUP BY Query.Application AS App "
        "WINDOW SLIDING(10, 2) "
        "AGG AVG(Query.Duration) AS Avg_D, COUNT(*) AS N "
        "HAVING Window.Avg_D > 0.02 AND Window.N >= 3")

    # the reacting rule: every alert becomes a DBA mail
    sqlcm.add_rule(Rule(
        name="page_dba",
        event="StreamAlert.Alert",
        condition="StreamAlert.Stream_Name = 'slow_apps'",
        actions=[SendMailAction(
            "stream {StreamAlert.Stream_Name}: {StreamAlert.Group_Key} "
            "{StreamAlert.Aggregate}={StreamAlert.Value} in window ending "
            "{StreamAlert.Window_End}", "dba@example.com")],
    ))

    # steady storefront traffic: cheap point lookups from two apps
    for app in ("web", "mobile"):
        session = server.create_session(user="shop", application=app)
        session.submit_script([
            Statement(f"SELECT total FROM orders WHERE id = {1 + i * 13 % 2000}",
                      think_time=0.4)
            for i in range(100)
        ])

    # twenty seconds in, the reporting app starts running heavy scans
    reports = server.create_session(user="analyst", application="reports")
    script = [Statement("SELECT id FROM orders WHERE id = 1",
                        think_time=20.0)]
    script += [
        Statement("SELECT a.customer, SUM(b.total) FROM orders a "
                  "JOIN orders b ON a.customer = b.customer "
                  "WHERE a.id < 50 GROUP BY a.customer", think_time=1.0)
        for __ in range(15)
    ]
    reports.submit_script(script)

    server.run(until=45.0)
    streams.flush()

    print(stream_activity(sqlcm))
    print()
    print(f"mails sent to the DBA: {len(sqlcm.outbox)}")
    for mail in sqlcm.outbox[:3]:
        print(f"  {mail.body}")
    flagged = {alert["group"] for alert in monitor.alerts}
    print(f"applications flagged: {sorted(flagged)}")


if __name__ == "__main__":
    main()
