#!/usr/bin/env python
"""Quickstart: embed SQLCM in a server and monitor a workload.

Builds a small TPC-H-style database, registers the paper's Section 2.3 rule
(persist any query slower than a threshold at commit) plus a per-template
duration LAT, runs a mixed workload, and prints what SQLCM captured.

Run:  python examples/quickstart.py
"""

from repro import (DatabaseServer, InsertAction, LATDefinition,
                   PersistAction, Rule, ServerConfig, SQLCM)
from repro.workloads import TPCHConfig, WorkloadMix, mixed_paper_workload
from repro.workloads.generator import lineitem_key_sample
from repro.workloads.tpch import setup_tpch


def main() -> None:
    # 1. a database server on a virtual clock
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    counts = setup_tpch(server, TPCHConfig().scaled(0.05))
    print(f"loaded TPC-H-lite: {counts}")

    # 2. attach SQLCM and declare monitoring
    sqlcm = SQLCM(server)
    sqlcm.create_lat(LATDefinition(
        name="Duration_LAT",
        monitored_class="Query",
        grouping=["Query.Logical_Signature AS Sig"],
        aggregations=[
            "AVG(Query.Duration) AS Avg_Duration",
            "COUNT(Query.ID) AS Instances",
            "FIRST(Query.Query_Text) AS Sample",
        ],
        ordering=["Avg_Duration DESC"],
        max_rows=100,
    ))
    sqlcm.add_rule(Rule(
        name="track_templates",
        event="Query.Commit",
        actions=[InsertAction("Duration_LAT")],
    ))
    # the paper's example rule: persist slow queries when they commit
    sqlcm.add_rule(Rule(
        name="slow_queries",
        event="Query.Commit",
        condition="Query.Duration > 0.02",
        actions=[PersistAction("slow_query_log",
                               ["ID", "Query_Text", "Duration"],
                               source="Query")],
    ))

    # 3. run a workload: short point queries + a few expensive joins
    keys = lineitem_key_sample(server, 100)
    statements = mixed_paper_workload(
        WorkloadMix(short_queries=300, join_queries=5,
                    join_rows_low=100, join_rows_high=200),
        orders_rows=counts["orders"],
        lineitem_rows=counts["lineitem"],
        lineitem_keys=keys,
    )
    session = server.create_session(application="quickstart")
    session.submit_script(statements)
    server.run()
    print(f"executed {len(statements)} statements "
          f"in {server.clock.now:.2f} virtual seconds")

    # 4. what did SQLCM see?
    print("\ntop query templates by average duration:")
    for row in sqlcm.lat("Duration_LAT").rows()[:5]:
        print(f"  {row['Avg_Duration'] * 1e3:8.2f} ms avg  "
              f"x{row['Instances']:<5} {row['Sample'][:60]}")

    if server.catalog.has_table("slow_query_log"):
        slow = server.table("slow_query_log")
        print(f"\n{slow.row_count} slow queries persisted to slow_query_log:")
        for __, row in slow.scan():
            print(f"  query {row[0]}: {row[2] * 1e3:.1f} ms  {row[1][:60]}")
    else:
        print("\nno queries exceeded the slow-query threshold")


if __name__ == "__main__":
    main()
