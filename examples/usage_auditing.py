#!/usr/bin/env python
"""Example 4 from the paper: auditing and summarizing system usage.

Query/update template summaries (frequency, avg/max duration per template
and application) are collected synchronously with execution, and a Timer
rule persists + resets them every simulated "day" — here compressed to a
60-second period so the example finishes instantly.

Also demonstrates outlier detection (Example 1) over stored-procedure
templates: one parameter value triggers a far more expensive code path.

Run:  python examples/usage_auditing.py
"""

from repro import DatabaseServer, ServerConfig, SQLCM, Statement
from repro.apps import OutlierDetector, UsageAuditor
from repro.workloads import TPCHConfig, register_order_procedures
from repro.workloads.tpch import setup_tpch


def main() -> None:
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    counts = setup_tpch(server, TPCHConfig().scaled(0.05))
    register_order_procedures(server)

    sqlcm = SQLCM(server)
    auditor = UsageAuditor(sqlcm, period=60.0)
    # factor 2: on this workload the per-statement fixed cost compresses
    # duration ratios (the paper allows "any appropriate statistical
    # measure" as the outlier criterion)
    detector = OutlierDetector(sqlcm, factor=2.0, min_instances=5)

    # two applications issue parameterized procedure calls over the "day"
    erp = server.create_session(user="erp_svc", application="erp")
    erp_script = []
    for i in range(40):
        erp_script.append(Statement(
            "EXEC order_report @okey = @k, @detail = 0",
            {"k": i % counts["orders"] + 1}, think_time=1.0))
    erp.submit_script(erp_script)

    dashboard = server.create_session(user="bi", application="dashboard")
    dash_script = []
    for i in range(15):
        detail = 1 if i % 5 == 4 else 0
        dash_script.append(Statement(
            "EXEC order_report @okey = @k, @detail = @d",
            {"k": i + 1, "d": detail}, think_time=2.5))
    dashboard.submit_script(dash_script)

    # a parameterized range template: most invocations are narrow, two are
    # enormous — the Example 1 outliers the detector should flag
    analyst = server.create_session(user="analyst", application="adhoc")
    range_sql = ("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem "
                 "WHERE l_orderkey BETWEEN @lo AND @hi")
    analyst_script = []
    for i in range(20):
        lo = 1 + i * 10
        analyst_script.append(Statement(
            range_sql, {"lo": lo, "hi": lo + 3}, think_time=1.5))
    for lo in (1, 100):  # the outliers: ~200x wider ranges
        analyst_script.append(Statement(
            range_sql, {"lo": lo, "hi": lo + 700}, think_time=1.5))
    analyst.submit_script(analyst_script)

    server.run(until=130.0)  # a bit over two flush periods

    print("flushed template usage reports (one batch per period):")
    print(f"{'app':<10} {'freq':>5} {'avg ms':>8} {'max ms':>8}  sample")
    for row in auditor.reports():
        print(f"{row['App']:<10} {row['Frequency']:5d} "
              f"{row['Avg_Duration'] * 1e3:8.2f} "
              f"{row['Max_Duration'] * 1e3:8.2f}  {row['Sample_Text'][:40]}")

    print("\nper-user activity:")
    for row in auditor.user_reports():
        print(f"  {row['Login']:<8} {row['Queries']:4d} queries, "
              f"{row['Total_Time']:.2f}s total")

    print(f"\noutlier invocations detected: {len(detector.outliers())}")
    for outlier in detector.outliers()[:5]:
        print(f"  {outlier['Duration'] * 1e3:8.1f} ms  "
              f"{outlier['Query_Text'][:50]}")


if __name__ == "__main__":
    main()
