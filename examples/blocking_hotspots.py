#!/usr/bin/env python
"""Example 2 from the paper: detecting poor blocking behaviour.

Several applications hammer the same hot rows; the BlockingAnalyzer's
``Query.Block_Released`` rule accumulates, per blocking statement template,
the total delay it imposed on other statements.  A watchdog timer cancels
anything blocked for too long (resource governing, Example 5 flavor).

Run:  python examples/blocking_hotspots.py
"""

from repro import CancelAction, DatabaseServer, Rule, SQLCM, Statement
from repro.apps import BlockingAnalyzer


def main() -> None:
    server = DatabaseServer()
    server.execute_ddl(
        "CREATE TABLE inventory (sku INT NOT NULL PRIMARY KEY, "
        "stock INT, reserved INT)"
    )
    loader = server.create_session()
    loader.execute("INSERT INTO inventory VALUES " + ", ".join(
        f"({i}, 100, 0)" for i in range(1, 51)))

    sqlcm = SQLCM(server)
    analyzer = BlockingAnalyzer(sqlcm)

    # a long-running "batch job" holds hot-row locks inside transactions
    batch = server.create_session(user="batch", application="nightly-job")
    batch_script = []
    for round_no in range(5):
        batch_script += [
            "BEGIN",
            "UPDATE inventory SET stock = stock - 1 WHERE sku = 1",
            "UPDATE inventory SET stock = stock - 1 WHERE sku = 2",
            Statement("COMMIT", think_time=1.2),  # long-held locks
        ]
    batch.submit_script(batch_script)

    # interactive users keep touching the same hot rows
    for user_no in range(4):
        user = server.create_session(user=f"user{user_no}",
                                     application="storefront")
        script = []
        for i in range(12):
            sku = 1 + (i + user_no) % 3
            script.append(Statement(
                f"SELECT stock FROM inventory WHERE sku = {sku}",
                think_time=0.35,
            ))
        user.submit_script(script)

    # watchdog: cancel anything blocked longer than 5 seconds
    sqlcm.add_rule(Rule(
        name="blocked_too_long",
        event="Timer.Alert",
        condition="Blocked.Wait_Time > 5.0",
        actions=[CancelAction(target="Blocked")],
    ))
    sqlcm.set_timer("watchdog", interval=1.0, repeats=-1)

    server.run(until=30.0)

    print("statements causing the largest total blocking delay:")
    print(f"{'total delay':>12}  {'conflicts':>9}  statement")
    for row in analyzer.worst_blockers():
        print(f"{row['Total_Block_Delay']:11.2f}s  "
              f"{row['Conflicts']:9d}  {row['Sample_Text'][:58]}")


if __name__ == "__main__":
    main()
