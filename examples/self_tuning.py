#!/usr/bin/env python
"""Self-tuning from inside the server (Sections 2.1, 3 and 7).

The paper's closing argument is that a server-side monitor enables actions
that *adjust server behaviour without DBA intervention*. Three such loops,
all built on public SQLCM rules:

* **StatsCorrector** — watches optimizer cardinality estimates drift away
  from actual row counts per template and requests a statistics refresh
  (the "automatically correcting database statistics" example).
* **AdaptiveMPLGovernor** — tunes the allowed multi-programming level up
  and down based on recent blocking delay (Example 5c).
* **LoginAuditor** — counts login failures per user in an aging window and
  alerts the DBA past a threshold (Example 4b).

Run:  python examples/self_tuning.py
"""

from repro import DatabaseServer, ServerConfig, SQLCM, Statement
from repro.apps import AdaptiveMPLGovernor, LoginAuditor, StatsCorrector
from repro.errors import EngineError
from repro.workloads import TPCHConfig
from repro.workloads.tpch import setup_tpch


def main() -> None:
    server = DatabaseServer(ServerConfig(track_completed_queries=True))
    counts = setup_tpch(server, TPCHConfig().scaled(0.05))
    sqlcm = SQLCM(server)

    # --- statistics drift ---------------------------------------------------
    corrector = StatsCorrector(sqlcm, drift_factor=3.0, min_instances=5)
    session = server.create_session(user="app")
    # a template whose optimizer estimate is badly off: multi-predicate
    # filter that actually matches nearly everything
    for __ in range(6):
        session.execute(
            "SELECT l_orderkey FROM lineitem "
            "WHERE l_quantity > 0 AND l_extendedprice > 0 "
            "AND l_discount >= 0 AND l_partkey > 0")
    print(f"statistics refresh requests: {len(corrector.refresh_requests)}")
    for request in corrector.refresh_requests:
        print(f"  -> update-statistics for: {request[:60]}...")

    # --- adaptive MPL ---------------------------------------------------------
    governor = AdaptiveMPLGovernor(
        sqlcm, initial_mpl=4, min_mpl=1, max_mpl=8,
        control_interval=1.0, low_blocking=0.05, high_blocking=0.5)
    # phase 1: a lock hotspot drives blocking up → MPL tightens
    writer = server.create_session(user="batch")
    writer.submit_script([
        "BEGIN",
        "UPDATE orders SET o_totalprice = 0 WHERE o_orderkey = 1",
        Statement("COMMIT", think_time=3.0),
    ])
    for i in range(3):
        reader = server.create_session(user=f"reader{i}")
        reader.submit_script([
            Statement("SELECT o_totalprice FROM orders WHERE o_orderkey = 1",
                      think_time=0.2 * (i + 1)),
        ])
    server.run(until=8.0)
    # phase 2: quiet system → MPL relaxes again
    server.run(until=40.0)
    print(f"\nMPL adjustments over time (initial 4): "
          f"{[(round(t, 1), m) for t, m in governor.adjustments]}")
    print(f"current MPL: {governor.mpl}")

    # --- login-failure auditing ---------------------------------------------
    server.set_authenticator(
        lambda user, cred: cred == "correct-horse-battery-staple")
    auditor = LoginAuditor(sqlcm, alert_threshold=3, window=3600.0)
    for attempt in range(4):
        try:
            server.create_session(user="mallory", credential=f"guess{attempt}")
        except EngineError:
            pass
    print(f"\nlogin failures by user: "
          f"{[(r['Login'], r['Failures']) for r in auditor.failures()]}")
    print(f"DBA alerts sent: {len(auditor.alerts())}")
    if auditor.alerts():
        print(f"  latest: {auditor.alerts()[-1].body}")


if __name__ == "__main__":
    main()
