"""SQLCM: the continuous monitoring framework (the paper's contribution).

Public surface:

* :class:`~repro.core.engine.SQLCM` — attach to a
  :class:`~repro.engine.DatabaseServer`, then register LATs and ECA rules.
* :class:`~repro.core.lat.LATDefinition` / :class:`~repro.core.lat.LAT` —
  lightweight aggregation tables (Section 4.3).
* :class:`~repro.core.rules.Rule` and the action classes in
  :mod:`repro.core.actions` (Section 5).
* :mod:`repro.core.signatures` — the four signature kinds (Section 4.2).
"""

from repro.core.actions import (CancelAction, InsertAction, PersistAction,
                                ResetAction, RunExternalAction,
                                SendMailAction, SetTimerAction)
from repro.core.engine import SQLCM
from repro.core.governor import (BEST_EFFORT, CRITICAL, GOV_ESSENTIAL,
                                 GOV_NORMAL, GOV_SAMPLED, GOV_SHEDDING,
                                 LADDER, GovernorPolicy, OverloadGovernor)
from repro.core.incidents import (CancelBlockerAction, Incident,
                                  IncidentManager, IncidentPolicy,
                                  OpenIncidentAction, QuarantineRuleAction,
                                  RemediationRecord, ResetLATAction)
from repro.core.lat import AggSpec, AgingSpec, LATDefinition, OrderSpec
from repro.core.resilience import (DeadLetter, DeadLetterJournal,
                                   FaultInjector, FaultSpec,
                                   QuarantinePolicy, RedeliveryReport,
                                   RetryPolicy, RuleHealth,
                                   RuleHealthRegistry)
from repro.core.rules import Rule
from repro.core.schema import SCHEMA

__all__ = [
    "SQLCM",
    "Rule",
    "LATDefinition",
    "AggSpec",
    "AgingSpec",
    "OrderSpec",
    "InsertAction",
    "ResetAction",
    "PersistAction",
    "SendMailAction",
    "RunExternalAction",
    "CancelAction",
    "SetTimerAction",
    "SCHEMA",
    "DeadLetter",
    "DeadLetterJournal",
    "FaultInjector",
    "FaultSpec",
    "QuarantinePolicy",
    "RedeliveryReport",
    "RetryPolicy",
    "RuleHealth",
    "RuleHealthRegistry",
    "GovernorPolicy",
    "OverloadGovernor",
    "BEST_EFFORT",
    "CRITICAL",
    "LADDER",
    "GOV_NORMAL",
    "GOV_SAMPLED",
    "GOV_SHEDDING",
    "GOV_ESSENTIAL",
    "Incident",
    "IncidentManager",
    "IncidentPolicy",
    "RemediationRecord",
    "OpenIncidentAction",
    "CancelBlockerAction",
    "QuarantineRuleAction",
    "ResetLATAction",
]
