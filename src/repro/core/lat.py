"""Light-weight aggregation tables (paper Section 4.3).

A LAT is an in-memory GROUP BY over inserted monitored objects: grouping
columns, aggregation columns (standard or aging), an optional ordering with
a size limit (rows or bytes), and automatic eviction of the least-important
row when the limit is exceeded.  Evicted rows are surfaced to the SQLCM
engine so rules can react to them.

The default structure follows the paper's implementation notes: a hash map
on the grouping columns for O(1) row lookup, with eviction by importance
scan (LATs are small by construction — that is the point of the size
limit).  ``NaiveListLAT`` is a deliberately slower structure kept for the
A1 ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.aggregates import (AggregateFunction, AgingSpec, AgingState,
                                   aggregate_function)
from repro.core.governor import validate_criticality
from repro.core.objects import MonitoredObject
from repro.errors import LATError


@dataclass(frozen=True)
class GroupSpec:
    """One grouping column: source attribute plus output alias."""

    attr: str
    alias: str | None = None

    @property
    def column(self) -> str:
        return self.alias or self.attr


@dataclass(frozen=True)
class AggSpec:
    """One aggregation column: function, source attribute, alias, aging."""

    func: str
    attr: str
    alias: str | None = None
    aging: AgingSpec | None = None

    @property
    def column(self) -> str:
        return self.alias or f"{self.func.lower()}_{self.attr.lower()}"


@dataclass(frozen=True)
class OrderSpec:
    """One ordering column (by output column name)."""

    column: str
    descending: bool = True


def _parse_group(spec: "GroupSpec | str") -> GroupSpec:
    if isinstance(spec, GroupSpec):
        return spec
    text = spec.strip()
    upper = text.upper()
    if " AS " in upper:
        pos = upper.index(" AS ")
        attr, alias = text[:pos].strip(), text[pos + 4:].strip()
    else:
        attr, alias = text, None
    if "." in attr:  # allow "Query.Logical_Signature" — class part is implied
        attr = attr.split(".", 1)[1]
    return GroupSpec(attr, alias)


def _parse_agg(spec: "AggSpec | str") -> AggSpec:
    if isinstance(spec, AggSpec):
        return spec
    text = spec.strip()
    upper = text.upper()
    alias = None
    if " AS " in upper:
        pos = upper.index(" AS ")
        text, alias = text[:pos].strip(), text[pos + 4:].strip()
    if "(" not in text or not text.endswith(")"):
        raise LATError(f"bad aggregation spec {spec!r}; expected FUNC(Attr)")
    func, __, rest = text.partition("(")
    attr = rest[:-1].strip()
    if "." in attr:
        attr = attr.split(".", 1)[1]
    return AggSpec(func.strip().upper(), attr, alias)


@dataclass
class LATDefinition:
    """Declarative specification of a LAT (the paper's "LAT specification").

    ``grouping`` and ``aggregations`` accept either spec objects or strings
    in the paper's syntax (``"Query.Logical_Signature AS Sig"``,
    ``"AVG(Query.Duration) AS Avg_Duration"``).
    """

    name: str
    monitored_class: str = "Query"
    grouping: list = field(default_factory=list)
    aggregations: list = field(default_factory=list)
    ordering: list = field(default_factory=list)
    max_rows: int | None = None
    max_bytes: int | None = None
    criticality: str = "normal"

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise LATError(f"invalid LAT name {self.name!r}")
        self.criticality = validate_criticality(self.criticality)
        self.grouping = [_parse_group(g) for g in self.grouping]
        self.aggregations = [_parse_agg(a) for a in self.aggregations]
        if not self.grouping:
            raise LATError("a LAT needs at least one grouping column")
        self.ordering = [
            o if isinstance(o, OrderSpec) else OrderSpec(*_parse_order(o))
            for o in self.ordering
        ]
        columns = self.column_names()
        if len(set(c.lower() for c in columns)) != len(columns):
            raise LATError(f"LAT {self.name!r} has duplicate column names")
        for order in self.ordering:
            if order.column.lower() not in (c.lower() for c in columns):
                raise LATError(
                    f"ordering column {order.column!r} is not a LAT column"
                )
        if (self.max_rows is not None or self.max_bytes is not None) \
                and not self.ordering:
            raise LATError("a size-limited LAT needs ordering columns")
        if self.max_rows is not None and self.max_rows < 1:
            raise LATError("max_rows must be positive")

    def column_names(self) -> list[str]:
        return ([g.column for g in self.grouping]
                + [a.column for a in self.aggregations])

    def source_attributes(self) -> list[str]:
        """Probe attributes read from each inserted object."""
        return ([g.attr for g in self.grouping]
                + [a.attr for a in self.aggregations])


def _parse_order(spec: str) -> tuple[str, bool]:
    text = spec.strip()
    upper = text.upper()
    if upper.endswith(" DESC"):
        return text[:-5].strip(), True
    if upper.endswith(" ASC"):
        return text[:-4].strip(), False
    return text, True  # eviction-ordered LATs default to DESC (top-k style)


class _Row:
    """One LAT row: group key plus aggregate states."""

    __slots__ = ("key", "states", "seq", "importance")

    def __init__(self, key: tuple, states: list, seq: int):
        self.key = key
        self.states = states
        self.seq = seq
        # memoized importance key; None = dirty (recompute on next scan)
        self.importance: tuple | None = None


_ROW_OVERHEAD_BYTES = 48
_VALUE_BYTES = 24
_AGING_BLOCK_BYTES = 32


class LAT:
    """The default LAT structure: hash on group key, importance-scan eviction."""

    # durability journal (set by DurabilityManager.attach / create_lat);
    # mutations append redo records after they complete
    journal = None

    def __init__(self, definition: LATDefinition, clock):
        self.definition = definition
        self._clock = clock
        self._functions: list[AggregateFunction] = [
            aggregate_function(a.func) for a in definition.aggregations
        ]
        self._rows: dict[tuple, _Row] = {}
        self._seq = 0
        self._order_indexes = self._resolve_order_indexes()
        # importance keys over aging aggregates decay with time and must
        # not be memoized; plain aggregates only change on insert
        n_groups = len(definition.grouping)
        self._ordering_cacheable = all(
            index < n_groups
            or definition.aggregations[index - n_groups].aging is None
            for index, __ in self._order_indexes
        )
        # statistics (reported by benches; latches are counted, not real)
        self.insert_count = 0
        self.eviction_count = 0
        self.latch_acquisitions = 0
        self.peak_rows = 0
        self.seed_count = 0  # rows re-uploaded by restore_lat

    def _resolve_order_indexes(self) -> list[tuple[int, bool]]:
        columns = [c.lower() for c in self.definition.column_names()]
        return [
            (columns.index(o.column.lower()), o.descending)
            for o in self.definition.ordering
        ]

    # -- core operations --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def key_of(self, source: "MonitoredObject | dict") -> tuple:
        return tuple(
            self._value(source, g.attr) for g in self.definition.grouping
        )

    @staticmethod
    def _value(source: "MonitoredObject | dict", attr: str) -> Any:
        if isinstance(source, MonitoredObject):
            return source.get(attr)
        for key in (attr, attr.lower()):
            if key in source:
                return source[key]
        return None

    def insert(self, source: "MonitoredObject | dict",
               weight: int = 1, now: float | None = None) -> list[dict]:
        """Insert-or-update the row matching the object's group key.

        ``weight`` > 1 means this object stands in for ``weight`` sampled
        events (overload-governor compensation): COUNT/SUM/AVG scale the
        contribution; order/extreme aggregates apply the value once.

        ``now`` overrides the clock time (journal replay re-applies
        inserts at their original timestamps).

        Returns the rows evicted to satisfy the size constraint (possibly
        including the row just inserted), as column dicts.
        """
        if now is None:
            now = self._clock.now
        key = self.key_of(source)
        row = self._rows.get(key)
        # latches: the hash entry, the row, and the structure as a whole
        self.latch_acquisitions += 3
        if row is None:
            states = []
            for spec, func in zip(self.definition.aggregations,
                                  self._functions):
                if spec.aging is not None:
                    states.append(AgingState(func, spec.aging))
                else:
                    states.append(func.new_state())
            row = _Row(key, states, self._seq)
            self._seq += 1
            self._rows[key] = row
        for i, (spec, func) in enumerate(
                zip(self.definition.aggregations, self._functions)):
            value = self._value(source, spec.attr)
            if isinstance(row.states[i], AgingState):
                row.states[i].update(value, now, weight)
            elif weight != 1:
                row.states[i] = func.update_weighted(
                    row.states[i], value, weight)
            else:
                row.states[i] = func.update(row.states[i], value)
        row.importance = None  # aggregates changed; importance is stale
        self.insert_count += 1
        self.peak_rows = max(self.peak_rows, len(self._rows))
        evicted = self._enforce_limits(now)
        if self.journal is not None:
            self.journal.append("lat_insert", {
                "lat": self.definition.name,
                "values": {attr: self._value(source, attr)
                           for attr in self.definition.source_attributes()},
                "weight": weight,
                "time": now,
            })
        return evicted

    def _enforce_limits(self, now: float) -> list[dict]:
        evicted: list[dict] = []
        max_rows = self.definition.max_rows
        max_bytes = self.definition.max_bytes
        while ((max_rows is not None and len(self._rows) > max_rows)
               or (max_bytes is not None
                   and self.memory_bytes() > max_bytes)):
            victim = self._least_important(now)
            if victim is None:
                break
            evicted.append(self._row_values(victim, now))
            del self._rows[victim.key]
            self.eviction_count += 1
            self.latch_acquisitions += 2
        return evicted

    def _least_important(self, now: float) -> _Row | None:
        worst: _Row | None = None
        worst_key: tuple | None = None
        for row in self._rows.values():
            key = self._importance_key(row, now)
            if worst is None or key < worst_key:
                worst = row
                worst_key = key
        return worst

    def _importance_key(self, row: _Row, now: float) -> tuple:
        """Sortable importance; the minimum is evicted first."""
        if row.importance is not None and self._ordering_cacheable:
            return row.importance
        parts: list = []
        n_groups = len(row.key)
        for (index, descending) in self._order_indexes:
            if index < n_groups:
                value = row.key[index]
            else:
                state = row.states[index - n_groups]
                if isinstance(state, AgingState):
                    value = state.result(now)
                else:
                    value = self._functions[index - n_groups].result(state)
            if value is None:
                parts.append((0, 0))
            elif descending:
                parts.append((1, _Orderable(value, reverse=False)))
            else:
                parts.append((1, _Orderable(value, reverse=True)))
        parts.append(row.seq)  # FIFO tie-break: older rows evict first
        key = tuple(parts)
        if self._ordering_cacheable:
            row.importance = key
        return key

    def _ordered_values(self, row: _Row, now: float) -> list:
        values = list(row.key)
        for state, func in zip(row.states, self._functions):
            if isinstance(state, AgingState):
                values.append(state.result(now))
            else:
                values.append(func.result(state))
        return values

    def _row_values(self, row: _Row, now: float) -> dict:
        columns = self.definition.column_names()
        return dict(zip(columns, self._ordered_values(row, now)))

    # -- reads --------------------------------------------------------------------

    def lookup(self, key: tuple) -> dict | None:
        """The row whose grouping columns equal ``key``, as a column dict."""
        self.latch_acquisitions += 1
        row = self._rows.get(tuple(key))
        if row is None:
            return None
        return self._row_values(row, self._clock.now)

    def lookup_object(self, source: "MonitoredObject | dict") -> dict | None:
        """The row matching a monitored object's group-key probe values."""
        return self.lookup(self.key_of(source))

    def rows(self) -> list[dict]:
        """All rows, most important first (the LAT's declared ordering)."""
        now = self._clock.now
        ordered = sorted(
            self._rows.values(),
            key=lambda row: self._importance_key(row, now),
            reverse=True,
        )
        return [self._row_values(row, now) for row in ordered]

    def reset(self) -> None:
        """Clear all content and free memory (the Reset action)."""
        self._rows.clear()
        self.latch_acquisitions += 1
        if self.journal is not None:
            self.journal.append("lat_reset", {"lat": self.definition.name})

    def delete_row(self, key: tuple) -> bool:
        """Remove one group's row (e.g. to re-arm a threshold rule)."""
        self.latch_acquisitions += 2
        removed = self._rows.pop(tuple(key), None) is not None
        if removed and self.journal is not None:
            self.journal.append("lat_del", {"lat": self.definition.name,
                                            "key": tuple(key)})
        return removed

    def seed_row(self, persisted: dict[str, Any],
                 now: float | None = None) -> None:
        """Reconstruct one row from persisted column values (LAT restore).

        COUNT/SUM/MIN/MAX/FIRST/LAST restore exactly; AVG restores exactly
        when the LAT also carries a COUNT column (else seeds with count 1);
        STDEV re-seeds mean and count but loses within-window spread.
        Aging aggregates seed a single block at the current time.
        """
        lowered = {k.lower(): v for k, v in persisted.items()}
        key = tuple(
            lowered.get(g.column.lower()) for g in self.definition.grouping
        )
        count_hint = None
        for spec in self.definition.aggregations:
            if spec.func == "COUNT":
                value = lowered.get(spec.column.lower())
                if isinstance(value, (int, float)):
                    count_hint = int(value)
                break
        states: list = []
        if now is None:
            now = self._clock.now
        for spec, func in zip(self.definition.aggregations, self._functions):
            value = lowered.get(spec.column.lower())
            state = self._seed_state(spec.func, func, value, count_hint)
            if spec.aging is not None:
                aging = AgingState(func, spec.aging)
                if value is not None:
                    block_start = (math.floor(now / spec.aging.delta)
                                   * spec.aging.delta)
                    aging.blocks.append((block_start, state))
                states.append(aging)
            else:
                states.append(state)
        row = _Row(key, states, self._seq)
        self._seq += 1
        self._rows[key] = row
        self.seed_count += 1
        self._enforce_limits(now)
        if self.journal is not None:
            self.journal.append("lat_seed", {
                "lat": self.definition.name,
                "values": dict(persisted),
                "time": now,
            })

    @staticmethod
    def _seed_state(func_name: str, func: AggregateFunction, value: Any,
                    count_hint: int | None) -> Any:
        if value is None:
            return func.new_state()
        if func_name == "COUNT":
            return int(value)
        if func_name in ("SUM", "MIN", "MAX", "FIRST", "LAST"):
            state = func.new_state()
            return func.update(state, value)
        count = count_hint if count_hint and count_hint > 0 else 1
        if func_name == "AVG":
            return (count, value * count)
        if func_name == "STDEV":
            # value is treated as the mean proxy; spread (M2) is lost
            return (count, value, 0.0)
        return func.update(func.new_state(), value)  # pragma: no cover

    def scratch_copy(self) -> "LAT":
        """A detached copy of this LAT for atomic multi-row operations.

        The copy shares the definition and clock but owns deep copies of
        the rows (aging states are mutable) and never journals; mutate it
        freely, then :meth:`adopt` it back on success — an error midway
        leaves the live LAT untouched.
        """
        scratch = type(self)(self.definition, self._clock)
        for key, row in self._rows.items():
            states = [
                state.copy() if isinstance(state, AgingState) else state
                for state in row.states
            ]
            scratch._rows[key] = _Row(key, states, row.seq)
        scratch._seq = self._seq
        scratch.insert_count = self.insert_count
        scratch.eviction_count = self.eviction_count
        scratch.latch_acquisitions = self.latch_acquisitions
        scratch.peak_rows = self.peak_rows
        scratch.seed_count = self.seed_count
        return scratch

    def adopt(self, scratch: "LAT") -> None:
        """Swap in a scratch copy's state (the commit of an atomic restore)."""
        self._rows = scratch._rows
        self._seq = scratch._seq
        self.insert_count = scratch.insert_count
        self.eviction_count = scratch.eviction_count
        self.latch_acquisitions = scratch.latch_acquisitions + 1
        self.peak_rows = max(self.peak_rows, scratch.peak_rows)
        self.seed_count = scratch.seed_count

    def merge_from(self, other: "LAT") -> list[dict]:
        """Merge another partition of the same LAT definition into this one.

        The shard merge boundary (see repro.shard): per-group aggregate
        states combine via each function's mergeable state — the same
        ``combine`` the stream subsystem uses to merge window panes — so a
        partitioned LAT merged back together equals the LAT a serial run
        would have built, provided every group's inserts landed in one
        partition (group key aligned with the partition key).  FIRST/LAST
        on a *split* group resolve in merge order (shard 0 first), and
        size limits are enforced once here, at the boundary, not during
        per-shard inserts.  Returns rows evicted by that enforcement.
        """
        if [c.lower() for c in other.definition.column_names()] != \
                [c.lower() for c in self.definition.column_names()]:
            raise LATError(
                f"cannot merge LAT {other.definition.name!r} into "
                f"{self.definition.name!r}: column shapes differ")
        specs = self.definition.aggregations
        for key, row in other._rows.items():
            mine = self._rows.get(key)
            if mine is None:
                states = [
                    state.copy() if isinstance(state, AgingState) else state
                    for state in row.states
                ]
                self._rows[key] = _Row(key, states, self._seq)
                self._seq += 1
            else:
                for i, func in enumerate(self._functions):
                    theirs = row.states[i]
                    if isinstance(theirs, AgingState):
                        mine.states[i].merge_from(theirs)
                    else:
                        mine.states[i] = func.combine(mine.states[i], theirs)
                mine.importance = None
        self.insert_count += other.insert_count
        self.latch_acquisitions += 1
        self.peak_rows = max(self.peak_rows, len(self._rows))
        return self._enforce_limits(self._clock.now)

    def integrity_signature(self) -> int:
        """Order-independent CRC over all rows' current column values.

        Lets the resilience tests assert that two runs with the same fault
        seed produce bit-identical LAT state without comparing row dicts.
        """
        import zlib
        total = 0
        now = self._clock.now
        for row in self._rows.values():
            values = tuple(self._ordered_values(row, now))
            total ^= zlib.crc32(repr(values).encode("utf-8"))
        return total ^ len(self._rows)

    def occupancy(self) -> float:
        """Row-count fill fraction in [0, 1] against ``max_rows``.

        Unbounded LATs report 0.0 — they cannot evict, so "how full" is
        not a meaningful pressure signal for them.  Feeds the
        ``sqlcm.lat.occupancy.*`` gauges and the TOP OFFENDERS report.
        """
        max_rows = self.definition.max_rows
        if not max_rows:
            return 0.0
        return min(1.0, len(self._rows) / max_rows)

    def memory_bytes(self) -> int:
        """Approximate memory footprint (drives max_bytes limits)."""
        n_columns = len(self.definition.column_names())
        per_row = _ROW_OVERHEAD_BYTES + n_columns * _VALUE_BYTES
        total = 0
        for row in self._rows.values():
            total += per_row
            for state in row.states:
                if isinstance(state, AgingState):
                    total += state.block_count * _AGING_BLOCK_BYTES
        return total


class _Orderable:
    """Total order over heterogeneous LAT values, optionally reversed.

    The type rank is computed once at construction: importance keys are
    memoized on rows and compared many times during eviction scans.
    """

    __slots__ = ("value", "reverse", "rank")

    def __init__(self, value: Any, reverse: bool):
        self.value = value
        self.reverse = reverse
        if isinstance(value, bool):
            self.rank = (0, int(value))
        elif isinstance(value, (int, float)):
            self.rank = (0, value)
        elif isinstance(value, str):
            self.rank = (1, value)
        elif isinstance(value, bytes):
            self.rank = (2, value)
        else:
            self.rank = (3, repr(value))

    def __lt__(self, other: "_Orderable") -> bool:
        a, b = self.rank, other.rank
        if a[0] != b[0]:
            return a[0] < b[0]
        return (a[1] > b[1]) if self.reverse else (a[1] < b[1])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Orderable) and self.rank == other.rank


class NaiveListLAT(LAT):
    """Ablation-only LAT: linear group lookup + full re-sort per insert.

    Models a LAT without the paper's hash-plus-heap design; used by the A1
    benchmark to show why the structure matters.
    """

    def insert(self, source, weight: int = 1,
               now: float | None = None) -> list[dict]:
        key = self.key_of(source)
        for candidate in list(self._rows):  # linear membership probe
            if candidate == key:
                break
        evicted = super().insert(source, weight, now)
        # full re-sort after every insert (the naive ordered structure)
        now = self._clock.now
        sorted(self._rows.values(),
               key=lambda row: self._importance_key(row, now))
        return evicted

    def lookup(self, key: tuple) -> dict | None:
        key = tuple(key)
        for candidate, row in self._rows.items():  # linear scan
            if candidate == key:
                return self._row_values(row, self._clock.now)
        return None
