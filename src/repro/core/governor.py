"""Overload governor: closed-loop graceful degradation for the monitor.

SQLCM's value proposition is *bounded* monitoring overhead — the paper's
Figure 2 shows 1000 rules with LAT maintenance staying under ~4% of a short
query's time.  Nothing in the engine enforces that bound, though: a
pathological rule set silently blows the budget.  This module adds the
missing feedback controller.

The governor tracks the **rolling overhead ratio** — monitor-cost delta
divided by total virtual-work delta over a sliding virtual-time window —
and walks a degradation ladder::

    NORMAL -> SAMPLED -> SHEDDING -> ESSENTIAL

* ``NORMAL``    — everything runs; the governor only measures.
* ``SAMPLED``   — non-critical rules evaluate on a deterministic hash-based
  sample of events (1 in ``sample_rate``); admitted evaluations carry a
  ``sample_rate`` weight so COUNT/SUM/AVG aggregates stay unbiased (see
  :meth:`~repro.core.aggregates.AggregateFunction.update_weighted`).
* ``SHEDDING``  — additionally suspends the top-offending components,
  ranked by the observability layer's attributed-cost data, ``BEST_EFFORT``
  class before ``NORMAL`` class.
* ``ESSENTIAL`` — only ``CRITICAL`` components run at all.

Transitions are hysteretic: the ladder escalates when the *measured* ratio
exceeds ``target_overhead`` but only recovers when the *estimated
ungoverned* ratio — measured cost plus an estimate of the work the governor
skipped — falls below ``exit_overhead`` (< target).  Estimating the skipped
work is what prevents flapping: without it, degrading immediately lowers the
measured ratio below the exit threshold and the ladder oscillates.  A
``cooldown`` dwell additionally bounds the transition rate to at most one
rung per cooldown window.  Skip estimates come from a per-rule exponential
moving average of observed evaluation cost, maintained by the dispatcher.

Sampling is replay-stable: admission is ``crc32(rule_name, salt) %
sample_rate == 0`` where ``salt = crc32("event:sequence")`` — a pure
function of the rule name and the event sequence, independent of wall time,
dict order, or hash randomization.  Replaying the same trace samples the
identical event subset (asserted by tests and the G1 benchmark via
:attr:`OverloadGovernor.sample_digest`).

Every ladder transition dispatches a ``sqlcm.governor_transition``
meta-event (mirroring ``sqlcm.rule_error``) so ECA rules can monitor the
governor itself; rules bound to meta-events are exempt from sampling and
shedding — watching the governor must survive the governor.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SQLCMError

__all__ = [
    "BEST_EFFORT",
    "CRITICAL",
    "CRITICALITIES",
    "GOV_ESSENTIAL",
    "GOV_NORMAL",
    "GOV_SAMPLED",
    "GOV_SHEDDING",
    "GovernorError",
    "GovernorPolicy",
    "LADDER",
    "NORMAL",
    "OverloadGovernor",
    "validate_criticality",
]


class GovernorError(SQLCMError):
    """Invalid governor policy or criticality class."""


# --- criticality classes (assigned to rules / streams / LATs) -------------

CRITICAL = "critical"
NORMAL = "normal"
BEST_EFFORT = "best_effort"

#: valid criticality classes, most protected first
CRITICALITIES = (CRITICAL, NORMAL, BEST_EFFORT)


def validate_criticality(value: str) -> str:
    """Normalize and validate a criticality class name."""
    normalized = str(value).strip().lower().replace("-", "_")
    if normalized not in CRITICALITIES:
        raise GovernorError(
            f"unknown criticality {value!r}; expected one of {CRITICALITIES}")
    return normalized


# --- degradation ladder ---------------------------------------------------

GOV_NORMAL = "NORMAL"
GOV_SAMPLED = "SAMPLED"
GOV_SHEDDING = "SHEDDING"
GOV_ESSENTIAL = "ESSENTIAL"

#: ladder states in escalation order
LADDER = (GOV_NORMAL, GOV_SAMPLED, GOV_SHEDDING, GOV_ESSENTIAL)

#: meta-events whose rules are never sampled or shed — monitoring the
#: monitor (rule failures, governor transitions, the incident/remediation
#: loop) must survive degradation
EXEMPT_EVENTS = frozenset({"sqlcm.governor_transition", "sqlcm.rule_error",
                           "sqlcm.incident", "sqlcm.remediation"})


@dataclass
class GovernorPolicy:
    """Tuning knobs for the overload governor.

    ``target_overhead`` is the paper's envelope (Figure 2: < 4%); the
    governor escalates when the measured rolling ratio exceeds it.
    ``exit_overhead`` must sit strictly below the target (hysteresis): the
    ladder only recovers when the *estimated ungoverned* ratio drops below
    it.  ``window`` is the sliding virtual-time window the ratio is
    measured over; ``cooldown`` is the minimum virtual time between
    transitions; ``decision_interval`` rate-limits how often the controller
    re-evaluates; ``sample_rate`` is the 1-in-N admission rate applied to
    non-critical rules under SAMPLED and SHEDDING; ``shed_headroom``
    scales the target when sizing the shed set (shed enough attributed cost
    to land at ``target * shed_headroom``, not right at the edge).
    """

    target_overhead: float = 0.04
    exit_overhead: float = 0.02
    window: float = 2.0
    cooldown: float = 4.0
    decision_interval: float = 0.25
    sample_rate: int = 4
    shed_headroom: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.target_overhead < 1.0:
            raise GovernorError("target_overhead must be in (0, 1)")
        if not 0.0 < self.exit_overhead < self.target_overhead:
            raise GovernorError(
                "exit_overhead must be positive and below target_overhead "
                "(hysteresis gap)")
        if self.window <= 0.0:
            raise GovernorError("window must be positive")
        if self.cooldown <= 0.0:
            raise GovernorError("cooldown must be positive")
        if self.decision_interval <= 0.0:
            raise GovernorError("decision_interval must be positive")
        if int(self.sample_rate) != self.sample_rate or self.sample_rate < 2:
            raise GovernorError("sample_rate must be an integer >= 2")
        self.sample_rate = int(self.sample_rate)
        if not 0.0 < self.shed_headroom <= 1.0:
            raise GovernorError("shed_headroom must be in (0, 1]")


@dataclass
class GovernorTransition:
    """One recorded ladder transition."""

    time: float
    from_state: str
    to_state: str
    reason: str  # "escalate" | "recover"
    overhead_ratio: float
    estimated_ratio: float
    suspended: tuple = field(default_factory=tuple)


class OverloadGovernor:
    """Closed-loop controller enforcing the monitoring-overhead envelope.

    One instance per :class:`~repro.core.engine.SQLCM`, attached to the
    server so :meth:`observe` runs every time a session drains the
    monitor-cost pool (i.e. continuously, in virtual time).  The dispatcher
    consults :meth:`admit` per rule evaluation and :meth:`note_eval` after
    each one; the stream engine consults :meth:`admit_stream`; LAT inserts
    consult :meth:`lat_allowed`.
    """

    def __init__(self, sqlcm, policy: GovernorPolicy | None = None):
        self.sqlcm = sqlcm
        self.server = sqlcm.server
        self.policy = policy if policy is not None else GovernorPolicy()
        self.state = GOV_NORMAL
        #: (virtual time, monitor_cost_total, skipped-cost estimate total)
        self._samples: deque[tuple[float, float, float]] = deque()
        self._skipped_total = 0.0
        self._last_decision_at = float("-inf")
        self.last_transition_at = float("-inf")
        self.transitions: list[GovernorTransition] = []
        #: currently suspended components as (kind, lowercase name) pairs
        self.suspended: set[tuple[str, str]] = set()
        # per-rule EMA of evaluation cost (virtual seconds) for estimating
        # the cost of work the governor skipped
        self._ema: dict[str, float] = {}
        self._global_ema = 0.0
        self._event_seq = 0
        self._event_salt = 0
        self._in_decision = False
        self._eff_crit: dict[str, str] = {}
        # controller outputs / telemetry
        self.measured_ratio = 0.0
        self.estimated_ratio = 0.0
        self.events_seen = 0
        self.evals_sampled_out = 0
        self.evals_suspended = 0
        self.inserts_shed = 0
        self.stream_events_shed = 0
        self.requests_denied = 0
        #: XOR digest of admitted sample hashes — equal across replays of
        #: the same trace iff the identical event subset was sampled
        self.sample_digest = 0
        # per-ladder-state virtual time and monitor cost, for the G1 bench
        self.state_time = {state: 0.0 for state in LADDER}
        self.state_cost = {state: 0.0 for state in LADDER}
        self._last_mark: tuple[float, float] | None = None

    # -- event / cost observation -----------------------------------------

    def on_event(self, event: str) -> None:
        """Called by the dispatcher once per dispatched event."""
        self.events_seen += 1
        self._event_seq += 1
        self.observe(self.server.clock.now)
        if self.state != GOV_NORMAL:
            # one CRC per event; admit() extends it per rule name.  Pure
            # function of (event name, sequence number) => replay-stable.
            self._event_salt = zlib.crc32(
                f"{event}:{self._event_seq}".encode())

    def observe(self, now: float | None = None) -> None:
        """Record one (time, cost) sample and maybe run the controller.

        Wired into :meth:`DatabaseServer.take_monitor_cost` so the loop
        closes wherever monitoring cost is drained into the virtual clock.
        """
        if self._in_decision:
            return
        if now is None:
            now = self.server.clock.now
        self.server.add_monitor_cost(self.server.costs.governor_observe)
        cost = self.server.monitor_cost_total
        mark = self._last_mark
        self._last_mark = (now, cost)
        if mark is not None:
            self.state_time[self.state] += now - mark[0]
            self.state_cost[self.state] += cost - mark[1]
        samples = self._samples
        samples.append((now, cost, self._skipped_total))
        # keep one sample at or beyond the window horizon so the measured
        # delta always spans at least the full window once warmed up
        horizon = now - self.policy.window
        while len(samples) >= 3 and samples[1][0] <= horizon:
            samples.popleft()
        if now - self._last_decision_at >= self.policy.decision_interval:
            self._decide(now)

    def note_eval(self, rule_name: str, cost: float) -> None:
        """Feed one observed rule-evaluation cost into the skip estimator."""
        key = rule_name.lower()
        prev = self._ema.get(key)
        self._ema[key] = cost if prev is None else prev * 0.8 + cost * 0.2
        self._global_ema = (cost if self._global_ema == 0.0
                            else self._global_ema * 0.95 + cost * 0.05)

    def _note_skip(self, key: str) -> None:
        self._skipped_total += self._ema.get(key, self._global_ema)

    # -- admission (hot path) ----------------------------------------------

    def admit(self, rule, event: str) -> tuple[bool, int]:
        """Decide whether one rule runs for one event.

        Returns ``(admitted, weight)``; the weight is ``sample_rate`` when
        the evaluation stands in for ``sample_rate`` events (SAMPLED /
        SHEDDING admission), else 1.
        """
        state = self.state
        if state == GOV_NORMAL:
            return True, 1
        if event in EXEMPT_EVENTS:
            return True, 1
        self.server.add_monitor_cost(self.server.costs.governor_admit)
        key = rule.name.lower()
        if ("rule", key) in self.suspended:
            self.evals_suspended += 1
            self._note_skip(key)
            return False, 1
        if self.effective_criticality(rule) == CRITICAL:
            return True, 1
        if state == GOV_ESSENTIAL:
            self.evals_suspended += 1
            self._note_skip(key)
            return False, 1
        rate = self.policy.sample_rate
        admitted_hash = zlib.crc32(key.encode(), self._event_salt)
        if admitted_hash % rate == 0:
            self.sample_digest ^= admitted_hash or 0x9E3779B9
            return True, rate
        self.evals_sampled_out += 1
        self._note_skip(key)
        return False, 1

    def admit_stream(self, query) -> bool:
        """Decide whether one stream query ingests one event.

        Streams are suspended (SHEDDING / ESSENTIAL), never sampled:
        window aggregates and anomaly detectors live deep inside the pane
        machinery where weight compensation does not reach.
        """
        if self.state == GOV_NORMAL:
            return True
        key = query.spec.name.lower()
        if ("stream", key) in self.suspended:
            self.stream_events_shed += 1
            return False
        if (self.state == GOV_ESSENTIAL
                and getattr(query, "criticality", NORMAL) != CRITICAL):
            self.stream_events_shed += 1
            return False
        return True

    def lat_allowed(self, name: str) -> bool:
        """Whether maintenance of the named LAT is currently allowed."""
        if not self.suspended:
            return True
        if ("lat", name.lower()) in self.suspended:
            self.inserts_shed += 1
            return False
        return True

    # -- criticality -------------------------------------------------------

    def effective_criticality(self, rule) -> str:
        """A rule's own class, escalated to CRITICAL if it feeds a CRITICAL
        LAT — shedding the feeder would silently starve the protected table.
        """
        key = rule.name.lower()
        cached = self._eff_crit.get(key)
        if cached is not None:
            return cached
        crit = getattr(rule, "criticality", NORMAL)
        if crit != CRITICAL:
            for action in rule.actions:
                lat_name = getattr(action, "lat_name", None)
                if lat_name and self.sqlcm.has_lat(lat_name):
                    lat = self.sqlcm.lat(lat_name)
                    declared = getattr(lat.definition, "criticality", NORMAL)
                    if declared == CRITICAL:
                        crit = CRITICAL
                        break
        self._eff_crit[key] = crit
        return crit

    def _lat_effective_criticality(self, lat) -> str:
        """A LAT's own class, escalated to CRITICAL when a CRITICAL rule or
        stream feeds or reads it."""
        name = lat.definition.name.lower()
        if getattr(lat.definition, "criticality", NORMAL) == CRITICAL:
            return CRITICAL
        for rule in self.sqlcm._rule_order:
            if getattr(rule, "criticality", NORMAL) != CRITICAL:
                continue
            for action in rule.actions:
                if (getattr(action, "lat_name", None) or "").lower() == name:
                    return CRITICAL
            compiled = getattr(rule, "compiled_condition", None)
            if compiled is not None and name in getattr(compiled, "lats", ()):
                return CRITICAL
        streams = self.sqlcm._streams
        if streams is not None:
            for query in streams.queries():
                if (getattr(query, "criticality", NORMAL) == CRITICAL
                        and (query.sink_lat or "").lower() == name):
                    return CRITICAL
        return NORMAL

    def invalidate_components(self) -> None:
        """Drop cached criticality; re-derive the shed set if degraded.

        Called whenever rules / LATs / streams are added or removed so the
        suspension set never references departed components.
        """
        self._eff_crit.clear()
        if self.state in (GOV_SHEDDING, GOV_ESSENTIAL):
            self._apply_state(self.state)

    def forget_rule(self, name: str) -> None:
        key = name.lower()
        self._ema.pop(key, None)
        self.suspended.discard(("rule", key))

    def forget_stream(self, name: str) -> None:
        self.suspended.discard(("stream", name.lower()))

    def forget_lat(self, name: str) -> None:
        self.suspended.discard(("lat", name.lower()))

    # -- the controller ----------------------------------------------------

    def _window_rates(self) -> tuple[float, float, float] | None:
        samples = self._samples
        if len(samples) < 2:
            return None
        t0, cost0, skipped0 = samples[0]
        t1, cost1, skipped1 = samples[-1]
        span = t1 - t0
        if span <= 0.0:
            return None
        measured = (cost1 - cost0) / span
        estimated = (cost1 - cost0 + skipped1 - skipped0) / span
        return span, measured, estimated

    def _decide(self, now: float) -> None:
        self._last_decision_at = now
        rates = self._window_rates()
        if rates is None:
            return
        span, measured, estimated = rates
        self.measured_ratio = measured
        self.estimated_ratio = estimated
        self.server.add_monitor_cost(self.server.costs.governor_decision)
        obs = self.server.obs
        if obs.enabled:
            obs.gauge("sqlcm.governor.overhead_ratio", measured)
            obs.gauge("sqlcm.governor.estimated_ratio", estimated)
            obs.gauge("sqlcm.governor.state", LADDER.index(self.state))
            obs.gauge("sqlcm.governor.suspended", len(self.suspended))
            obs.gauge("sqlcm.governor.sampled_out", self.evals_sampled_out)
        if span < self.policy.window * 0.5:
            return  # not enough history for a trustworthy ratio yet
        if now - self.last_transition_at < self.policy.cooldown:
            return  # dwell: at most one transition per cooldown window
        index = LADDER.index(self.state)
        if measured > self.policy.target_overhead and index < len(LADDER) - 1:
            self._transition(now, LADDER[index + 1], measured, estimated,
                             "escalate")
        elif estimated < self.policy.exit_overhead and index > 0:
            self._transition(now, LADDER[index - 1], measured, estimated,
                             "recover")

    def _transition(self, now: float, new_state: str, measured: float,
                    estimated: float, reason: str) -> None:
        old_state = self.state
        obs = self.server.obs
        self._in_decision = True
        try:
            with obs.attrib("governor", "controller"), obs.span(
                    f"governor:{reason}", "governor",
                    from_state=old_state, to_state=new_state,
                    overhead_pct=round(measured * 100, 3)):
                self.state = new_state
                self.last_transition_at = now
                self._apply_state(new_state, measured)
        finally:
            self._in_decision = False
        record = GovernorTransition(
            time=now, from_state=old_state, to_state=new_state,
            reason=reason, overhead_ratio=measured,
            estimated_ratio=estimated,
            suspended=tuple(sorted(
                f"{kind}:{name}" for kind, name in self.suspended)))
        self.transitions.append(record)
        if self.sqlcm.journal is not None:
            self.sqlcm.journal.governor_changed(self)
        self._publish(record)

    def _apply_state(self, state: str, measured: float | None = None) -> None:
        if measured is None:
            measured = self.measured_ratio
        if state in (GOV_NORMAL, GOV_SAMPLED):
            self.suspended = set()
        elif state == GOV_SHEDDING:
            self.suspended = self._select_shed(measured)
        else:
            self.suspended = self._all_non_critical()

    def _select_shed(self, measured: float) -> set[tuple[str, str]]:
        """Pick components to suspend from the attributed-cost ranking.

        BEST_EFFORT candidates go before NORMAL ones regardless of cost;
        within a class, the biggest attributed spender goes first.  Enough
        attributed cost is shed to bring the measured ratio back to
        ``target * shed_headroom`` (proportional sizing), with at least one
        component suspended whenever any candidate exists.
        """
        attribution = getattr(self.server.obs, "attribution", None)
        totals = attribution.totals if attribution is not None else {}
        candidates: list[tuple[int, float, str, str, float]] = []
        for rule in self.sqlcm._rule_order:
            crit = self.effective_criticality(rule)
            if crit == CRITICAL:
                continue
            key = rule.name.lower()
            score = totals.get(("rule", key), 0.0)
            for action in rule.actions:
                lat_name = getattr(action, "lat_name", None)
                if lat_name:  # the rule's LAT maintenance is its cost too
                    score += totals.get(("lat", lat_name.lower()), 0.0)
            if score <= 0.0:
                score = self._ema.get(key, 0.0)
            rank = 0 if crit == BEST_EFFORT else 1
            candidates.append((rank, -score, "rule", key, score))
        streams = self.sqlcm._streams
        if streams is not None:
            for query in streams.queries():
                crit = getattr(query, "criticality", NORMAL)
                if crit == CRITICAL:
                    continue
                key = query.spec.name.lower()
                score = totals.get(("stream", key), 0.0)
                rank = 0 if crit == BEST_EFFORT else 1
                candidates.append((rank, -score, "stream", key, score))
        candidates.sort()
        total_score = sum(row[4] for row in candidates)
        needed = 0.0
        if measured > 0.0:
            target = self.policy.target_overhead * self.policy.shed_headroom
            needed = max(0.0, (measured - target) / measured)
        shed: set[tuple[str, str]] = set()
        cumulative = 0.0
        for __, __, kind, name, score in candidates:
            if shed and total_score > 0.0 and (
                    cumulative / total_score) >= needed:
                break
            shed.add((kind, name))
            cumulative += score
        return shed

    def _all_non_critical(self) -> set[tuple[str, str]]:
        shed: set[tuple[str, str]] = set()
        for rule in self.sqlcm._rule_order:
            if self.effective_criticality(rule) != CRITICAL:
                shed.add(("rule", rule.name.lower()))
        streams = self.sqlcm._streams
        if streams is not None:
            for query in streams.queries():
                if getattr(query, "criticality", NORMAL) != CRITICAL:
                    shed.add(("stream", query.spec.name.lower()))
        for lat in self.sqlcm.lats():
            if self._lat_effective_criticality(lat) != CRITICAL:
                shed.add(("lat", lat.definition.name.lower()))
        return shed

    def _publish(self, record: GovernorTransition) -> None:
        engine = self.sqlcm
        if engine._rules_by_event.get("sqlcm.governor_transition"):
            engine.dispatch_event("sqlcm.governor_transition", {
                "from_state": record.from_state,
                "to_state": record.to_state,
                "reason": record.reason,
                "overhead_ratio": record.overhead_ratio,
                "estimated_ratio": record.estimated_ratio,
                "suspended_count": len(self.suspended),
                "time": record.time,
            })

    # -- lifecycle / reporting ---------------------------------------------

    def reset(self) -> None:
        """Return to NORMAL and release every suspension (used on detach)."""
        self.state = GOV_NORMAL
        self.suspended = set()
        self._samples.clear()
        self._last_mark = None

    def state_overheads(self) -> dict[str, float]:
        """Per-ladder-state overhead ratio (state cost / state time)."""
        out: dict[str, float] = {}
        for state in LADDER:
            elapsed = self.state_time[state]
            if elapsed > 0.0:
                out[state] = self.state_cost[state] / elapsed
        return out

    def admit_request(self, criticality: str) -> tuple[bool, float]:
        """Service-tier admission control for one client request.

        Returns ``(admitted, retry_after)``.  NORMAL and SAMPLED admit
        everything — sampling degrades monitoring, never client work.
        SHEDDING drops BEST_EFFORT requests; ESSENTIAL admits only
        CRITICAL ones.  ``retry_after`` (virtual seconds) is the hint the
        service echoes in its ``overloaded`` backpressure reply: the
        soonest the ladder could have stepped back down.
        """
        crit = validate_criticality(criticality)
        state = self.state
        if state in (GOV_NORMAL, GOV_SAMPLED):
            return True, 0.0
        if crit == CRITICAL:
            return True, 0.0
        if state == GOV_SHEDDING and crit != BEST_EFFORT:
            return True, 0.0
        self.requests_denied += 1
        return False, max(self.policy.cooldown,
                          self.policy.decision_interval)

    def describe(self) -> dict:
        return {
            "state": self.state,
            "overhead_ratio": self.measured_ratio,
            "estimated_ratio": self.estimated_ratio,
            "target_overhead": self.policy.target_overhead,
            "exit_overhead": self.policy.exit_overhead,
            "events_seen": self.events_seen,
            "evals_sampled_out": self.evals_sampled_out,
            "evals_suspended": self.evals_suspended,
            "inserts_shed": self.inserts_shed,
            "stream_events_shed": self.stream_events_shed,
            "requests_denied": self.requests_denied,
            "suspended": sorted(
                f"{kind}:{name}" for kind, name in self.suspended),
            "transitions": len(self.transitions),
            "sample_digest": self.sample_digest,
        }
