"""Incident lifecycle + closed-loop auto-remediation.

The paper's ECA rules stop at *alerting*: Cancel exists, but nothing turns
"a rule fired" into a tracked operational state with a scripted fix and a
verified recovery.  This module closes that loop (the ROADMAP's "chaos
scenarios + closed-loop auto-remediation" item, following SAQL's
detect-then-respond shape from PAPERS.md):

* :class:`IncidentManager` dedups and correlates rule firings and stream
  alerts into open -> acked -> resolved *incidents*, keyed by
  ``(incident class, signature)``.  Repeated detections of the same
  condition bump an occurrence counter instead of opening duplicates.
* Escalation and quiet-period auto-resolve run on the existing timer
  subsystem: the manager arms a ``Timer.Alert`` sweep rule, so its own
  upkeep is ordinary monitoring work charged to the monitor-cost pool.
* Remediation actions (:class:`CancelBlockerAction`,
  :class:`QuarantineRuleAction`, :class:`ResetLATAction`) are ECA actions
  guarded by a *remediation budget* and a *flap detector*: a fix that does
  not stick cannot thrash the system — further attempts are recorded as
  ``suppressed`` rather than executed.
* Every lifecycle transition dispatches a ``sqlcm.incident`` meta-event and
  every remediation attempt a ``sqlcm.remediation`` meta-event, so rules
  (and stream queries) can watch the remediation loop itself.
* History is persisted into real engine tables (``sqlcm_incidents``,
  ``sqlcm_remediations``, ``sqlcm_alerts``) so the investigation layer
  (:mod:`repro.monitoring.investigate`) can answer time-windowed
  "what led to incident X" queries after the fact (AIQL-style).

Note: arming the sweep timer keeps the scheduler runnable forever; drive
servers that host an incident manager with ``server.run(until=...)`` (or
``run_until_done``), not a bare ``run()``.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.core.actions import (Action, CallbackAction, _PLACEHOLDER_RE,
                                _substitute, cancel_with_outcome)
from repro.core.rules import Rule
from repro.errors import ActionError, IncidentError

# incident states
INCIDENT_OPEN = "open"
INCIDENT_ACKED = "acked"
INCIDENT_RESOLVED = "resolved"

#: the manager's escalation / auto-resolve sweep timer (and rule) name
SWEEP_TIMER = "sqlcm_incident_sweep"

#: history tables written when ``IncidentPolicy.history`` is on
INCIDENT_TABLE = "sqlcm_incidents"
REMEDIATION_TABLE = "sqlcm_remediations"
ALERT_TABLE = "sqlcm_alerts"


@dataclass
class IncidentPolicy:
    """Tuning knobs for the incident lifecycle and its guardrails.

    ``escalation_timeout``: an incident open and unacknowledged this long
    is escalated to ``critical`` severity (once).  ``clear_after``: an
    active incident with no new detections for this long auto-resolves —
    the recovery verification of the remediation loop.  ``sweep_interval``
    is the period of the timer that applies both; 0 disables the timer
    (sweeps must then be driven manually via :meth:`IncidentManager.sweep`).

    ``max_remediations`` attempts are allowed per incident within a rolling
    ``remediation_window``; beyond that, attempts are suppressed.  A key
    that re-opens ``flap_threshold`` times within ``flap_window`` is
    *flapping*: the fix is not sticking, so further automated remediation
    is suppressed until the window drains (a DBA call, not a loop).

    ``history`` persists incidents/remediations/alerts into engine tables;
    ``alert_kinds`` selects which stream-alert kinds open incidents
    (``window`` emissions are routine output, not anomalies).
    """

    escalation_timeout: float = 10.0
    clear_after: float = 2.0
    sweep_interval: float = 0.5
    max_remediations: int = 3
    remediation_window: float = 60.0
    flap_threshold: int = 3
    flap_window: float = 60.0
    history: bool = True
    alert_to_incident: bool = True
    alert_kinds: tuple = ("deviation", "topk", "having")

    def __post_init__(self) -> None:
        if self.escalation_timeout <= 0 or self.clear_after <= 0:
            raise IncidentError(
                "escalation_timeout and clear_after must be positive")
        if self.max_remediations < 1:
            raise IncidentError("max_remediations must be >= 1")
        if self.flap_threshold < 2:
            raise IncidentError("flap_threshold must be >= 2")


@dataclass
class RemediationRecord:
    """One remediation attempt against an incident."""

    time: float
    incident_id: int
    action: str
    target: str
    outcome: str  # "ok" | "failed" | "suppressed"
    detail: str = ""


@dataclass
class Incident:
    """One deduplicated operational incident."""

    incident_id: int
    incident_class: str
    signature: str
    severity: str
    summary: str
    opened_at: float
    state: str = INCIDENT_OPEN
    acked_at: float | None = None
    resolved_at: float | None = None
    resolution: str | None = None
    last_seen: float = 0.0
    occurrences: int = 1
    escalated: bool = False
    remediations: list[RemediationRecord] = field(default_factory=list)
    #: ordered (time, phase, detail) lifecycle entries — the unit of the
    #: chaos determinism tests' timeline digest
    timeline: list[tuple] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.incident_class.lower(), self.signature)

    @property
    def active(self) -> bool:
        return self.state in (INCIDENT_OPEN, INCIDENT_ACKED)

    def snapshot(self) -> tuple:
        """Hashable state for digests and determinism assertions."""
        return (self.incident_id, self.incident_class, self.signature,
                self.severity, self.state, self.opened_at, self.resolved_at,
                self.occurrences, tuple(self.timeline),
                tuple((r.time, r.action, r.target, r.outcome)
                      for r in self.remediations))


class IncidentManager:
    """Incident dedup/correlation, escalation, and remediation guardrails.

    One instance per :class:`~repro.core.engine.SQLCM`, created lazily by
    :meth:`SQLCM.incident_manager` (pay only for what you monitor).  All
    bookkeeping charges the monitor-cost pool.
    """

    def __init__(self, sqlcm, policy: IncidentPolicy | None = None):
        self.sqlcm = sqlcm
        self.server = sqlcm.server
        self.policy = policy or IncidentPolicy()
        self._incidents: dict[int, Incident] = {}
        self._active: dict[tuple[str, str], int] = {}
        self._next_id = 1
        #: per-key open times inside the flap window
        self._open_times: dict[tuple[str, str], deque] = {}
        # counters (the report section and benchmarks read these)
        self.opened = 0
        self.deduplicated = 0
        self.resolved_count = 0
        self.escalations = 0
        self.remediation_counts = {"ok": 0, "failed": 0, "suppressed": 0}
        #: callables fired on every lifecycle transition (service pushes);
        #: each receives the same payload the ``sqlcm.incident`` meta-event
        #: carries.  Listener errors are isolated, never propagated.
        self._listeners: list = []
        self._history_ready = False
        self._alert_subscribed = False
        if self.policy.alert_to_incident or self.policy.history:
            self.server.events.subscribe("sqlcm.stream_alert",
                                         self._on_stream_alert)
            self._alert_subscribed = True
        if self.policy.sweep_interval > 0:
            self._install_sweeper()

    def detach(self) -> None:
        """Unsubscribe from the host bus (supervised restart teardown)."""
        if self._alert_subscribed:
            self.server.events.unsubscribe("sqlcm.stream_alert",
                                           self._on_stream_alert)
            self._alert_subscribed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def report(self, incident_class: str, signature: str, *,
               severity: str = "warning", summary: str = "") -> Incident:
        """Record one detection: open a new incident or bump an active one.

        Dedup key is ``(incident_class, signature)``: a second detection of
        the same condition while the incident is active increments
        ``occurrences`` instead of opening a duplicate.
        """
        costs = self.server.costs
        now = self.server.clock.now
        key = (incident_class.lower(), str(signature))
        active_id = self._active.get(key)
        if active_id is not None:
            self.server.add_monitor_cost(costs.incident_update)
            incident = self._incidents[active_id]
            incident.occurrences += 1
            incident.last_seen = now
            self.deduplicated += 1
            self._journal_incident(incident)
            return incident
        self.server.add_monitor_cost(costs.incident_open)
        incident = Incident(
            incident_id=self._next_id,
            incident_class=incident_class,
            signature=str(signature),
            severity=severity,
            summary=summary,
            opened_at=now,
            last_seen=now,
        )
        self._next_id += 1
        self._incidents[incident.incident_id] = incident
        self._active[key] = incident.incident_id
        opens = self._open_times.setdefault(key, deque())
        opens.append(now)
        self._trim(opens, now - self.policy.flap_window)
        self.opened += 1
        obs = self.server.obs
        obs.count("sqlcm.incidents.opened")
        obs.gauge("sqlcm.incidents.open", len(self._active))
        self._timeline(incident, "opened", summary)
        self._dispatch_incident(incident, "opened")
        self._history_incident(incident, "opened")
        return incident

    def ack(self, incident_id: int, by: str = "dba") -> Incident:
        """Acknowledge an open incident (stops escalation)."""
        incident = self.incident(incident_id)
        if incident.state != INCIDENT_OPEN:
            raise IncidentError(
                f"incident #{incident_id} is {incident.state}, not open")
        now = self.server.clock.now
        self.server.add_monitor_cost(self.server.costs.incident_update)
        incident.state = INCIDENT_ACKED
        incident.acked_at = now
        self._timeline(incident, "acked", by)
        self._dispatch_incident(incident, "acked")
        self._history_incident(incident, "acked")
        return incident

    def resolve(self, incident_id: int, resolution: str = "",
                by: str = "dba") -> Incident:
        """Close an active incident; a later re-detection opens a new one."""
        incident = self.incident(incident_id)
        if not incident.active:
            raise IncidentError(f"incident #{incident_id} is already resolved")
        now = self.server.clock.now
        self.server.add_monitor_cost(self.server.costs.incident_update)
        incident.state = INCIDENT_RESOLVED
        incident.resolved_at = now
        incident.resolution = resolution or f"resolved by {by}"
        self._active.pop(incident.key, None)
        self.resolved_count += 1
        obs = self.server.obs
        obs.count("sqlcm.incidents.resolved")
        obs.gauge("sqlcm.incidents.open", len(self._active))
        self._timeline(incident, "resolved", incident.resolution)
        self._dispatch_incident(incident, "resolved")
        self._history_incident(incident, "resolved")
        return incident

    def sweep(self) -> None:
        """Escalate stale open incidents; auto-resolve quiet ones.

        Normally driven by the ``sqlcm_incident_sweep`` timer rule; callable
        directly in tests or when the policy disables the timer.
        """
        now = self.server.clock.now
        policy = self.policy
        self.server.add_monitor_cost(self.server.costs.incident_sweep_base)
        for incident_id in list(self._active.values()):
            incident = self._incidents[incident_id]
            if incident.state == INCIDENT_OPEN and not incident.escalated \
                    and now - incident.opened_at >= policy.escalation_timeout:
                self.server.add_monitor_cost(
                    self.server.costs.incident_update)
                incident.escalated = True
                incident.severity = "critical"
                self.escalations += 1
                self.server.obs.count("sqlcm.incidents.escalated")
                self._timeline(incident, "escalated",
                               f"unacknowledged for "
                               f"{policy.escalation_timeout:g}s")
                self._dispatch_incident(incident, "escalated")
                self._history_incident(incident, "escalated")
            if now - incident.last_seen >= policy.clear_after:
                self.resolve(
                    incident.incident_id,
                    resolution=f"auto: quiet for {policy.clear_after:g}s",
                    by="sweeper")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def incident(self, incident_id: int) -> Incident:
        incident = self._incidents.get(incident_id)
        if incident is None:
            raise IncidentError(f"unknown incident #{incident_id}")
        return incident

    def incidents(self, state: str | None = None) -> list[Incident]:
        out = list(self._incidents.values())
        if state is not None:
            out = [i for i in out if i.state == state]
        return out

    def open_incidents(self) -> list[Incident]:
        """Active (open or acked) incidents, oldest first."""
        return [self._incidents[i] for i in sorted(self._active.values())]

    def active(self, incident_class: str, signature: str) -> Incident | None:
        """The active incident with this key, if any."""
        incident_id = self._active.get(
            (incident_class.lower(), str(signature)))
        return None if incident_id is None else self._incidents[incident_id]

    def remediations(self) -> list[RemediationRecord]:
        """All remediation records across incidents, in attempt order."""
        records = [r for i in self._incidents.values()
                   for r in i.remediations]
        records.sort(key=lambda r: (r.time, r.incident_id))
        return records

    def describe(self) -> dict:
        active = self.open_incidents()
        return {
            "opened": self.opened,
            "deduplicated": self.deduplicated,
            "resolved": self.resolved_count,
            "escalations": self.escalations,
            "active": len(active),
            "remediations": dict(self.remediation_counts),
        }

    def timeline_digest(self) -> int:
        """CRC32 over every incident's full timeline and remediations.

        Two same-seed chaos runs must produce identical digests (the
        governor's ``sample_digest`` technique applied to incidents).
        """
        entries = tuple(
            self._incidents[i].snapshot()
            for i in sorted(self._incidents)
        )
        return zlib.crc32(repr(entries).encode("utf-8"))

    # ------------------------------------------------------------------
    # remediation guardrails
    # ------------------------------------------------------------------

    def remediation_allowed(self, incident: Incident) -> tuple[bool, str]:
        """Budget + flap check; returns (allowed, suppression reason)."""
        policy = self.policy
        now = self.server.clock.now
        opens = self._open_times.get(incident.key)
        if opens is not None:
            self._trim(opens, now - policy.flap_window)
            if len(opens) >= policy.flap_threshold:
                return False, (
                    f"flapping: key re-opened {len(opens)} times within "
                    f"{policy.flap_window:g}s")
        horizon = now - policy.remediation_window
        attempts = sum(1 for r in incident.remediations
                       if r.outcome != "suppressed" and r.time >= horizon)
        if attempts >= policy.max_remediations:
            return False, (
                f"budget exhausted: {attempts} attempts within "
                f"{policy.remediation_window:g}s")
        return True, ""

    def record_remediation(self, incident: Incident, action: str,
                           target: str, outcome: str,
                           detail: str = "") -> RemediationRecord:
        """Account one remediation attempt and surface it as a meta-event."""
        now = self.server.clock.now
        record = RemediationRecord(
            time=now, incident_id=incident.incident_id, action=action,
            target=target, outcome=outcome, detail=detail)
        incident.remediations.append(record)
        self.remediation_counts[outcome] = \
            self.remediation_counts.get(outcome, 0) + 1
        obs = self.server.obs
        obs.count("sqlcm.remediation.attempts")
        obs.count(f"sqlcm.remediation.{outcome}")
        self._timeline(incident, f"remediation:{outcome}",
                       f"{action} -> {target}" + (f" ({detail})"
                                                  if detail else ""))
        if self.sqlcm._rules_by_event.get("sqlcm.remediation"):
            self.sqlcm.dispatch_event("sqlcm.remediation", {
                "incident_id": incident.incident_id,
                "incident_class": incident.incident_class,
                "signature": incident.signature,
                "action": action,
                "target": target,
                "outcome": outcome,
                "detail": detail,
                "time": now,
            })
        self._history_remediation(record, incident)
        return record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _trim(times: deque, horizon: float) -> None:
        while times and times[0] < horizon:
            times.popleft()

    def _timeline(self, incident: Incident, phase: str,
                  detail: str = "") -> None:
        incident.timeline.append(
            (self.server.clock.now, phase, detail))
        # every lifecycle phase (and every remediation attempt — see
        # record_remediation) ends in a timeline entry, so this is the
        # one durable-image hook that covers them all
        self._journal_incident(incident)

    def _journal_incident(self, incident: Incident) -> None:
        if self.sqlcm.journal is not None:
            self.sqlcm.journal.incident_changed(self, incident)

    def add_listener(self, listener) -> None:
        """Register a callable fired on every incident lifecycle
        transition (opened / acked / escalated / resolved).  Used by the
        service tier to push incident events to subscribed clients."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _dispatch_incident(self, incident: Incident, phase: str) -> None:
        """Surface one lifecycle transition: notify registered listeners,
        then dispatch the ``sqlcm.incident`` meta-event (only when some
        rule listens — pay for what you monitor)."""
        if not self._listeners \
                and not self.sqlcm._rules_by_event.get("sqlcm.incident"):
            return
        payload = {
            "incident_id": incident.incident_id,
            "incident_class": incident.incident_class,
            "signature": incident.signature,
            "phase": phase,
            "state": incident.state,
            "severity": incident.severity,
            "occurrences": incident.occurrences,
            "summary": incident.summary,
            "time": self.server.clock.now,
        }
        for listener in list(self._listeners):
            try:
                listener(payload)
            except Exception:
                pass
        if self.sqlcm._rules_by_event.get("sqlcm.incident"):
            self.sqlcm.dispatch_event("sqlcm.incident", payload)

    def _install_sweeper(self) -> None:
        self.sqlcm.add_rule(Rule(
            name=SWEEP_TIMER,
            event="Timer.Alert",
            condition=f"Timer.Name = '{SWEEP_TIMER}'",
            actions=[CallbackAction(lambda sqlcm, context: self.sweep())],
            criticality="critical",
        ))
        self.sqlcm.set_timer(SWEEP_TIMER, self.policy.sweep_interval, -1)

    # -- stream-alert sink ----------------------------------------------

    def _on_stream_alert(self, event: str, payload: dict) -> None:
        self._history_alert(payload)
        if not self.policy.alert_to_incident:
            return
        kind = payload.get("kind")
        if kind not in self.policy.alert_kinds:
            return
        stream = payload.get("stream")
        group = payload.get("group")
        signature = stream if group is None else f"{stream}|{group}"
        value = payload.get("value")
        self.report(
            f"stream.{kind}", signature,
            summary=f"stream {stream} {kind} alert: "
                    f"{payload.get('column')}={value}"
                    + (f" group={group}" if group is not None else ""))

    # -- history persistence --------------------------------------------

    _INCIDENT_COLUMNS = ("incident_id", "incident_class", "signature",
                         "phase", "state", "severity", "occurrences",
                         "detail")
    _REMEDIATION_COLUMNS = ("incident_id", "incident_class", "signature",
                            "action", "target", "outcome", "detail")
    _ALERT_COLUMNS = ("stream", "kind", "group_key", "column_name", "value")

    def history_tables(self) -> tuple[str, str, str]:
        """Engine table names the history feature persists into."""
        return (INCIDENT_TABLE, REMEDIATION_TABLE, ALERT_TABLE)

    def _ensure_history(self) -> bool:
        if not self.policy.history:
            return False
        if not self._history_ready:
            from repro.engine.types import SQLType
            self.sqlcm._ensure_reporting_table(
                INCIDENT_TABLE, list(self._INCIDENT_COLUMNS),
                [SQLType.INTEGER, SQLType.STRING, SQLType.STRING,
                 SQLType.STRING, SQLType.STRING, SQLType.STRING,
                 SQLType.INTEGER, SQLType.STRING])
            self.sqlcm._ensure_reporting_table(
                REMEDIATION_TABLE, list(self._REMEDIATION_COLUMNS),
                [SQLType.INTEGER, SQLType.STRING, SQLType.STRING,
                 SQLType.STRING, SQLType.STRING, SQLType.STRING,
                 SQLType.STRING])
            self.sqlcm._ensure_reporting_table(
                ALERT_TABLE, list(self._ALERT_COLUMNS),
                [SQLType.STRING, SQLType.STRING, SQLType.STRING,
                 SQLType.STRING, SQLType.FLOAT])
            self._history_ready = True
        return True

    def _history_row(self, table_name: str, values: list) -> None:
        self.server.add_monitor_cost(self.server.costs.persist_row)
        table = self.server.table(table_name)
        now = self.server.clock.now
        table.insert(values + [now])
        if self.sqlcm.journal is not None:
            self.sqlcm.journal.append("history", {
                "table": table_name, "values": values, "time": now})

    def _history_incident(self, incident: Incident, phase: str) -> None:
        if not self._ensure_history():
            return
        detail = incident.summary if phase == "opened" else \
            (incident.resolution or "") if phase == "resolved" else ""
        self._history_row(INCIDENT_TABLE, [
            incident.incident_id, incident.incident_class,
            incident.signature, phase, incident.state, incident.severity,
            incident.occurrences, detail])

    def _history_remediation(self, record: RemediationRecord,
                             incident: Incident) -> None:
        if not self._ensure_history():
            return
        self._history_row(REMEDIATION_TABLE, [
            record.incident_id, incident.incident_class,
            incident.signature, record.action, record.target,
            record.outcome, record.detail])

    def _history_alert(self, payload: dict) -> None:
        if not self._ensure_history():
            return
        try:
            value = float(payload.get("value"))
        except (TypeError, ValueError):
            value = 0.0
        self._history_row(ALERT_TABLE, [
            payload.get("stream"), payload.get("kind"),
            payload.get("group"), payload.get("column"), value])


# ---------------------------------------------------------------------------
# incident-producing and remediation ECA actions
# ---------------------------------------------------------------------------


def _template_classes(sqlcm, *templates: str) -> set[str]:
    """Schema classes referenced by ``{Class.Attr}`` placeholders."""
    needed: set[str] = set()
    for template in templates:
        for match in _PLACEHOLDER_RE.finditer(template or ""):
            qualifier = match.group(1)
            if sqlcm.schema.has_class(qualifier) \
                    and not sqlcm.has_lat(qualifier):
                needed.add(qualifier.lower())
    return needed


@dataclass
class OpenIncidentAction(Action):
    """``OpenIncident(Class, Signature)`` — report a detection.

    ``signature`` and ``summary`` support ``{Class.Attr}`` placeholders;
    the rendered signature is the dedup key, so e.g.
    ``"{Blocker.Resource}"`` correlates all firings about one hot resource
    into one incident.
    """

    incident_class: str
    signature: str
    severity: str = "warning"
    summary: str = ""

    def validate(self, sqlcm, rule) -> None:
        if not self.incident_class or not self.signature:
            raise ActionError("OpenIncident needs a class and a signature")

    def required_classes(self, sqlcm) -> set[str]:
        return _template_classes(sqlcm, self.signature, self.summary)

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        manager = sqlcm.incident_manager()
        manager.report(
            self.incident_class,
            _substitute(self.signature, context, lat_rows),
            severity=self.severity,
            summary=_substitute(self.summary, context, lat_rows),
        )


@dataclass
class RemediationAction(Action):
    """Base class for guarded remediation actions.

    Subclasses implement :meth:`_remediate` returning
    ``(ok, target, detail)``.  ``execute`` finds (or opens) the incident
    matching the rendered signature, consults the manager's budget and
    flap guardrails, and records the attempt's outcome — ``ok``,
    ``failed``, or ``suppressed`` — which also dispatches the
    ``sqlcm.remediation`` meta-event.
    """

    incident_class: str
    signature: str

    def validate(self, sqlcm, rule) -> None:
        if not self.incident_class or not self.signature:
            raise ActionError(
                f"{type(self).__name__} needs an incident class and "
                f"signature")

    def required_classes(self, sqlcm) -> set[str]:
        return _template_classes(sqlcm, self.signature)

    def _remediate(self, sqlcm, rule, context, lat_rows
                   ) -> tuple[bool, str, str]:
        raise NotImplementedError

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        manager = sqlcm.incident_manager()
        sqlcm.server.add_monitor_cost(
            sqlcm.server.costs.remediation_attempt)
        signature = _substitute(self.signature, context, lat_rows)
        incident = manager.active(self.incident_class, signature)
        if incident is None:
            # remediation without a prior OpenIncident still gets tracked
            incident = manager.report(
                self.incident_class, signature,
                summary=f"implicit (opened by {type(self).__name__})")
        allowed, reason = manager.remediation_allowed(incident)
        name = type(self).__name__
        if not allowed:
            manager.record_remediation(incident, name, "", "suppressed",
                                       reason)
            return
        ok, target, detail = self._remediate(sqlcm, rule, context, lat_rows)
        manager.record_remediation(incident, name, target,
                                   "ok" if ok else "failed", detail)


@dataclass
class CancelBlockerAction(RemediationAction):
    """Cancel the in-context Blocker (or Query) via ``Server.cancel_query``.

    The classic blocking-storm fix: kill the statement holding the hot
    resource.  The cancel outcome is honest — cancelling an
    already-finished statement (e.g. a blocker idling in transaction think
    time) reports ``failed``, not silent success.
    """

    target: str = "Blocker"

    def required_classes(self, sqlcm) -> set[str]:
        return super().required_classes(sqlcm) | {self.target.lower()}

    def _remediate(self, sqlcm, rule, context, lat_rows):
        obj = context.get(self.target.lower())
        if obj is None:
            raise ActionError(
                f"CancelBlocker: no {self.target!r} object in context")
        qctx = obj.source
        if qctx is None:
            raise ActionError("CancelBlocker target has no underlying query")
        ok = cancel_with_outcome(sqlcm, rule, self.target, qctx)
        return (ok, f"query#{qctx.query_id}",
                "cancel requested" if ok else "query already finished")


@dataclass
class QuarantineRuleAction(RemediationAction):
    """Quarantine a named rule via the fault-isolation circuit breaker.

    The overload fix: when a monitoring component itself is the problem
    (e.g. a hostile best-effort rule driving the governor up the ladder),
    take it out of the evaluation path.
    """

    rule_name: str = ""

    def validate(self, sqlcm, rule) -> None:
        super().validate(sqlcm, rule)
        if not self.rule_name:
            raise ActionError("QuarantineRule needs a rule name")

    def _remediate(self, sqlcm, rule, context, lat_rows):
        name = self.rule_name
        if name.lower() not in sqlcm.rules:
            return False, name, "unknown rule"
        if sqlcm.health.health_of(name).quarantined:
            return False, name, "already quarantined"
        by = rule.name if rule is not None else "remediation"
        sqlcm.health.quarantine(name, sqlcm.server.clock.now,
                                f"remediation by rule {by!r}")
        return True, name, "quarantined"


@dataclass
class ResetLATAction(RemediationAction):
    """Reset a named LAT, releasing its memory.

    Companion to :class:`QuarantineRuleAction`: after suspending a
    misbehaving component, drop the state it accumulated.
    """

    lat_name: str = ""

    def validate(self, sqlcm, rule) -> None:
        super().validate(sqlcm, rule)
        if not self.lat_name:
            raise ActionError("ResetLAT needs a LAT name")

    def _remediate(self, sqlcm, rule, context, lat_rows):
        if not sqlcm.has_lat(self.lat_name):
            return False, self.lat_name, "unknown LAT"
        lat = sqlcm.lat(self.lat_name)
        rows = len(lat)
        sqlcm.server.add_monitor_cost(sqlcm.server.costs.lat_latch)
        lat.reset()
        return True, self.lat_name, f"dropped {rows} rows"
