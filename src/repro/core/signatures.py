"""Query and plan signatures (paper Section 4.2).

Four signature kinds:

1. **Logical query signature** — a linearized representation of the logical
   query tree and its predicates.  Identified stored-procedure parameters
   become *parameter symbols* (``@name`` matches only the same parameter);
   constants in ad-hoc queries become *wildcards* (``?``) so different
   instances of the same template share a signature.  Conjunct order is
   normalized so predicate ordering does not affect the signature.
2. **Physical plan signature** — the same linearization applied to the
   physical (execution) plan tree, distinguishing e.g. an index seek from a
   table scan for the same logical query.
3. **Logical transaction signature** — the sequence of logical query
   signatures inside a transaction (exposed as a list of integer signature
   ids, per Appendix A).
4. **Physical transaction signature** — the sequence of physical plan
   signatures.

Signatures are computed once during optimization and cached with the query
plan, so a plan-cache hit also hits the signature cache.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.engine.planner import physical as phys
from repro.engine.planner.exprs import SlotRef
from repro.engine.planner.logical import (LogicalAggregate, LogicalDelete,
                                          LogicalDistinct, LogicalFilter,
                                          LogicalGet, LogicalInsert,
                                          LogicalJoin, LogicalLimit,
                                          LogicalNode, LogicalProject,
                                          LogicalSort, LogicalUpdate)
from repro.engine.sqlparse import ast_nodes as ast

WILDCARD = "?"


def linearize_expr(expr: ast.Expr | None, parameters_symbolic: bool = True
                   ) -> str:
    """Linearize an expression with constants → wildcards.

    Parameters stay symbolic (``@name``) when ``parameters_symbolic`` — the
    paper replaces each stored-procedure parameter with a symbol matching
    only other occurrences of the same parameter; ad-hoc constants become
    plain wildcards.
    """
    if expr is None:
        return "-"
    if isinstance(expr, ast.Literal):
        return WILDCARD
    if isinstance(expr, ast.Parameter):
        return f"@{expr.name.lower()}" if parameters_symbolic else WILDCARD
    if isinstance(expr, ast.ColumnRef):
        table = expr.table.lower() if expr.table else ""
        return f"col({table}.{expr.name.lower()})"
    if isinstance(expr, SlotRef):
        return f"slot({expr.slot})"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}({linearize_expr(expr.operand, parameters_symbolic)})"
    if isinstance(expr, ast.BinaryOp):
        left = linearize_expr(expr.left, parameters_symbolic)
        right = linearize_expr(expr.right, parameters_symbolic)
        if expr.op == "AND":
            # normalize conjunct order (paper: signatures match up to
            # predicate ordering)
            conjuncts = sorted(_conjunct_strings(expr, parameters_symbolic))
            return "and(" + ",".join(conjuncts) + ")"
        if expr.op in ("=", "!=", "+", "*", "OR"):
            # commutative: normalize operand order
            left, right = sorted((left, right))
        return f"{expr.op}({left},{right})"
    if isinstance(expr, ast.IsNull):
        prefix = "notnull" if expr.negated else "isnull"
        return f"{prefix}({linearize_expr(expr.operand, parameters_symbolic)})"
    if isinstance(expr, ast.InList):
        body = linearize_expr(expr.operand, parameters_symbolic)
        items = ",".join(
            sorted(linearize_expr(i, parameters_symbolic)
                   for i in expr.items)
        )
        prefix = "notin" if expr.negated else "in"
        return f"{prefix}({body};{items})"
    if isinstance(expr, ast.Between):
        parts = (
            linearize_expr(expr.operand, parameters_symbolic),
            linearize_expr(expr.low, parameters_symbolic),
            linearize_expr(expr.high, parameters_symbolic),
        )
        prefix = "notbetween" if expr.negated else "between"
        return f"{prefix}({','.join(parts)})"
    if isinstance(expr, ast.Like):
        prefix = "notlike" if expr.negated else "like"
        return (f"{prefix}({linearize_expr(expr.operand, parameters_symbolic)},"
                f"{linearize_expr(expr.pattern, parameters_symbolic)})")
    if isinstance(expr, ast.FuncCall):
        if expr.star:
            return f"{expr.name.lower()}(*)"
        args = ",".join(linearize_expr(a, parameters_symbolic)
                        for a in expr.args)
        distinct = "distinct:" if expr.distinct else ""
        return f"{expr.name.lower()}({distinct}{args})"
    return f"<{type(expr).__name__}>"  # pragma: no cover


def _conjunct_strings(expr: ast.Expr, symbolic: bool) -> list[str]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return (_conjunct_strings(expr.left, symbolic)
                + _conjunct_strings(expr.right, symbolic))
    return [linearize_expr(expr, symbolic)]


# ---------------------------------------------------------------------------
# logical signature
# ---------------------------------------------------------------------------

def linearize_logical(node: LogicalNode) -> str:
    """Linearize a logical plan tree, pre-order."""
    parts: list[str] = []
    _linearize_logical(node, parts)
    return "|".join(parts)


def _linearize_logical(node: LogicalNode, parts: list[str]) -> None:
    if isinstance(node, LogicalGet):
        parts.append(node.label())
    elif isinstance(node, LogicalFilter):
        parts.append(f"FILTER[{linearize_expr(node.predicate)}]")
    elif isinstance(node, LogicalJoin):
        parts.append(f"{node.label()}[{linearize_expr(node.condition)}]")
    elif isinstance(node, LogicalAggregate):
        groups = ",".join(sorted(linearize_expr(g)
                                 for g in node.group_exprs))
        aggs = ",".join(linearize_expr(a) for a in node.agg_calls)
        parts.append(f"AGG[g:{groups};a:{aggs}]")
    elif isinstance(node, LogicalSort):
        keys = ",".join(
            f"{linearize_expr(expr)}:{'d' if desc else 'a'}"
            for expr, desc in node.keys
        )
        parts.append(f"SORT[{keys}]")
    elif isinstance(node, LogicalLimit):
        parts.append(f"LIMIT[{node.count}]")
    elif isinstance(node, LogicalProject):
        items = ",".join(linearize_expr(expr) for expr, __ in node.items)
        parts.append(f"PROJECT[{items}]")
    elif isinstance(node, LogicalDistinct):
        parts.append("DISTINCT")
    elif isinstance(node, LogicalInsert):
        parts.append(
            f"{node.label()}[{','.join(c.lower() for c in node.target_columns)}"
            f";rows:{len(node.rows)}]"
        )
    elif isinstance(node, LogicalUpdate):
        assigns = ",".join(
            f"{col.lower()}={linearize_expr(expr)}"
            for col, expr in node.assignments
        )
        parts.append(
            f"{node.label()}[{assigns};{linearize_expr(node.predicate)}]"
        )
    elif isinstance(node, LogicalDelete):
        parts.append(f"{node.label()}[{linearize_expr(node.predicate)}]")
    else:  # SINGLEROW and future node kinds
        parts.append(node.label())
    for child in node.children:
        _linearize_logical(child, parts)


# ---------------------------------------------------------------------------
# physical signature
# ---------------------------------------------------------------------------

def linearize_physical(node: phys.PhysicalNode) -> str:
    """Linearize a physical plan tree, pre-order."""
    parts: list[str] = []
    _linearize_physical(node, parts)
    return "|".join(parts)


def _linearize_physical(node: phys.PhysicalNode, parts: list[str]) -> None:
    label = node.label()
    if isinstance(node, (phys.PhysTableScan, phys.PhysIndexSeek)):
        predicate = linearize_expr(node.filter_expr)
        parts.append(f"{label}[{predicate}]")
    elif isinstance(node, phys.PhysFilter):
        parts.append(f"{label}[{linearize_expr(node.predicate_expr)}]")
    else:
        parts.append(label)
    for child in node.children:
        _linearize_physical(child, parts)


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------

def digest(linearization: str) -> bytes:
    """Stable binary signature value (the Appendix A BLOB)."""
    return hashlib.sha1(linearization.encode("utf-8")).digest()


def logical_signature(node: LogicalNode) -> bytes:
    return digest(linearize_logical(node))


def physical_signature(node: phys.PhysicalNode) -> bytes:
    return digest(linearize_physical(node))


def sequence_signature(ids: Iterable[int]) -> bytes:
    """Transaction signature: digest of an ordered id sequence."""
    body = ",".join(str(i) for i in ids)
    return hashlib.sha1(f"seq[{body}]".encode("utf-8")).digest()


class SignatureRegistry:
    """Maps signature BLOBs to small integer ids.

    Appendix A exposes transaction signatures as "a list of integers"; the
    registry provides that compact id space and doubles as the
    ``Number_of_instances`` counter backing store.
    """

    def __init__(self):
        self._ids: dict[bytes, int] = {}
        self._next = 1

    def id_of(self, signature: bytes | None) -> int:
        if signature is None:
            return 0
        found = self._ids.get(signature)
        if found is None:
            found = self._next
            self._ids[signature] = found
            self._next += 1
        return found

    def __len__(self) -> int:
        return len(self._ids)
