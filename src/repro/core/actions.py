"""Rule actions (paper Section 5.3).

``Insert``, ``Reset``, ``Persist``, ``SendMail``, ``RunExternal``,
``Cancel``, ``Set`` — executed in order when a rule fires.  Side-effecting
actions that the paper delivers externally (mail, external programs) are
delivered to in-process sinks (:class:`Mail` outbox, command journal) so
monitoring applications and tests can observe them; a real deployment would
swap the sinks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.objects import MonitoredObject
from repro.errors import ActionError

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][\w]*)\.([A-Za-z_][\w]*)\}")


@dataclass
class Mail:
    """One delivered SendMail message."""

    time: float
    address: str
    body: str


@dataclass
class Command:
    """One RunExternal invocation record."""

    time: float
    command: str


def _substitute(template: str, context: dict[str, MonitoredObject],
                lat_rows: dict[str, dict | None]) -> str:
    """Replace ``{Class.Attr}`` / ``{LAT.Column}`` placeholders with values."""

    def repl(match: re.Match) -> str:
        qualifier, attr = match.group(1).lower(), match.group(2)
        obj = context.get(qualifier)
        if obj is not None:
            return str(obj.get(attr))
        row = lat_rows.get(qualifier)
        if row is not None:
            lowered = {k.lower(): v for k, v in row.items()}
            if attr.lower() in lowered:
                return str(lowered[attr.lower()])
        return match.group(0)

    return _PLACEHOLDER_RE.sub(repl, template)


class Action:
    """Base class for rule actions."""

    #: side-effecting actions (mail, external programs, persist writes) get
    #: bounded retry + dead-lettering from the engine's isolation boundary;
    #: internal actions (LAT maintenance, cancel, timers) fail fast instead
    #: because retrying them is not idempotent-safe
    side_effect = False

    def required_classes(self, sqlcm) -> set[str]:
        """Monitored classes that must be in context for this action."""
        return set()

    def validate(self, sqlcm, rule) -> None:
        """Called at rule registration; raise ActionError on bad wiring."""

    def execute(self, sqlcm, rule, context: dict[str, MonitoredObject],
                lat_rows: dict[str, dict | None]) -> None:
        raise NotImplementedError

    def describe(self, context: dict[str, MonitoredObject],
                 lat_rows: dict[str, dict | None]) -> str:
        """Human-readable payload for dead-letter entries."""
        return repr(self)


@dataclass
class InsertAction(Action):
    """``Insert(LATName)`` — insert/update the in-context object's row."""

    lat_name: str

    def required_classes(self, sqlcm) -> set[str]:
        lat = sqlcm.lat(self.lat_name)
        return {lat.definition.monitored_class.lower()}

    def validate(self, sqlcm, rule) -> None:
        sqlcm.lat(self.lat_name)  # raises if missing

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        governor = sqlcm.governor
        if governor is not None and not governor.lat_allowed(self.lat_name):
            return  # the overload governor suspended this LAT's maintenance
        lat = sqlcm.lat(self.lat_name)
        class_key = lat.definition.monitored_class.lower()
        obj = context.get(class_key)
        if obj is None:
            raise ActionError(
                f"Insert({self.lat_name}): no {class_key!r} object in context"
            )
        costs = sqlcm.server.costs
        obs = sqlcm.server.obs
        # the LAT, not the firing rule, owns maintenance cost — the paper
        # calls LAT maintenance "the biggest factor" and attribution must
        # be able to show that
        with obs.attrib("lat", self.lat_name), \
                obs.span(f"lat.insert:{self.lat_name}", "lat"):
            sqlcm.server.add_monitor_cost(
                costs.lat_insert + 3 * costs.lat_latch
            )
            sqlcm.check_fault("lat.insert")
            evicted = lat.insert(obj, sqlcm.sample_weight)
            if evicted:
                sqlcm.server.add_monitor_cost(costs.lat_evict * len(evicted))
                for row in evicted:
                    sqlcm.enqueue_evict_event(self.lat_name, row)
        if obs.enabled:
            obs.count("sqlcm.lat.inserts")
            if evicted:
                obs.count("sqlcm.lat.evictions", len(evicted))
            obs.gauge(f"sqlcm.lat.rows.{self.lat_name.lower()}", len(lat))
            obs.gauge(f"sqlcm.lat.occupancy.{self.lat_name.lower()}",
                      lat.occupancy())


@dataclass
class ResetAction(Action):
    """``Reset(LATName)`` — clear the LAT and free its memory."""

    lat_name: str

    def validate(self, sqlcm, rule) -> None:
        sqlcm.lat(self.lat_name)

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        sqlcm.server.add_monitor_cost(sqlcm.server.costs.lat_latch)
        sqlcm.lat(self.lat_name).reset()


@dataclass
class PersistAction(Action):
    """``Persist(TableName, Attr...)`` — write an object or a whole LAT to a
    disk-resident table (with an extra timestamp column)."""

    table: str
    attributes: list[str] | None = None
    source: str | None = None  # class name or LAT name; default: event class

    side_effect = True

    def _resolve_source(self, sqlcm, rule) -> tuple[str, str]:
        """Returns ("lat"|"class", lowercase name)."""
        name = self.source
        if name is None:
            if rule is None or rule.event_class is None:
                raise ActionError("Persist needs an explicit source")
            name = rule.event_class.name
        key = name.lower()
        if sqlcm.has_lat(key):
            return "lat", key
        if sqlcm.schema.has_class(name):
            return "class", key
        raise ActionError(
            f"Persist source {name!r} is neither a LAT nor a class"
        )

    def validate(self, sqlcm, rule) -> None:
        kind, name = self._resolve_source(sqlcm, rule)
        if kind == "class" and self.attributes:
            cls = sqlcm.schema.monitored_class(name)
            if cls.name.lower() != "evicted":
                for attr in self.attributes:
                    cls.attribute(attr)

    def required_classes(self, sqlcm) -> set[str]:
        if self.source is not None and not sqlcm.has_lat(self.source.lower()) \
                and sqlcm.schema.has_class(self.source):
            return {self.source.lower()}
        return set()

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        kind, name = self._resolve_source(sqlcm, rule)
        if kind == "lat":
            sqlcm.persist_lat(name, self.table)
            return
        obj = context.get(name)
        if obj is None:
            raise ActionError(f"Persist: no {name!r} object in context")
        sqlcm.persist_object(obj, self.table, self.attributes)

    def describe(self, context, lat_rows) -> str:
        return f"Persist -> {self.table} (source={self.source or 'event'})"


@dataclass
class SendMailAction(Action):
    """``SendMail(Text, Address)`` — deliver to the SQLCM outbox.

    ``{Class.Attr}`` and ``{LAT.Column}`` placeholders are substituted.
    """

    text: str
    address: str

    side_effect = True

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        sqlcm.server.add_monitor_cost(sqlcm.server.costs.sendmail_cost)
        body = _substitute(self.text, context, lat_rows)
        sqlcm.check_fault("sink")
        sqlcm.outbox.append(Mail(sqlcm.server.clock.now, self.address, body))

    def describe(self, context, lat_rows) -> str:
        return (f"SendMail to {self.address}: "
                f"{_substitute(self.text, context, lat_rows)}")


@dataclass
class RunExternalAction(Action):
    """``RunExternal(Command)`` — record to the command journal and invoke
    the engine's external handler, if one is registered."""

    command: str

    side_effect = True

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        sqlcm.server.add_monitor_cost(sqlcm.server.costs.runexternal_cost)
        rendered = _substitute(self.command, context, lat_rows)
        sqlcm.check_fault("sink")
        if sqlcm.external_handler is not None:
            sqlcm.external_handler(rendered)
        # journal records *delivered* invocations: appended only after the
        # handler succeeds so retried deliveries are not double-counted
        sqlcm.command_journal.append(
            Command(sqlcm.server.clock.now, rendered)
        )

    def describe(self, context, lat_rows) -> str:
        return f"RunExternal: {_substitute(self.command, context, lat_rows)}"


@dataclass
class CallbackAction(Action):
    """Extension action: invoke a Python callable with (sqlcm, context).

    The paper notes SQLCM "offers a generic interface to integrate new
    monitored objects, events and probes"; this is the equivalent extension
    point on the action side, used by in-server applications (e.g. the
    resource governor's MPL policy) that need engine state a declarative
    action cannot reach.
    """

    callback: Any
    required: tuple[str, ...] = ()

    def required_classes(self, sqlcm) -> set[str]:
        return {name.lower() for name in self.required}

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        self.callback(sqlcm, context)


_CANCELLABLE = {"query", "blocker", "blocked"}


def cancel_with_outcome(sqlcm, rule, target: str, qctx) -> bool:
    """Cancel ``qctx`` and surface the outcome instead of swallowing it.

    ``Server.cancel_query`` returns ``False`` when the victim has already
    finished (e.g. a blocker idling in transaction think time) — an outcome
    DBAs need to see, because the rule *looked* like it acted but nothing
    was released.  Publishes a ``sqlcm.cancel`` event either way and bumps
    ``sqlcm.cancel.failed`` on the no-op path.  Returns the cancel result.
    """
    ok = sqlcm.server.cancel_query(qctx)
    obs = sqlcm.server.obs
    obs.count("sqlcm.cancel.requested")
    if not ok:
        obs.count("sqlcm.cancel.failed")
    sqlcm.server.events.publish("sqlcm.cancel", {
        "rule": rule.name if rule is not None else None,
        "target": target,
        "query_id": qctx.query_id,
        "ok": ok,
        "time": sqlcm.server.clock.now,
    })
    return ok


@dataclass
class CancelAction(Action):
    """``Cancel()`` — cancel the in-context Query / Blocker / Blocked.

    The cancel signal is asynchronous: all remaining rules for the current
    event run first; the victim notices at its next execution step.
    """

    target: str = "Query"

    def validate(self, sqlcm, rule) -> None:
        if self.target.lower() not in _CANCELLABLE:
            raise ActionError(
                f"Cancel can only target Query/Blocker/Blocked, "
                f"not {self.target!r}"
            )

    def required_classes(self, sqlcm) -> set[str]:
        return {self.target.lower()}

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        obj = context.get(self.target.lower())
        if obj is None:
            raise ActionError(f"Cancel: no {self.target!r} object in context")
        qctx = obj.source
        if qctx is None:
            raise ActionError("Cancel target has no underlying query")
        cancel_with_outcome(sqlcm, rule, self.target, qctx)


@dataclass
class SetTimerAction(Action):
    """``Set(Time, number_alarms)`` — configure a Timer object.

    ``repeats``: 0 disables the timer, a negative number loops forever.
    """

    timer_name: str
    interval: float
    repeats: int = -1

    def validate(self, sqlcm, rule) -> None:
        if self.interval <= 0 and self.repeats != 0:
            raise ActionError("timer interval must be positive")

    def execute(self, sqlcm, rule, context, lat_rows) -> None:
        sqlcm.set_timer(self.timer_name, self.interval, self.repeats)
