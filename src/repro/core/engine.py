"""The SQLCM engine: monitoring engine + ECA rule engine (paper Sections 4-5).

Attach one :class:`SQLCM` to a :class:`~repro.engine.DatabaseServer`; it
subscribes to the server's event bus and evaluates registered rules
synchronously in the event's execution path.  All monitoring work — rule
evaluation, LAT maintenance, signature computation, persist writes — charges
the server's monitor-cost pool, which the running session converts into
virtual time; this is what the overhead experiments measure.

Design contracts from the paper honored here:

* *Fixed rule order, deferred side effects* (Section 5): rules run in
  registration order; events raised by actions (LAT evictions, cancel
  signals) are queued and processed only after all rules for the current
  event have run.
* *Pay only for what you monitor* (Section 2.1): events with no registered
  rules return immediately; signatures are only computed when some rule or
  LAT references them.
* *Scope semantics* (Section 5.2): if the condition references the event's
  class, the triggering object is in context; other referenced classes are
  iterated over all registered objects (Blocker/Blocked pairs come from a
  lock-graph traversal, as in Section 6.1).
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Any, Callable, Iterable

from repro.core.condition import bind_condition
from repro.core.governor import GovernorPolicy, OverloadGovernor
from repro.core.lat import LAT, LATDefinition
from repro.core.objects import MonitoredObject, ObjectFactory
from repro.core.resilience import (CHECKSUM_COLUMN, DeadLetter,
                                   DeadLetterJournal, FaultInjector,
                                   QuarantinePolicy, RetryPolicy,
                                   RuleHealthRegistry, row_checksum)
from repro.core.rules import Rule
from repro.core.schema import SCHEMA, SQLCMSchema
from repro.core.signatures import (SignatureRegistry, linearize_logical,
                                   linearize_physical, digest,
                                   sequence_signature)
from repro.core.timers import TimerService
from repro.engine.catalog import ColumnDef, TableSchema
from repro.engine.planner.logical import walk_logical
from repro.engine.planner.physical import walk_physical
from repro.engine.types import SQLType
from repro.errors import (ActionDeliveryError, FaultInjected, LATError,
                          PersistCorruptionError, RuleError,
                          RuleQuarantinedError, SchemaError)

_SIGNATURE_ATTRS = {"logical_signature", "physical_signature"}
_INSTANCE_ATTRS = {"number_of_instances"}


class SQLCM:
    """SQL Continuous Monitoring engine, embedded in a database server."""

    # bus hook points the monitor listens on (query.compile is separate:
    # it routes through _on_compile for signature fill-in first)
    SUBSCRIBED_EVENTS = (
        "query.start", "query.commit", "query.cancel",
        "query.rollback", "query.blocked", "query.block_released",
        "txn.begin", "txn.commit", "txn.rollback", "session.login",
        "session.login_failed", "session.logout", "sqlcm.stream_alert",
    )

    def __init__(self, server=None, schema: SQLCMSchema | None = None,
                 faults: FaultInjector | None = None,
                 quarantine: QuarantinePolicy | None = None,
                 retry: RetryPolicy | None = None,
                 governor: GovernorPolicy | None = None,
                 subscribe: bool = True,
                 driver=None):
        if driver is None:
            # default backend: the in-memory engine the monitor grew up
            # embedded in (wrapping it is side-effect free)
            from repro.drivers.inmemory import InMemoryDriver
            driver = InMemoryDriver(server)
        self.driver = driver
        self.server = driver.host
        # False for shard-local instances: events arrive via explicit
        # delivery from the ShardedSQLCM router, not the server's bus
        self.bus_subscribed = subscribe
        self.schema = schema or SCHEMA
        # overload governor (closed-loop degradation); off unless enabled
        self.governor: OverloadGovernor | None = None
        # weight the current rule evaluation carries into LAT inserts;
        # > 1 only while a sampled evaluation stands in for skipped events
        self.sample_weight: int = 1
        self.factory = ObjectFactory(self)
        self.timer_service = TimerService(self)
        self.rules: dict[str, Rule] = {}
        self._rule_order: list[Rule] = []
        self._rules_by_event: dict[str, list[Rule]] = {}
        self._lats: dict[str, LAT] = {}
        self.outbox: list = []
        self.command_journal: list = []
        self.external_handler: Callable[[str], None] | None = None
        self._sig_registry = SignatureRegistry()
        self._instance_counts: dict[bytes, int] = {}
        self._signatures_forced = False
        # memoized signatures_needed; None = dirty, recompute on next read
        self._signatures_needed_cache: bool | None = None
        self._event_queue: deque[tuple[str, dict]] = deque()
        self._dispatching = False
        self.events_handled = 0
        self.rule_firings = 0
        # fault-isolation layer: rule failures are caught at the boundary,
        # charged to the clock, and recorded here instead of crashing the
        # triggering query (the paper's non-intrusiveness contract)
        self.health = RuleHealthRegistry(quarantine)
        self.retry_policy = retry or RetryPolicy()
        self.dead_letters = DeadLetterJournal()
        self.faults = faults
        self.rule_errors = 0
        # durability journal (set by DurabilityManager.attach); mutations
        # append logical redo records after they complete
        self.journal = None
        # the continuous stream-query subsystem is created lazily (pay only
        # for what you monitor); see stream_engine()
        self._streams = None
        # the incident manager too; see incident_manager()
        self._incidents = None
        if subscribe:
            self.driver.wire(self)
        if governor is not None:
            self.enable_governor(governor)

    # ------------------------------------------------------------------
    # LAT management
    # ------------------------------------------------------------------

    def create_lat(self, definition: LATDefinition,
                   structure: type[LAT] = LAT) -> LAT:
        """Create a LAT; validates grouping/aggregation attributes."""
        key = definition.name.lower()
        if key in self._lats:
            raise LATError(f"LAT {definition.name!r} already exists")
        cls = self.schema.monitored_class(definition.monitored_class)
        if cls.name.lower() != "evicted":
            for attr in definition.source_attributes():
                cls.attribute(attr)  # raises SchemaError if unknown
        lat = structure(definition, self.server.clock)
        self._lats[key] = lat
        self.invalidate_signature_cache()
        if self.journal is not None:
            lat.journal = self.journal
            self.journal.lat_created(definition)
        return lat

    def drop_lat(self, name: str) -> None:
        key = name.lower()
        if key not in self._lats:
            raise LATError(f"unknown LAT {name!r}")
        for rule in self._rule_order:
            if rule.compiled_condition is not None and \
                    key in rule.compiled_condition.lats:
                raise LATError(
                    f"LAT {name!r} is referenced by rule {rule.name!r}"
                )
        if self._streams is not None:
            for query in self._streams.queries():
                if query.sink_lat is not None and \
                        query.sink_lat.lower() == key:
                    raise LATError(
                        f"LAT {name!r} is the alert sink of stream query "
                        f"{query.spec.name!r}"
                    )
        del self._lats[key]
        self.invalidate_signature_cache()
        if self.journal is not None:
            self.journal.lat_dropped(name)

    def lat(self, name: str) -> LAT:
        try:
            return self._lats[name.lower()]
        except KeyError:
            raise LATError(f"unknown LAT {name!r}") from None

    def has_lat(self, name: str) -> bool:
        return name.lower() in self._lats

    def lats(self) -> list[LAT]:
        return list(self._lats.values())

    # ------------------------------------------------------------------
    # rule management
    # ------------------------------------------------------------------

    def add_rule(self, rule: Rule) -> Rule:
        """Bind and register a rule (takes effect immediately)."""
        key = rule.name.lower()
        if key in self.rules:
            raise RuleError(f"rule {rule.name!r} already exists")
        cls, event_def = self.schema.resolve_event(rule.event)
        rule.event_class = cls
        rule.event_def = event_def
        if rule.condition is not None:
            rule.compiled_condition = bind_condition(
                rule.condition, self.schema, set(self._lats),
                lambda lat: {c.lower() for c in
                             self.lat(lat).definition.column_names()},
            )
        for action in rule.actions:
            action.validate(self, rule)
        self.rules[key] = rule
        self._rule_order.append(rule)
        self._rules_by_event.setdefault(event_def.engine_event, []).append(rule)
        self.invalidate_signature_cache()
        if self.journal is not None:
            self.journal.rule_added(rule)
        return rule

    def remove_rule(self, name: str) -> None:
        rule = self.rules.pop(name.lower(), None)
        if rule is None:
            raise RuleError(f"unknown rule {name!r}")
        self._rule_order.remove(rule)
        event = rule.event_def.engine_event
        peers = self._rules_by_event[event]
        peers.remove(rule)
        if not peers:
            # drop the key outright: under rule churn, keeping empty lists
            # keyed grows the dict without bound
            del self._rules_by_event[event]
        # the health record goes with the rule: a later rule reusing the
        # name must not inherit error counts or quarantine state
        self.health.drop(rule.name)
        if self.governor is not None:
            self.governor.forget_rule(rule.name)
        self.invalidate_signature_cache()
        if self.journal is not None:
            self.journal.rule_removed(rule.name)

    def enable_rule(self, name: str, enabled: bool = True) -> None:
        rule = self.rules.get(name.lower())
        if rule is None:
            raise RuleError(f"unknown rule {name!r}")
        if enabled and self.health.health_of(name).quarantined:
            raise RuleQuarantinedError(
                f"rule {name!r} is quarantined "
                f"({self.health.health_of(name).quarantine_reason}); "
                f"call release_quarantine first")
        rule.enabled = enabled
        if self.journal is not None:
            self.journal.rule_enabled(rule.name, enabled)

    # ------------------------------------------------------------------
    # fault isolation: health, quarantine, fault injection
    # ------------------------------------------------------------------

    def rule_health(self, name: str):
        """The :class:`RuleHealth` record of a registered rule."""
        if name.lower() not in self.rules:
            raise RuleError(f"unknown rule {name!r}")
        return self.health.health_of(name)

    def quarantined_rules(self) -> list[str]:
        """Names of rules currently held out by the circuit breaker."""
        quarantined = {h.name for h in self.health.quarantined()}
        return [r.name for r in self._rule_order
                if r.name.lower() in quarantined]

    def release_quarantine(self, name: str) -> None:
        """DBA override: put a quarantined rule back in the eval path."""
        if name.lower() not in self.rules:
            raise RuleError(f"unknown rule {name!r}")
        self.health.release(name)

    def set_fault_injector(self, faults: FaultInjector | None) -> None:
        """Install (or remove, with None) the deterministic fault harness."""
        self.faults = faults

    def check_fault(self, site: str) -> None:
        """Consult the fault injector at one site; charges latency faults
        to the monitor-cost pool, lets exception faults propagate to the
        enclosing isolation boundary."""
        if self.faults is None:
            return
        extra = self.faults.check(site)
        if extra:
            self.server.add_monitor_cost(extra)

    def set_timer(self, name: str, interval: float, repeats: int = -1):
        """Arm a timer (the Set action, also usable directly)."""
        return self.timer_service.set(name, interval, repeats)

    # ------------------------------------------------------------------
    # overload governor
    # ------------------------------------------------------------------

    def enable_governor(self, policy: GovernorPolicy | None = None
                        ) -> OverloadGovernor:
        """Install the closed-loop overload governor.

        Enables observability as a side effect: the governor's SHEDDING
        state ranks components by the attribution layer's per-component
        cost data.  Idempotent; returns the (possibly existing) governor.
        """
        if self.governor is None:
            self.server.enable_observability()
            self.governor = OverloadGovernor(self, policy)
            self.server.attach_governor(self.governor)
        return self.governor

    def disable_governor(self) -> None:
        """Remove the governor, releasing every suspension."""
        governor = self.governor
        if governor is not None:
            governor.reset()
            self.server.detach_governor()
            self.governor = None
            self.sample_weight = 1

    # ------------------------------------------------------------------
    # supervised restart teardown
    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Unhook this monitor from its host server entirely.

        Supervised restart (see :mod:`repro.service`) tears the crashed
        monitor down with this before rebuilding a replacement from the
        durability directory: bus subscriptions, stream/incident
        listeners, the governor, and pending timers all come off so the
        old instance can no longer observe (or charge) the host.
        Idempotent."""
        if self.bus_subscribed:
            bus = self.server.events
            for event in self.SUBSCRIBED_EVENTS:
                bus.unsubscribe(event, self._on_engine_event)
            bus.unsubscribe("query.compile", self._on_compile)
            self.bus_subscribed = False
        if self._streams is not None:
            self._streams.detach()
        if self._incidents is not None:
            self._incidents.detach()
        self.disable_governor()
        self.timer_service.shutdown()

    # ------------------------------------------------------------------
    # continuous stream queries
    # ------------------------------------------------------------------

    def stream_engine(self):
        """The continuous stream-query engine, created on first use.

        Stream queries subscribe to the same event-bus hook points as the
        rule engine, maintain incremental window aggregates, and close the
        loop by publishing ``sqlcm.stream_alert`` events that ECA rules
        (event ``StreamAlert.Alert``) can consume.
        """
        if self._streams is None:
            from repro.stream import StreamEngine
            self._streams = StreamEngine(self)
            if self.journal is not None:
                self.journal.attach_stream_health(self._streams)
        return self._streams

    @property
    def has_streams(self) -> bool:
        """True once the stream engine exists and has registered queries."""
        return self._streams is not None and bool(self._streams.queries())

    # ------------------------------------------------------------------
    # incident lifecycle
    # ------------------------------------------------------------------

    def incident_manager(self, policy=None):
        """The incident manager, created on first use.

        Dedups rule firings and stream alerts into open -> acked ->
        resolved incidents, runs the remediation guardrails, and persists
        history for investigation; see :mod:`repro.core.incidents`.
        ``policy`` is honored only on the creating call.
        """
        if self._incidents is None:
            from repro.core.incidents import IncidentManager
            self._incidents = IncidentManager(self, policy)
        return self._incidents

    @property
    def has_incidents(self) -> bool:
        """True once the incident manager exists and saw some incident."""
        return self._incidents is not None and bool(self._incidents.opened)

    def enable_signatures(self, enabled: bool = True) -> None:
        """Force signature computation even with no referencing rule."""
        self._signatures_forced = enabled
        self.invalidate_signature_cache()

    # ------------------------------------------------------------------
    # signatures / instance counting
    # ------------------------------------------------------------------

    def invalidate_signature_cache(self) -> None:
        """Drop the memoized ``signatures_needed`` flag.

        Called whenever the set of rules, LATs, or stream queries changes
        (the only inputs the flag depends on besides the forced switch).
        The governor's cached criticality map depends on the same inputs
        and is invalidated alongside."""
        self._signatures_needed_cache = None
        if self.governor is not None:
            self.governor.invalidate_components()

    @property
    def signatures_needed(self) -> bool:
        """Some rule, LAT, or stream query reads a signature attribute.

        Memoized: the flag is re-derived only after rule/LAT/stream
        registration changes, not on every ``query.compile`` and
        ``query.commit`` — this property sits on the per-statement hot
        path."""
        cached = self._signatures_needed_cache
        if cached is None:
            cached = self._compute_signatures_needed()
            self._signatures_needed_cache = cached
        return cached

    def _compute_signatures_needed(self) -> bool:
        interesting = _SIGNATURE_ATTRS | _INSTANCE_ATTRS
        if self._signatures_forced:
            return True
        if self._streams is not None and self._streams.signatures_needed:
            return True
        for lat in self._lats.values():
            attrs = {a.lower() for a in lat.definition.source_attributes()}
            if attrs & interesting:
                return True
        for rule in self._rule_order:
            cond = rule.compiled_condition
            # bound attribute references, not a text scan: a LAT alias or
            # string literal containing "signature" must not force
            # signature computation onto every query
            if cond is not None and cond.attributes & interesting:
                return True
        return False

    def _on_compile(self, event: str, payload: dict) -> None:
        self._fill_signatures(payload)
        self._on_engine_event(event, payload)

    def _fill_signatures(self, payload: dict) -> None:
        """Compute (or copy from the plan cache) the statement signatures.

        Separated from :meth:`_on_compile` so a sharded deployment can run
        the fill exactly once on the control plane before routing the
        compile event to a shard."""
        entry = payload["entry"]
        qctx = payload["query"]
        if self.signatures_needed and entry.logical_signature is None:
            costs = self.server.costs
            with self.server.obs.attrib("engine", "signature"):
                logical_nodes = sum(1 for __ in walk_logical(entry.logical))
                physical_nodes = sum(
                    1 for __ in walk_physical(entry.physical))
                self.server.add_monitor_cost(
                    costs.signature_per_node
                    * (logical_nodes + physical_nodes)
                )
                entry.logical_signature = digest(
                    linearize_logical(entry.logical))
                entry.physical_signature = digest(
                    linearize_physical(entry.physical))
        qctx.logical_signature = entry.logical_signature
        qctx.physical_signature = entry.physical_signature

    def instance_count(self, logical_signature: bytes | None) -> int:
        if logical_signature is None:
            return 0
        return self._instance_counts.get(logical_signature, 0)

    def signature_id(self, signature: bytes | None) -> int:
        return self._sig_registry.id_of(signature)

    def transaction_signature(self, statements: Iterable,
                              physical: bool) -> bytes:
        """Logical/physical transaction signature: digest over the sequence
        of per-statement signature ids (Section 4.2, kinds 3 and 4)."""
        ids = [
            self._sig_registry.id_of(
                q.physical_signature if physical else q.logical_signature
            )
            for q in statements
        ]
        return sequence_signature(ids)

    def transaction_signature_ids(self, statements: Iterable,
                                  physical: bool = False) -> tuple[int, ...]:
        """The raw id list (Appendix A exposes it as a list of integers)."""
        return tuple(
            self._sig_registry.id_of(
                q.physical_signature if physical else q.logical_signature
            )
            for q in statements
        )

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------

    def _on_engine_event(self, event: str, payload: dict) -> None:
        if event == "query.commit" and self.signatures_needed:
            qctx = payload["query"]
            if qctx.logical_signature is not None:
                self._instance_counts[qctx.logical_signature] = \
                    self._instance_counts.get(qctx.logical_signature, 0) + 1
                if self.journal is not None:
                    self.journal.append("instance", {
                        "sig": qctx.logical_signature.hex(), "delta": 1})
        self.dispatch_event(event, payload)

    def dispatch_event(self, event: str, payload: dict) -> None:
        """Queue-and-drain dispatch preserving the paper's ordering contract:
        all rules for an event run before any event they raise."""
        self._event_queue.append((event, payload))
        if self._dispatching:
            return
        self._drain_queue()

    def _drain_queue(self) -> None:
        self._dispatching = True
        try:
            while self._event_queue:
                queued_event, queued_payload = self._event_queue.popleft()
                self._process_event(queued_event, queued_payload)
        finally:
            self._dispatching = False
            # if _process_event escaped (engine bug, not a rule failure —
            # those are isolated), drop this dispatch's deferred work so a
            # later unrelated event does not drain another event's queue
            self._event_queue.clear()

    def _defer_event(self, event: str, payload: dict) -> None:
        """Deliver a monitor-raised event under the dispatch contract.

        Inside a dispatch the event queues behind the current event's
        remaining rules (deferred side effects, Section 5).  Outside any
        dispatch — restore paths, direct LAT inserts, stream ``flush()`` —
        it drains immediately: parking it in the queue would hand it to the
        *next unrelated* event's dispatch (wrong attribution) or lose it to
        that dispatch's ``clear()`` backstop."""
        self._event_queue.append((event, payload))
        if not self._dispatching:
            self._drain_queue()

    def enqueue_evict_event(self, lat_name: str, row: dict) -> None:
        """Called by InsertAction when a LAT row is evicted."""
        if self._rules_by_event.get("lat.evict"):
            try:
                self.check_fault("lat.evict")
            except FaultInjected:
                return  # this eviction notification is lost (counted)
            self._defer_event("lat.evict", {"lat": lat_name, "row": row})

    def _process_event(self, event: str, payload: dict) -> None:
        if self.governor is not None:
            self.governor.on_event(event)
        rules = self._rules_by_event.get(event)
        if not rules:
            return
        self.events_handled += 1
        journal = self.journal
        if journal is not None:
            snapshot = [(r, r.evaluation_count, r.fire_count)
                        for r in rules]
            firings_before = self.rule_firings
            errors_before = self.rule_errors
        obs = self.server.obs
        if obs.enabled:
            cost_before = self.server.monitor_cost_total
            with obs.span(f"dispatch:{event}", "dispatch"), \
                    obs.attrib("engine", event):
                self._dispatch_rules(event, payload, rules, obs)
                obs.count("sqlcm.events.dispatched")
                obs.observe("sqlcm.dispatch.cost",
                            self.server.monitor_cost_total - cost_before)
        else:
            self._dispatch_rules(event, payload, rules, obs)
        if journal is not None:
            # the per-event counter record doubles as this event group's
            # commit marker: everything journaled during the dispatch is
            # uncommitted until this lands (a crash mid-event loses the
            # whole group, never half of one)
            journal.append("counts", {
                "rules": [(r.name, r.evaluation_count - evals,
                           r.fire_count - fires)
                          for r, evals, fires in snapshot
                          if r.evaluation_count != evals
                          or r.fire_count != fires],
                "firings": self.rule_firings - firings_before,
                "errors": self.rule_errors - errors_before,
            }, commit=True)

    def _dispatch_rules(self, event: str, payload: dict, rules: list,
                        obs) -> None:
        """The dispatch body: context assembly, then rules in order.

        ``obs`` is the server's observability facade (possibly the null
        object); each rule runs under its own attribution frame so every
        charge it makes is tallied against that rule."""
        costs = self.server.costs
        self.server.add_monitor_cost(costs.event_dispatch)
        context = self._build_context(event, payload)
        if context is None:
            return
        now = self.server.clock.now
        governor = self.governor
        for rule in list(rules):
            if not rule.enabled:
                continue
            with obs.attrib("rule", rule.name):
                self.server.add_monitor_cost(costs.quarantine_check)
                if not self.health.allow(rule.name, now):
                    continue
                if governor is not None:
                    admitted, weight = governor.admit(rule, event)
                    if not admitted:
                        continue
                with obs.span(f"rule:{rule.name}", "rule", event=event):
                    try:
                        if governor is None:
                            self._evaluate_rule(rule, context)
                        else:
                            cost_before = self.server.monitor_cost_total
                            self.sample_weight = weight
                            try:
                                self._evaluate_rule(rule, context)
                            finally:
                                self.sample_weight = 1
                            governor.note_eval(
                                rule.name,
                                self.server.monitor_cost_total - cost_before)
                    except Exception as err:
                        # isolation backstop: scope iteration / context
                        # assembly failures
                        self._record_rule_failure(rule, "evaluate", err)

    # ------------------------------------------------------------------
    # context assembly
    # ------------------------------------------------------------------

    def _build_context(self, event: str,
                       payload: dict) -> dict[str, MonitoredObject] | None:
        factory = self.factory
        if event.startswith("query."):
            qctx = payload["query"]
            if qctx is None:
                return None
            context = {"query": factory.query(qctx)}
            if event == "query.blocked":
                resource = payload.get("resource")
                blockers = payload.get("blockers") or []
                if blockers:
                    context["blocker"] = factory.blocker(blockers[0],
                                                         resource)
                context["blocked"] = factory.blocked(qctx, resource, 0.0)
            elif event == "query.block_released":
                resource = payload.get("resource")
                wait = payload.get("wait_time", 0.0)
                blocker = payload.get("blocker")
                if blocker is not None:
                    context["blocker"] = factory.blocker(blocker, resource,
                                                         wait)
                context["blocked"] = factory.blocked(qctx, resource, wait)
            return context
        if event.startswith("txn."):
            txn = payload.get("txn")
            if txn is None:
                return None
            statements = payload.get("statements", [])
            return {"transaction": factory.transaction(txn, statements)}
        if event == "session.login_failed":
            return {"session": factory.failed_login(payload)}
        if event in ("session.login", "session.logout"):
            return {"session": factory.session(payload["session"])}
        if event == "timer.alert":
            return {"timer": factory.timer(payload["timer"])}
        if event == "lat.evict":
            return {"evicted": factory.evicted_row(payload["lat"],
                                                   payload["row"])}
        if event == "sqlcm.rule_error":
            return {"rulefailure": factory.rule_failure(payload)}
        if event == "sqlcm.stream_alert":
            return {"streamalert": factory.stream_alert(payload)}
        if event == "sqlcm.governor_transition":
            return {"governor": factory.governor_transition(payload)}
        if event == "sqlcm.incident":
            return {"incident": factory.incident(payload)}
        if event == "sqlcm.remediation":
            return {"remediation": factory.remediation(payload)}
        return {}

    def _iterate_class(self, class_name: str) -> list[MonitoredObject]:
        """All registered objects of a class (Section 5.2 iteration scope)."""
        factory = self.factory
        if class_name == "query":
            return [factory.query(q) for q in self.driver.active_queries()]
        if class_name == "transaction":
            return [
                factory.transaction(t, t.statement_log)
                for t in self.driver.active_transactions()
            ]
        if class_name == "timer":
            return [factory.timer(t) for t in self.timer_service.timers()]
        if class_name in ("blocker", "blocked"):
            raise SchemaError(
                "blocker/blocked iterate as pairs"
            )  # pragma: no cover - guarded by caller
        return []

    def _blocking_pairs(self) -> list[tuple[MonitoredObject, MonitoredObject]]:
        """Materialize Blocker/Blocked pairs via the driver's waits probe."""
        costs = self.server.costs
        pairs, edges = self.driver.blocking_pairs()
        self.server.add_monitor_cost(costs.deadlock_search_per_edge
                                     * max(1, edges))
        return [
            (
                self.factory.blocker(blocker_q, resource, wait),
                self.factory.blocked(blocked_q, resource, wait),
            )
            for blocker_q, blocked_q, resource, wait in pairs
        ]

    # ------------------------------------------------------------------
    # rule evaluation
    # ------------------------------------------------------------------

    def _evaluate_rule(self, rule: Rule,
                       context: dict[str, MonitoredObject]) -> None:
        cond = rule.compiled_condition
        costs = self.server.costs

        needed: set[str] = set()
        if cond is not None:
            needed |= cond.classes
            for lat_name in cond.lats:
                needed.add(self.lat(lat_name).definition
                           .monitored_class.lower())
        for action in rule.actions:
            needed |= action.required_classes(self)
        missing = needed - set(context)

        pair_iteration = bool(missing & {"blocker", "blocked"})
        plain_missing = sorted(missing - {"blocker", "blocked"})

        combos: list[dict[str, MonitoredObject]] = [dict(context)]
        if pair_iteration:
            expanded = []
            for blocker_obj, blocked_obj in self._blocking_pairs():
                for combo in combos:
                    candidate = dict(combo)
                    candidate["blocker"] = blocker_obj
                    candidate["blocked"] = blocked_obj
                    expanded.append(candidate)
            combos = expanded
        for class_name in plain_missing:
            objects = self._iterate_class(class_name)
            expanded = []
            for obj in objects:
                for combo in combos:
                    candidate = dict(combo)
                    candidate[class_name] = obj
                    expanded.append(candidate)
            combos = expanded

        evaluated = False
        failed = False
        for combo in combos:
            rule.evaluation_count += 1
            evaluated = True
            self.server.add_monitor_cost(
                costs.rule_eval_base
                + costs.rule_atomic_condition * rule.atomic_condition_count
            )
            lat_rows: dict[str, dict | None] = {}
            try:
                self.check_fault("condition")
                if cond is not None:
                    for lat_name in cond.lats:
                        lat = self.lat(lat_name)
                        owner = lat.definition.monitored_class.lower()
                        obj = combo.get(owner)
                        self.server.add_monitor_cost(
                            costs.lat_lookup + costs.lat_latch
                        )
                        lat_rows[lat_name] = (
                            lat.lookup_object(obj) if obj is not None
                            else None
                        )
                fired = cond is None or cond.evaluate(combo, lat_rows)
            except Exception as err:
                self._record_rule_failure(rule, "condition", err)
                failed = True
                continue
            if not fired:
                continue
            rule.fire_count += 1
            self.rule_firings += 1
            self.server.obs.count("sqlcm.rules.fired")
            for action in rule.actions:
                self.server.add_monitor_cost(costs.action_dispatch)
                if not self._run_action(rule, action, combo, lat_rows):
                    failed = True
        if evaluated and not failed:
            self.health.record_success(rule.name)

    # ------------------------------------------------------------------
    # isolation boundary: action execution, retry, dead letters
    # ------------------------------------------------------------------

    def _run_action(self, rule: Rule, action,
                    combo: dict[str, MonitoredObject],
                    lat_rows: dict[str, dict | None]) -> bool:
        """Execute one action inside the isolation boundary.

        Side-effecting actions get bounded retry with backoff and land in
        the dead-letter journal when undeliverable; internal actions fail
        fast (retrying LAT maintenance or Cancel is not idempotent-safe).
        Returns True on success.
        """
        if action.side_effect:
            try:
                self._deliver_with_retry(rule, action, combo, lat_rows)
                return True
            except ActionDeliveryError as err:
                self._dead_letter(rule, action, combo, lat_rows, err)
                self._record_rule_failure(rule, "action", err)
                return False
        try:
            self.check_fault("action")
            action.execute(self, rule, combo, lat_rows)
            return True
        except Exception as err:
            self._record_rule_failure(rule, "action", err)
            return False

    def _deliver_with_retry(self, rule: Rule, action,
                            combo: dict[str, MonitoredObject],
                            lat_rows: dict[str, dict | None]) -> int:
        """Attempt delivery up to ``retry_policy.max_attempts`` times.

        Backoff between attempts is charged as virtual monitoring time.
        Returns the attempt number that succeeded; raises
        :class:`ActionDeliveryError` when the budget is exhausted.
        """
        policy = self.retry_policy
        last: Exception | None = None
        for attempt in range(1, max(1, policy.max_attempts) + 1):
            if attempt > 1:
                self.server.add_monitor_cost(policy.delay_before(attempt))
            try:
                self.check_fault("action")
                action.execute(self, rule, combo, lat_rows)
                return attempt
            except Exception as err:
                last = err
        raise ActionDeliveryError(
            f"{type(action).__name__} undeliverable after "
            f"{policy.max_attempts} attempts: {last}",
            attempts=max(1, policy.max_attempts),
        ) from last

    def _dead_letter(self, rule: Rule, action,
                     combo: dict[str, MonitoredObject],
                     lat_rows: dict[str, dict | None],
                     err: ActionDeliveryError) -> None:
        self.server.add_monitor_cost(self.server.costs.dead_letter_append)
        self.server.obs.gauge("sqlcm.deadletter.depth",
                              min(self.dead_letters.capacity,
                                  self.dead_letters.depth + 1))
        cause = err.__cause__ if err.__cause__ is not None else err
        self.dead_letters.append(DeadLetter(
            time=self.server.clock.now,
            rule=rule.name,
            action=type(action).__name__,
            payload=action.describe(combo, lat_rows),
            error=f"{type(cause).__name__}: {cause}",
            attempts=err.attempts,
            action_obj=action,
            context=dict(combo),
            lat_rows=dict(lat_rows),
        ))
        # ring displacement is data loss; surface it as a metric so a
        # persistent sink outage is visible even after entries rotate out
        if self.dead_letters.dropped:
            self.server.obs.gauge("sqlcm.deadletter.dropped",
                                  self.dead_letters.dropped)

    def _record_rule_failure(self, rule: Rule, site: str,
                             error: BaseException) -> None:
        """Charge, account, and surface one isolated rule failure."""
        self.server.add_monitor_cost(self.server.costs.rule_error_cost)
        self.server.obs.count("sqlcm.rules.errors")
        self.rule_errors += 1
        now = self.server.clock.now
        health, newly_quarantined = self.health.record_failure(
            rule.name, site, error, now)
        # meta-monitoring: surface the failure as a monitorable event, but
        # never for failures of rules that themselves watch rule failures
        # (that would recurse)
        if self._rules_by_event.get("sqlcm.rule_error") and \
                rule.event_def is not None and \
                rule.event_def.engine_event != "sqlcm.rule_error":
            self._defer_event("sqlcm.rule_error", {
                "rule": rule.name,
                "site": site,
                "error": f"{type(error).__name__}: {error}",
                "error_count": health.error_count,
                "quarantined": newly_quarantined or health.quarantined,
                "time": now,
            })

    # ------------------------------------------------------------------
    # state digest (determinism proof surface)
    # ------------------------------------------------------------------

    def state_digest(self) -> int:
        """Replay-stable digest over the monitor's observable state.

        CRC32 of a canonical tuple: per-LAT integrity signatures, per-rule
        firing/evaluation counters, instance counts, and the handled/fired
        totals.  Two monitors that processed the same trace — serially, or
        sharded and merged (see :mod:`repro.shard`) — produce the same
        digest; this reuses the governor's ``sample_digest`` technique of
        order-independent CRC accumulation over replay-stable inputs."""
        return zlib.crc32(repr(self._digest_parts()).encode())

    def _digest_parts(self) -> tuple:
        lats = tuple((name, self._lats[name].integrity_signature())
                     for name in sorted(self._lats))
        rules = tuple((r.name, r.fire_count, r.evaluation_count)
                      for r in sorted(self._rule_order,
                                      key=lambda r: r.name))
        instances = tuple(sorted(
            (sig.hex(), count)
            for sig, count in self._instance_counts.items()))
        return (lats, rules, instances,
                self.events_handled, self.rule_firings)

    # ------------------------------------------------------------------
    # persistence (Persist action + LAT restore)
    # ------------------------------------------------------------------

    _TIMESTAMP_COLUMN = "sqlcm_ts"

    def persist_lat(self, lat_name: str, table_name: str) -> int:
        """Write all LAT rows to a disk-resident table; returns row count.

        Each row carries a CRC32 checksum column (torn-write detection for
        :meth:`restore_lat`).  A persist that fails mid-write compensates by
        deleting the rows it already wrote, so a retried Persist action
        never duplicates state; an injected *partial* fault simulates a
        crash mid-write instead — the torn rows stay behind with a bad
        checksum for restore to detect.
        """
        lat = self.lat(lat_name)
        with self.server.obs.attrib("lat", lat_name), \
                self.server.obs.span(f"persist:{lat_name}", "persist",
                                     table=table_name):
            return self._persist_lat_rows(lat, lat_name, table_name)

    def _persist_lat_rows(self, lat: LAT, lat_name: str,
                          table_name: str) -> int:
        rows = lat.rows()
        columns = lat.definition.column_names()
        self._ensure_reporting_table(table_name, columns,
                                     self._lat_column_types(lat),
                                     with_checksum=True)
        table = self.server.table(table_name)
        has_crc = any(c.name.lower() == CHECKSUM_COLUMN
                      for c in table.schema.columns)
        now = self.server.clock.now
        partial: FaultInjected | None = None
        try:
            self.check_fault("lat.persist")
        except FaultInjected as err:
            if err.mode != "partial":
                raise
            partial = err
        cutoff = len(rows) if partial is None else max(1, len(rows) // 2)
        written: list[int] = []
        try:
            for index, row in enumerate(rows[:cutoff]):
                self.server.add_monitor_cost(self.server.costs.persist_row)
                values = [row.get(c) for c in columns] + [now]
                if has_crc:
                    self.server.add_monitor_cost(
                        self.server.costs.persist_checksum_per_row)
                    coerced = table.prepare_row(values + [0])
                    crc = row_checksum(coerced[:-1])
                    if partial is not None and index == cutoff - 1:
                        crc ^= 0xFFFF  # torn final record
                    coerced[-1] = crc
                    values = coerced
                written.append(table.insert(values))
        except Exception:
            # compensation: a failed persist leaves no partial state, so a
            # retried delivery starts from a clean slate
            for rowid in written:
                table.delete(rowid)
            raise
        if partial is not None:
            raise partial  # simulated crash: torn rows stay behind
        return len(rows)

    def persist_object(self, obj: MonitoredObject, table_name: str,
                       attributes: list[str] | None = None) -> None:
        """Write one monitored object's attributes to a table."""
        if attributes is None:
            if obj.class_name.lower() == "evicted":
                raise SchemaError(
                    "Persist of an evicted row needs explicit attributes"
                )
            attributes = list(obj.class_def.attributes)
        types = []
        for attr in attributes:
            if obj.class_def.has_attribute(attr):
                types.append(obj.class_def.attribute(attr).sql_type)
            else:
                types.append(SQLType.FLOAT)
        self._ensure_reporting_table(table_name, attributes, types)
        table = self.server.table(table_name)
        self.server.add_monitor_cost(self.server.costs.persist_row)
        self.check_fault("lat.persist")
        table.insert([obj.get(a) for a in attributes]
                     + [self.server.clock.now])

    def _lat_column_types(self, lat: LAT) -> list[SQLType]:
        cls = self.schema.monitored_class(lat.definition.monitored_class)
        types: list[SQLType] = []
        for group in lat.definition.grouping:
            if cls.name.lower() != "evicted" and \
                    cls.has_attribute(group.attr):
                types.append(cls.attribute(group.attr).sql_type)
            else:
                types.append(SQLType.FLOAT)
        for agg in lat.definition.aggregations:
            if agg.func == "COUNT":
                types.append(SQLType.INTEGER)
            elif agg.func in ("FIRST", "LAST") and cls.has_attribute(agg.attr):
                types.append(cls.attribute(agg.attr).sql_type)
            else:
                types.append(SQLType.FLOAT)
        return types

    def _ensure_reporting_table(self, table_name: str, columns: list[str],
                                types: list[SQLType],
                                with_checksum: bool = False) -> None:
        if self.server.catalog.has_table(table_name):
            return
        defs = [ColumnDef(_sanitize(c), t) for c, t in zip(columns, types)]
        defs.append(ColumnDef(self._TIMESTAMP_COLUMN, SQLType.DATETIME))
        if with_checksum:
            defs.append(ColumnDef(CHECKSUM_COLUMN, SQLType.INTEGER))
        self.server.create_table(TableSchema(table_name, defs))

    def restore_lat(self, lat_name: str, table_name: str,
                    validate: bool = True) -> int:
        """Upload a persisted table back into a LAT at startup (Section 4.3).

        Aggregate states are re-seeded from the persisted values: COUNT and
        SUM restore exactly; AVG restores exactly when the LAT also has a
        COUNT column (otherwise it seeds with count 1); MIN/MAX/FIRST/LAST
        restore their values; STDEV re-seeds from AVG/COUNT (spread within
        the restored window is lost).  Returns restored row count.

        The restore is atomic: rows are validated and decoded into a
        scratch copy of the LAT, which replaces the live one only when
        every row seeded cleanly.  A checksum mismatch — a torn write
        from a crash mid-persist — raises
        :class:`PersistCorruptionError` and leaves the in-memory LAT
        exactly as it was (no half-filled state), as does any row-decode
        failure mid-seed.  Tables without the checksum column (written by
        older code or by hand) restore unvalidated but still atomically.
        """
        lat = self.lat(lat_name)
        with self.server.obs.attrib("lat", lat_name), \
                self.server.obs.span(f"restore:{lat_name}", "persist",
                                     table=table_name):
            return self._restore_lat_rows(lat, table_name, validate)

    def _restore_lat_rows(self, lat: LAT, table_name: str,
                          validate: bool) -> int:
        table = self.server.table(table_name)
        columns = [c.name.lower() for c in table.schema.columns]
        rows = [row for __, row in table.scan()]
        if validate and CHECKSUM_COLUMN in columns:
            crc_index = columns.index(CHECKSUM_COLUMN)
            for row in rows:
                self.server.add_monitor_cost(
                    self.server.costs.persist_checksum_per_row)
                if row_checksum(row[:crc_index]) != row[crc_index]:
                    raise PersistCorruptionError(
                        f"checksum mismatch restoring LAT "
                        f"{lat.definition.name!r} from {table_name!r}: "
                        f"partial write detected; in-memory LAT unchanged")
        # seed into a scratch copy; swap in only if every row decodes —
        # an error mid-seed must not leave the live LAT half-restored
        scratch = lat.scratch_copy()
        restored = 0
        seeded: list[dict] = []
        for row in rows:
            values = dict(zip(columns, row))
            values.pop(CHECKSUM_COLUMN, None)
            scratch.seed_row(values)
            seeded.append(values)
            restored += 1
        lat.adopt(scratch)
        if lat.journal is not None:
            now = self.server.clock.now
            for values in seeded:
                lat.journal.append("lat_seed", {
                    "lat": lat.definition.name,
                    "values": values,
                    "time": now,
                })
        return restored


def _sanitize(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "c_" + cleaned
    return cleaned
