"""Timer monitored objects: periodic rule invocation (paper Section 5.1).

Timers let rules fire when condition evaluation "cannot be tied to a system
event" — e.g. reporting queries blocked longer than a threshold.  Each armed
timer runs as a scheduler process that sleeps its interval, raises
``Timer.Alert``, and repeats for the configured number of alarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import FaultInjected
from repro.sim.scheduler import Delay


@dataclass
class TimerObject:
    """One timer: interval seconds between alarms, remaining repeat count
    (negative = infinite, 0 = disabled)."""

    timer_id: int
    name: str
    interval: float = 0.0
    remaining: int = 0
    generation: int = 0  # bumped by Set(); stale processes exit
    overruns: int = 0  # alarms coalesced because rule work outran the interval

    @property
    def enabled(self) -> bool:
        return self.remaining != 0 and self.interval > 0


class TimerService:
    """Creates and (re)arms timers as scheduler processes."""

    def __init__(self, sqlcm):
        self._sqlcm = sqlcm
        self._timers: dict[str, TimerObject] = {}
        self._next_id = 1

    def timers(self) -> list[TimerObject]:
        return list(self._timers.values())

    def get(self, name: str) -> TimerObject | None:
        return self._timers.get(name.lower())

    def set(self, name: str, interval: float, repeats: int) -> TimerObject:
        """Arm (or disarm, with repeats=0) a timer; spawns its process."""
        timer = self._timers.get(name.lower())
        if timer is None:
            timer = TimerObject(self._next_id, name)
            self._next_id += 1
            self._timers[name.lower()] = timer
        timer.interval = float(interval)
        timer.remaining = int(repeats)
        timer.generation += 1
        if timer.enabled:
            self._sqlcm.server.scheduler.spawn(
                f"timer-{name}", self._timer_process(timer, timer.generation)
            )
        if self._sqlcm.journal is not None:
            self._sqlcm.journal.append("timer", {
                "name": name, "interval": timer.interval,
                "repeats": timer.remaining})
        return timer

    def shutdown(self) -> None:
        """Disarm every timer: running processes see the generation bump
        (or remaining == 0) and exit at their next wakeup."""
        for timer in self._timers.values():
            timer.generation += 1
            timer.remaining = 0

    def _timer_process(self, timer: TimerObject,
                       generation: int) -> Iterator:
        server = self._sqlcm.server
        # alarms follow an absolute schedule from arm time, so a slow alert
        # does not drift the whole series
        due = server.clock.now + timer.interval
        while timer.generation == generation and timer.enabled:
            yield Delay(max(0.0, due - server.clock.now))
            if timer.generation != generation or not timer.enabled:
                return
            with server.obs.attrib("engine", "timer"):
                server.add_monitor_cost(server.costs.timer_fire)
                try:
                    self._sqlcm.check_fault("timer")
                except FaultInjected:
                    pass  # this alert is lost; the timer itself survives
                else:
                    self._sqlcm.dispatch_event("timer.alert",
                                               {"timer": timer})
            # the alert's rule work executes in this background thread
            yield Delay(server.take_monitor_cost())
            if timer.remaining > 0:
                timer.remaining -= 1
            due += timer.interval
            # overrun coalescing: when the alert's own rule work ran past
            # one or more subsequent deadlines, skip the missed alarms in
            # one step — a backlog of instantly-due alarms would only add
            # more work to an already overloaded series
            now = server.clock.now
            if timer.enabled and now >= due:
                missed = int((now - due) // timer.interval) + 1
                if timer.remaining > 0:
                    missed = min(missed, timer.remaining)
                if missed > 0:
                    timer.overruns += missed
                    server.obs.count("sqlcm.timer.overruns", missed)
                    due += missed * timer.interval
                    if timer.remaining > 0:
                        timer.remaining -= missed
