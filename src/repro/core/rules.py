"""ECA rule objects (paper Section 5).

A rule is an event ``E``, an optional condition ``C``, and a list of
actions ``A`` executed in order whenever ``E`` occurs and ``C`` evaluates
true.  Rules are evaluated in a fixed (registration) order, and all rules
for an event are processed before any event raised as a side effect.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.core.governor import validate_criticality
from repro.errors import RuleError


@dataclass
class Rule:
    """One Event-Condition-Action rule.

    ``event`` has the form ``Class.Event`` (``"Query.Commit"``,
    ``"Timer.Alert"``).  ``condition`` is condition-language text or None
    (always fire).  ``actions`` is a non-empty ordered list of action
    objects from :mod:`repro.core.actions`.  ``criticality`` classes the
    rule for the overload governor (``critical`` rules are never sampled
    or shed; ``best_effort`` rules are shed first).
    """

    name: str
    event: str
    actions: list[Any]
    condition: str | None = None
    enabled: bool = True
    criticality: str = "normal"

    # bound by SQLCM.add_rule
    event_class: Any = field(default=None, repr=False)
    event_def: Any = field(default=None, repr=False)
    compiled_condition: Any = field(default=None, repr=False)

    # statistics
    fire_count: int = 0
    evaluation_count: int = 0

    def __post_init__(self):
        if not self.name:
            raise RuleError("rule needs a name")
        if not self.actions:
            raise RuleError(f"rule {self.name!r} needs at least one action")
        self.criticality = validate_criticality(self.criticality)

    def clone(self) -> "Rule":
        """An unbound copy with fresh statistics.

        Used by the sharded dispatch tier to register the same rule text on
        every shard: each clone is bound (and its condition compiled)
        independently by that shard's ``add_rule``, and carries its own
        fire/evaluation counters, which merge by summation at report time.
        Actions are shallow-copied — they hold configuration, not state.
        """
        return Rule(
            name=self.name,
            event=self.event,
            actions=[copy.copy(action) for action in self.actions],
            condition=self.condition,
            enabled=self.enabled,
            criticality=self.criticality,
        )

    @property
    def atomic_condition_count(self) -> int:
        """Number of atomic (comparison) conditions — the unit of Figure 2."""
        if self.compiled_condition is None:
            return 0
        return self.compiled_condition.atomic_count
