"""Monitored objects: probe values assembled on demand.

Section 4.1: probes are "assembled into monitored objects on demand (i.e.,
at the time of rule-evaluation)".  A :class:`MonitoredObject` therefore holds
a reference to the underlying engine object (a
:class:`~repro.engine.query.QueryContext`, a transaction, a timer) and
extracts attribute values lazily when a rule condition or a LAT insert reads
them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.schema import MonitoredClassDef
from repro.errors import SchemaError

_Extractor = Callable[..., Any]


class MonitoredObject:
    """One instance of a monitored class with lazy probe extraction."""

    __slots__ = ("class_def", "_extractors", "_extra", "source")

    def __init__(self, class_def: MonitoredClassDef,
                 extractors: dict[str, _Extractor],
                 extra: dict[str, Any] | None = None,
                 source: Any = None):
        self.class_def = class_def
        self._extractors = extractors
        self._extra = extra or {}
        self.source = source

    @property
    def class_name(self) -> str:
        return self.class_def.name

    def get(self, attribute: str) -> Any:
        """Probe one attribute (case-insensitive)."""
        key = attribute.lower()
        if key in self._extra:
            return self._extra[key]
        extractor = self._extractors.get(key)
        if extractor is None:
            raise SchemaError(
                f"class {self.class_name} exposes no probe {attribute!r}"
            )
        return extractor()

    def snapshot(self, attributes: list[str] | None = None) -> dict[str, Any]:
        """Materialize attribute values into a plain dict."""
        if attributes is None:
            attributes = list(self.class_def.attributes)
        return {name: self.get(name) for name in attributes}

    def __repr__(self) -> str:  # pragma: no cover
        return f"MonitoredObject({self.class_name})"


class ObjectFactory:
    """Builds monitored objects from engine-side records.

    The factory needs the SQLCM engine for cross-cutting probes
    (``Number_of_instances`` comes from SQLCM's per-signature instance
    counter; transaction signatures come from the signature registry).
    """

    def __init__(self, sqlcm):
        self._sqlcm = sqlcm
        self._clock = sqlcm.server.clock

    # -- Query / Blocker / Blocked -----------------------------------------------

    def query(self, qctx, class_def: MonitoredClassDef | None = None,
              extra: dict[str, Any] | None = None) -> MonitoredObject:
        """Wrap a QueryContext as a Query (or Blocker/Blocked) object."""
        cls = class_def or self._sqlcm.schema.monitored_class("Query")
        clock = self._clock
        sqlcm = self._sqlcm
        extractors = {
            "id": lambda: qctx.query_id,
            "query_text": lambda: qctx.text,
            "logical_signature": lambda: qctx.logical_signature,
            "physical_signature": lambda: qctx.physical_signature,
            "start_time": lambda: qctx.start_time,
            "duration": lambda: qctx.duration_at(clock.now),
            "estimated_cost": lambda: qctx.estimated_cost,
            "time_blocked": lambda: qctx.time_blocked,
            "times_blocked": lambda: qctx.times_blocked,
            "queries_blocked": lambda: qctx.queries_blocked,
            "time_blocking_others": lambda: qctx.time_blocking_others,
            "number_of_instances": lambda: sqlcm.instance_count(
                qctx.logical_signature),
            "query_type": lambda: qctx.query_type,
            "user": lambda: qctx.user,
            "application": lambda: qctx.application,
            "rows_affected": lambda: qctx.rows_affected,
            "estimated_rows": lambda: (qctx.plan.estimated_rows
                                       if qctx.plan is not None else 0.0),
            "actual_rows": lambda: (len(qctx.result_rows)
                                    if qctx.query_type == "SELECT"
                                    else qctx.rows_affected),
            "wait_time": lambda: 0.0,
            "resource": lambda: (str(qctx.blocked_on)
                                 if qctx.blocked_on is not None else None),
        }
        return MonitoredObject(cls, extractors, extra, source=qctx)

    def blocker(self, qctx, resource, wait_time: float = 0.0) -> MonitoredObject:
        cls = self._sqlcm.schema.monitored_class("Blocker")
        return self.query(qctx, cls, extra={
            "wait_time": wait_time, "resource": str(resource),
        })

    def blocked(self, qctx, resource, wait_time: float) -> MonitoredObject:
        cls = self._sqlcm.schema.monitored_class("Blocked")
        return self.query(qctx, cls, extra={
            "wait_time": wait_time, "resource": str(resource),
        })

    # -- Transaction --------------------------------------------------------------

    def transaction(self, txn, statements: list) -> MonitoredObject:
        cls = self._sqlcm.schema.monitored_class("Transaction")
        clock = self._clock
        sqlcm = self._sqlcm

        def duration() -> float:
            end = txn.end_time if txn.end_time is not None else clock.now
            return max(0.0, end - txn.start_time)

        def text() -> str:
            return "; ".join(q.text for q in statements)

        first = statements[0] if statements else None
        extractors = {
            "id": lambda: txn.txn_id,
            "query_text": text,
            "logical_signature": lambda: sqlcm.transaction_signature(
                statements, physical=False),
            "physical_signature": lambda: sqlcm.transaction_signature(
                statements, physical=True),
            "start_time": lambda: txn.start_time,
            "duration": duration,
            "estimated_cost": lambda: sum(q.estimated_cost
                                          for q in statements),
            "time_blocked": lambda: sum(q.time_blocked for q in statements),
            "times_blocked": lambda: sum(q.times_blocked
                                         for q in statements),
            "queries_blocked": lambda: sum(q.queries_blocked
                                           for q in statements),
            "statement_count": lambda: len(statements),
            "user": lambda: first.user if first else "",
            "application": lambda: first.application if first else "",
        }
        return MonitoredObject(cls, extractors, source=txn)

    # -- Session ------------------------------------------------------------------

    def session(self, session) -> MonitoredObject:
        """Wrap an engine session (successful login/logout events)."""
        cls = self._sqlcm.schema.monitored_class("Session")
        clock = self._clock
        extractors = {
            "id": lambda: session.session_id,
            "user": lambda: session.user,
            "application": lambda: session.application,
            "login_time": lambda: clock.now,
        }
        return MonitoredObject(cls, extractors, source=session)

    def failed_login(self, payload: dict) -> MonitoredObject:
        """A Session object for a *failed* login (no real session exists)."""
        cls = self._sqlcm.schema.monitored_class("Session")
        return MonitoredObject(cls, {}, extra={
            "id": 0,
            "user": payload.get("user"),
            "application": payload.get("application"),
            "login_time": payload.get("time"),
        })

    # -- Timer -------------------------------------------------------------------

    def timer(self, timer) -> MonitoredObject:
        cls = self._sqlcm.schema.monitored_class("Timer")
        clock = self._clock
        extractors = {
            "id": lambda: timer.timer_id,
            "name": lambda: timer.name,
            "current_time": lambda: clock.now,
            "interval": lambda: timer.interval,
            "remaining_alarms": lambda: timer.remaining,
        }
        return MonitoredObject(cls, extractors, source=timer)

    # -- LAT evicted rows -----------------------------------------------------------

    def evicted_row(self, lat_name: str, row_values: dict[str, Any]
                    ) -> MonitoredObject:
        cls = self._sqlcm.schema.monitored_class("Evicted")
        extra = {key.lower(): value for key, value in row_values.items()}
        extra["lat_name"] = lat_name
        return MonitoredObject(cls, {}, extra, source=row_values)

    # -- stream alerts (continuous-query output) ----------------------------------

    def stream_alert(self, payload: dict[str, Any]) -> MonitoredObject:
        """Wrap one stream-query alert (the ``sqlcm.stream_alert`` event)."""
        cls = self._sqlcm.schema.monitored_class("StreamAlert")
        return MonitoredObject(cls, {}, extra={
            "stream_name": payload.get("stream"),
            "kind": payload.get("kind"),
            "group_key": payload.get("group"),
            "aggregate": payload.get("column"),
            "value": payload.get("value"),
            "baseline": payload.get("baseline"),
            "sigma": payload.get("sigma"),
            "rank": payload.get("rank"),
            "window_start": payload.get("window_start"),
            "window_end": payload.get("window_end"),
            "current_time": payload.get("time"),
        }, source=payload)

    # -- rule failures (meta-monitoring) -----------------------------------------

    def rule_failure(self, payload: dict[str, Any]) -> MonitoredObject:
        """Wrap one isolated rule failure (the ``sqlcm.rule_error`` event)."""
        cls = self._sqlcm.schema.monitored_class("RuleFailure")
        return MonitoredObject(cls, {}, extra={
            "rule_name": payload.get("rule"),
            "site": payload.get("site"),
            "error": payload.get("error"),
            "error_count": payload.get("error_count", 0),
            "quarantined": payload.get("quarantined", False),
            "current_time": payload.get("time"),
        }, source=payload)

    # -- incidents / remediations (meta-monitoring) -------------------------------

    def incident(self, payload: dict[str, Any]) -> MonitoredObject:
        """Wrap one incident lifecycle transition
        (the ``sqlcm.incident`` event)."""
        cls = self._sqlcm.schema.monitored_class("Incident")
        return MonitoredObject(cls, {}, extra={
            "id": payload.get("incident_id"),
            "class": payload.get("incident_class"),
            "signature": payload.get("signature"),
            "phase": payload.get("phase"),
            "state": payload.get("state"),
            "severity": payload.get("severity"),
            "occurrences": payload.get("occurrences", 1),
            "summary": payload.get("summary"),
            "current_time": payload.get("time"),
        }, source=payload)

    def remediation(self, payload: dict[str, Any]) -> MonitoredObject:
        """Wrap one remediation attempt (the ``sqlcm.remediation`` event)."""
        cls = self._sqlcm.schema.monitored_class("Remediation")
        return MonitoredObject(cls, {}, extra={
            "incident_id": payload.get("incident_id"),
            "incident_class": payload.get("incident_class"),
            "signature": payload.get("signature"),
            "action": payload.get("action"),
            "target": payload.get("target"),
            "outcome": payload.get("outcome"),
            "detail": payload.get("detail"),
            "current_time": payload.get("time"),
        }, source=payload)

    # -- governor transitions (meta-monitoring) ----------------------------------

    def governor_transition(self, payload: dict[str, Any]) -> MonitoredObject:
        """Wrap one overload-governor ladder transition
        (the ``sqlcm.governor_transition`` event)."""
        cls = self._sqlcm.schema.monitored_class("Governor")
        return MonitoredObject(cls, {}, extra={
            "from_state": payload.get("from_state"),
            "to_state": payload.get("to_state"),
            "reason": payload.get("reason"),
            "overhead_ratio": payload.get("overhead_ratio"),
            "estimated_ratio": payload.get("estimated_ratio"),
            "suspended_count": payload.get("suspended_count", 0),
            "current_time": payload.get("time"),
        }, source=payload)
