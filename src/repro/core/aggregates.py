"""LAT aggregation functions, including aging (moving-window) variants.

Standard functions: COUNT, SUM, AVG, MIN, MAX, STDEV, FIRST, LAST
(Section 4.3).  Every function also has an *aging* version: the aggregate
reflects no value older than a window ``t``.  Exactly as the paper
describes, values are not aged out individually (that would require storing
every value); they are grouped into blocks spanning ``Δ`` seconds, and whole
blocks are dropped once they fall out of the window — costing at most
``2t/Δ`` times the storage of the non-aging aggregate.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import LATError


class AggregateFunction:
    """One aggregation function over a stream of probe values.

    Implementations provide mergeable state so the aging wrapper can
    combine per-block states into a window result.
    """

    name = "?"

    def new_state(self) -> Any:
        raise NotImplementedError

    def update(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def update_weighted(self, state: Any, value: Any, weight: int) -> Any:
        """Update as if ``weight`` identical values arrived.

        Used by the overload governor's sampling mode: an admitted
        evaluation stands in for ``sample_rate`` events, so additive
        aggregates (COUNT / SUM / AVG) scale the contribution by the
        weight and stay unbiased in expectation.  Order/extreme statistics
        (MIN / MAX / FIRST / LAST / STDEV) cannot be compensated by
        scaling; this default applies the value once, so those aggregates
        are *biased toward the sampled subset* while sampling is active —
        see DESIGN.md section 9.
        """
        return self.update(state, value)

    def combine(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def result(self, state: Any) -> Any:
        raise NotImplementedError


class CountAgg(AggregateFunction):
    name = "COUNT"

    def new_state(self):
        return 0

    def update(self, state, value):
        return state + (0 if value is None else 1)

    def update_weighted(self, state, value, weight):
        return state + (0 if value is None else weight)

    def combine(self, left, right):
        return left + right

    def result(self, state):
        return state


class SumAgg(AggregateFunction):
    name = "SUM"

    def new_state(self):
        return None

    def update(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def update_weighted(self, state, value, weight):
        if value is None:
            return state
        scaled = value * weight
        return scaled if state is None else state + scaled

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def result(self, state):
        return state


class AvgAgg(AggregateFunction):
    name = "AVG"

    def new_state(self):
        return (0, 0.0)

    def update(self, state, value):
        if value is None:
            return state
        count, total = state
        return (count + 1, total + value)

    def update_weighted(self, state, value, weight):
        if value is None:
            return state
        count, total = state
        return (count + weight, total + value * weight)

    def combine(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def result(self, state):
        count, total = state
        return None if count == 0 else total / count


class MinAgg(AggregateFunction):
    name = "MIN"

    def new_state(self):
        return None

    def update(self, state, value):
        if value is None:
            return state
        if state is None or value < state:
            return value
        return state

    def combine(self, left, right):
        return self.update(left, right)

    def result(self, state):
        return state


class MaxAgg(AggregateFunction):
    name = "MAX"

    def new_state(self):
        return None

    def update(self, state, value):
        if value is None:
            return state
        if state is None or value > state:
            return value
        return state

    def combine(self, left, right):
        return self.update(left, right)

    def result(self, state):
        return state


class StdevAgg(AggregateFunction):
    """Sample standard deviation, single-pass and mergeable.

    State is Welford's ``(count, mean, M2)`` — M2 is the sum of squared
    deviations from the running mean — merged pairwise with Chan's
    parallel-variance formula.  Unlike the naive (count, sum, sum-of-
    squares) state this does not catastrophically cancel when the values
    share a large common offset, which matters for window panes merged
    out of the stream subsystem.
    """

    name = "STDEV"

    def new_state(self):
        return (0, 0.0, 0.0)

    def update(self, state, value):
        if value is None:
            return state
        count, mean, m2 = state
        count += 1
        delta = value - mean
        mean += delta / count
        return (count, mean, m2 + delta * (value - mean))

    def combine(self, left, right):
        n_left, mean_left, m2_left = left
        n_right, mean_right, m2_right = right
        if n_left == 0:
            return right
        if n_right == 0:
            return left
        count = n_left + n_right
        delta = mean_right - mean_left
        mean = mean_left + delta * n_right / count
        m2 = m2_left + m2_right + delta * delta * n_left * n_right / count
        return (count, mean, m2)

    def result(self, state):
        count, __, m2 = state
        if count < 2:
            return None
        return math.sqrt(max(0.0, m2 / (count - 1)))


class FirstAgg(AggregateFunction):
    """Value of the first object inserted (e.g. a representative Query_Text)."""

    name = "FIRST"
    _EMPTY = object()

    def new_state(self):
        return self._EMPTY

    def update(self, state, value):
        return value if state is self._EMPTY else state

    def combine(self, left, right):
        return right if left is self._EMPTY else left

    def result(self, state):
        return None if state is self._EMPTY else state


class LastAgg(AggregateFunction):
    """Value of the most recently inserted object."""

    name = "LAST"
    _EMPTY = object()

    def new_state(self):
        return self._EMPTY

    def update(self, state, value):
        return value

    def combine(self, left, right):
        return left if right is self._EMPTY else right

    def result(self, state):
        return None if state is self._EMPTY else state


_FUNCTIONS: dict[str, AggregateFunction] = {
    f.name: f for f in (
        CountAgg(), SumAgg(), AvgAgg(), MinAgg(), MaxAgg(), StdevAgg(),
        FirstAgg(), LastAgg(),
    )
}


def aggregate_function(name: str) -> AggregateFunction:
    """Look up an aggregation function by name (case-insensitive)."""
    try:
        return _FUNCTIONS[name.upper()]
    except KeyError:
        raise LATError(f"unknown aggregation function {name!r}") from None


def aggregate_names() -> list[str]:
    return sorted(_FUNCTIONS)


# ---------------------------------------------------------------------------
# aging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgingSpec:
    """Moving-window configuration: window ``t``, block width ``delta``."""

    window: float
    delta: float

    def __post_init__(self):
        if self.window <= 0 or self.delta <= 0:
            raise LATError("aging window and delta must be positive")
        if self.delta > self.window:
            raise LATError("aging delta cannot exceed the window")

    @property
    def max_blocks(self) -> int:
        """Storage bound: at most ceil(t/Δ)+1 live blocks (≤ 2t/Δ for Δ ≤ t)."""
        return int(math.ceil(self.window / self.delta)) + 1


class AgingState:
    """Block-aged state for one aggregate in one LAT row."""

    __slots__ = ("func", "spec", "blocks")

    def __init__(self, func: AggregateFunction, spec: AgingSpec):
        self.func = func
        self.spec = spec
        self.blocks: deque[tuple[float, Any]] = deque()  # (block_start, state)

    def _expire(self, now: float) -> None:
        horizon = now - self.spec.window
        while self.blocks and self.blocks[0][0] + self.spec.delta <= horizon:
            self.blocks.popleft()

    def update(self, value: Any, now: float, weight: int = 1) -> None:
        self._expire(now)
        block_start = math.floor(now / self.spec.delta) * self.spec.delta
        if self.blocks and self.blocks[-1][0] == block_start:
            start, state = self.blocks[-1]
            self.blocks[-1] = (
                start, self.func.update_weighted(state, value, weight)
                if weight != 1 else self.func.update(state, value))
        else:
            fresh = self.func.new_state()
            self.blocks.append((
                block_start,
                self.func.update_weighted(fresh, value, weight)
                if weight != 1 else self.func.update(fresh, value),
            ))

    def result(self, now: float) -> Any:
        self._expire(now)
        if not self.blocks:
            return self.func.result(self.func.new_state())
        combined = self.blocks[0][1]
        for __, state in list(self.blocks)[1:]:
            combined = self.func.combine(combined, state)
        return self.func.result(combined)

    def copy(self) -> "AgingState":
        clone = AgingState(self.func, self.spec)
        clone.blocks.extend(self.blocks)
        return clone

    def merge_from(self, other: "AgingState") -> None:
        """Merge another partition's blocks into this state.

        Blocks with the same start combine via the aggregate's mergeable
        state; distinct blocks interleave by start time.  This is the
        aging-aggregate leg of the shard merge (see repro.shard)."""
        merged: dict[float, Any] = dict(self.blocks)
        for start, state in other.blocks:
            if start in merged:
                merged[start] = self.func.combine(merged[start], state)
            else:
                merged[start] = state
        self.blocks = deque(sorted(merged.items()))

    @property
    def block_count(self) -> int:
        return len(self.blocks)
