"""The ECA rule condition language (paper Section 5.2).

Grammar (deliberately small — "the expressive power of the programming
model is of secondary importance, whereas low and controllable overhead is
crucial"):

* terms: ``Class.Attribute`` (``Query.Duration``), ``LATName.Column``
  (``Duration_LAT.Avg_Duration``), numeric and string literals
* operators: ``= != < > <= >=``, arithmetic ``+ - * /``, parentheses
* combinators: ``AND``, ``OR``, ``NOT``

LAT references are implicitly ∃-quantified: the row whose grouping columns
match the in-context object is selected; if no row matches, the whole
condition evaluates to false.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConditionSyntaxError, SchemaError

_TOKEN_RE = re.compile(r"""
    \s*(?:
      (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    | (?P<string>'(?:[^']|'')*')
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
    | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\))
    )""", re.VERBOSE)

_KEYWORDS = {"AND", "OR", "NOT", "NULL", "TRUE", "FALSE"}


@dataclass(frozen=True)
class _Token:
    kind: str  # NUMBER | STRING | NAME | OP | KW | EOF
    value: Any
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ConditionSyntaxError(
                f"bad character {text[pos:pos + 1]!r} in condition", pos
            )
        if match.group("number") is not None:
            raw = match.group("number")
            value = float(raw) if ("." in raw or "e" in raw.lower()) \
                else int(raw)
            tokens.append(_Token("NUMBER", value, match.start()))
        elif match.group("string") is not None:
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("STRING", raw, match.start()))
        elif match.group("name") is not None:
            name = match.group("name")
            if name.upper() in _KEYWORDS and "." not in name:
                tokens.append(_Token("KW", name.upper(), match.start()))
            else:
                tokens.append(_Token("NAME", name, match.start()))
        else:
            op = match.group("op")
            tokens.append(_Token("OP", "!=" if op == "<>" else op,
                                 match.start()))
        pos = match.end()
    tokens.append(_Token("EOF", None, len(text)))
    return tokens


# -- AST ---------------------------------------------------------------------

@dataclass(frozen=True)
class CLiteral:
    value: Any


@dataclass(frozen=True)
class CAttrRef:
    """``Qualifier.Attribute``; resolution to class vs LAT happens at bind."""

    qualifier: str
    attribute: str


@dataclass(frozen=True)
class CBinary:
    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class CUnary:
    op: str  # 'NOT' | '-'
    operand: Any


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token.kind != "OP" or token.value != op:
            raise ConditionSyntaxError(
                f"expected {op!r}, found {token.value!r}", token.position
            )
        self._advance()

    def parse(self):
        expr = self._or()
        token = self._peek()
        if token.kind != "EOF":
            raise ConditionSyntaxError(
                f"unexpected trailing token {token.value!r}", token.position
            )
        return expr

    def _or(self):
        left = self._and()
        while self._peek().kind == "KW" and self._peek().value == "OR":
            self._advance()
            left = CBinary("OR", left, self._and())
        return left

    def _and(self):
        left = self._not()
        while self._peek().kind == "KW" and self._peek().value == "AND":
            self._advance()
            left = CBinary("AND", left, self._not())
        return left

    def _not(self):
        if self._peek().kind == "KW" and self._peek().value == "NOT":
            self._advance()
            return CUnary("NOT", self._not())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self._peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<", ">",
                                                  "<=", ">="):
            self._advance()
            return CBinary(token.value, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                self._advance()
                left = CBinary(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("*", "/"):
                self._advance()
                left = CBinary(token.value, left, self._unary())
            else:
                return left

    def _unary(self):
        token = self._peek()
        if token.kind == "OP" and token.value == "-":
            self._advance()
            return CUnary("-", self._unary())
        return self._primary()

    def _primary(self):
        token = self._advance()
        if token.kind == "NUMBER" or token.kind == "STRING":
            return CLiteral(token.value)
        if token.kind == "KW":
            if token.value == "NULL":
                return CLiteral(None)
            if token.value == "TRUE":
                return CLiteral(True)
            if token.value == "FALSE":
                return CLiteral(False)
            raise ConditionSyntaxError(
                f"unexpected keyword {token.value!r}", token.position
            )
        if token.kind == "NAME":
            if "." not in token.value:
                raise ConditionSyntaxError(
                    f"bare name {token.value!r}; references must be "
                    "Class.Attribute or LAT.Column", token.position
                )
            qualifier, __, attribute = token.value.partition(".")
            return CAttrRef(qualifier, attribute)
        if token.kind == "OP" and token.value == "(":
            expr = self._or()
            self._expect_op(")")
            return expr
        raise ConditionSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )


def parse_condition(text: str):
    """Parse condition text into its AST."""
    return _Parser(_tokenize(text)).parse()


# -- binding / evaluation -------------------------------------------------------

class _MissingLATRow(Exception):
    """Raised during evaluation when a referenced LAT row does not exist.

    Implements the implicit ∃-quantification: the condition as a whole
    becomes false.
    """


class CompiledCondition:
    """A bound, evaluable condition (compiled to nested closures).

    ``classes`` — monitored classes referenced (objects must be in context);
    ``lats`` — LAT names referenced; ``atomic_count`` — number of comparison
    operators (the unit of the paper's rule-complexity experiments);
    ``attributes`` — lowercase class-attribute names the condition reads
    (bound references only, not LAT columns or literals — this is what
    ``signatures_needed`` consults instead of scanning the raw text).
    """

    def __init__(self, text: str, tree, classes: set[str], lats: set[str],
                 atomic_count: int, attributes: set[str] | None = None):
        self.text = text
        self._tree = tree
        self._fn = _compile(tree)
        self.classes = classes
        self.lats = lats
        self.atomic_count = atomic_count
        self.attributes = attributes if attributes is not None else set()

    def evaluate(self, context: dict[str, Any],
                 lat_rows: dict[str, dict | None]) -> bool:
        """Evaluate against in-context objects and matched LAT rows.

        ``context`` maps lowercase class names to monitored objects;
        ``lat_rows`` maps lowercase LAT names to the matched row (or None
        for no match → condition false).
        """
        try:
            result = self._fn(context, lat_rows)
        except _MissingLATRow:
            return False
        return result is True

    def __repr__(self) -> str:  # pragma: no cover
        return f"CompiledCondition({self.text!r})"


def bind_condition(text: str, schema, lat_names: set[str],
                   lat_columns: Callable[[str], set[str]]) -> CompiledCondition:
    """Parse and bind a condition: resolve every qualifier to a monitored
    class or a LAT, validate attributes/columns, count atomic conditions."""
    tree = parse_condition(text)
    classes: set[str] = set()
    lats: set[str] = set()
    attributes: set[str] = set()
    atomic = 0

    def walk(node) -> None:
        nonlocal atomic
        if isinstance(node, CBinary):
            if node.op in ("=", "!=", "<", ">", "<=", ">="):
                atomic += 1
            walk(node.left)
            walk(node.right)
        elif isinstance(node, CUnary):
            walk(node.operand)
        elif isinstance(node, CAttrRef):
            qualifier = node.qualifier.lower()
            if qualifier in lat_names:
                lats.add(qualifier)
                columns = lat_columns(qualifier)
                if node.attribute.lower() not in columns:
                    raise SchemaError(
                        f"LAT {node.qualifier!r} has no column "
                        f"{node.attribute!r}"
                    )
            elif schema.has_class(node.qualifier):
                cls = schema.monitored_class(node.qualifier)
                if cls.name.lower() != "evicted" and \
                        not cls.has_attribute(node.attribute):
                    raise SchemaError(
                        f"class {cls.name} has no attribute "
                        f"{node.attribute!r}"
                    )
                classes.add(cls.name.lower())
                attributes.add(node.attribute.lower())
            else:
                raise SchemaError(
                    f"unknown qualifier {node.qualifier!r} (neither a "
                    "monitored class nor a LAT)"
                )

    walk(tree)
    bound = _bind_refs(tree, lat_names)
    return CompiledCondition(text, bound, classes, lats, atomic, attributes)


def bind_row_condition(text: str, columns: set[str],
                       qualifier: str = "window") -> CompiledCondition:
    """Bind a condition whose references all read one plain result row.

    Used by the stream subsystem's HAVING clauses: every reference must be
    ``Qualifier.Column`` with ``Column`` in ``columns`` (case-insensitive).
    Evaluate with ``cond.evaluate({}, {qualifier: row})``; a missing row
    makes the condition false, matching the LAT ∃-semantics.
    """
    tree = parse_condition(text)
    key = qualifier.lower()
    lowered = {c.lower() for c in columns}
    atomic = 0

    def walk(node) -> None:
        nonlocal atomic
        if isinstance(node, CBinary):
            if node.op in ("=", "!=", "<", ">", "<=", ">="):
                atomic += 1
            walk(node.left)
            walk(node.right)
        elif isinstance(node, CUnary):
            walk(node.operand)
        elif isinstance(node, CAttrRef):
            if node.qualifier.lower() != key:
                raise SchemaError(
                    f"row condition references must be "
                    f"{qualifier}.<column>, got {node.qualifier!r}"
                )
            if node.attribute.lower() not in lowered:
                raise SchemaError(
                    f"unknown output column {node.attribute!r}; "
                    f"expected one of {sorted(lowered)}"
                )

    walk(tree)
    bound = _bind_refs(tree, {key})
    return CompiledCondition(text, bound, set(), {key}, atomic)


@dataclass(frozen=True)
class _BoundClassAttr:
    class_name: str  # lowercase
    attribute: str


@dataclass(frozen=True)
class _BoundLATCol:
    lat_name: str  # lowercase
    column: str


def _bind_refs(node, lat_names: set[str]):
    if isinstance(node, CAttrRef):
        qualifier = node.qualifier.lower()
        if qualifier in lat_names:
            return _BoundLATCol(qualifier, node.attribute.lower())
        return _BoundClassAttr(qualifier, node.attribute)
    if isinstance(node, CBinary):
        return CBinary(node.op, _bind_refs(node.left, lat_names),
                       _bind_refs(node.right, lat_names))
    if isinstance(node, CUnary):
        return CUnary(node.op, _bind_refs(node.operand, lat_names))
    return node


def _compile(node):
    """Compile a bound condition tree to ``fn(context, lat_rows)``.

    Rules evaluate on every matching event under heavy load; closures avoid
    the per-evaluation tree walk.
    """
    if isinstance(node, CLiteral):
        value = node.value
        return lambda context, lat_rows: value
    if isinstance(node, _BoundClassAttr):
        class_name, attribute = node.class_name, node.attribute

        def read_attr(context, lat_rows):
            obj = context.get(class_name)
            if obj is None:
                raise SchemaError(
                    f"no {class_name!r} object in rule context"
                )
            return obj.get(attribute)
        return read_attr
    if isinstance(node, _BoundLATCol):
        lat_name = node.lat_name
        column = node.column

        def read_lat(context, lat_rows):
            row = lat_rows.get(lat_name)
            if row is None:
                raise _MissingLATRow(lat_name)
            if column in row:
                return row[column]
            for key, value in row.items():
                if key.lower() == column:
                    return value
            return None
        return read_lat
    if isinstance(node, CUnary):
        operand = _compile(node.operand)
        if node.op == "NOT":
            def negate(context, lat_rows):
                value = operand(context, lat_rows)
                return None if value is None else (value is not True)
            return negate

        def minus(context, lat_rows):
            value = operand(context, lat_rows)
            return None if value is None else -value
        return minus
    if isinstance(node, CBinary):
        op = node.op
        left = _compile(node.left)
        right = _compile(node.right)
        if op == "AND":
            def and_fn(context, lat_rows):
                if left(context, lat_rows) is not True:
                    return False
                return right(context, lat_rows) is True
            return and_fn
        if op == "OR":
            def or_fn(context, lat_rows):
                if left(context, lat_rows) is True:
                    return True
                return right(context, lat_rows) is True
            return or_fn
        if op in ("+", "-", "*", "/"):
            def arith(context, lat_rows):
                a = left(context, lat_rows)
                b = right(context, lat_rows)
                if a is None or b is None:
                    return None
                if op == "+":
                    return a + b
                if op == "-":
                    return a - b
                if op == "*":
                    return a * b
                return None if b == 0 else a / b
            return arith

        def comparison(context, lat_rows):
            a = left(context, lat_rows)
            b = right(context, lat_rows)
            if a is None or b is None:
                return False
            try:
                if op == "=":
                    return a == b
                if op == "!=":
                    return a != b
                if op == "<":
                    return a < b
                if op == ">":
                    return a > b
                if op == "<=":
                    return a <= b
                return a >= b
            except TypeError:
                return False
        return comparison
    raise SchemaError(f"cannot compile condition node {node!r}")
