"""Fault-isolation layer: rule health, quarantine, retry, fault injection.

The paper's core promise — monitoring runs *inside* the server's execution
path at < 4% overhead — only holds if a misbehaving rule can never take the
monitored query (or the server) down with it.  This module supplies the
pieces the :class:`~repro.core.engine.SQLCM` engine wires into its
evaluation path:

* :class:`RuleHealthRegistry` — per-rule failure accounting on the virtual
  clock, with a circuit breaker: a rule failing ``failure_threshold`` times
  within ``window`` virtual seconds is *quarantined* (removed from the
  evaluation path), then probed again after a cooldown that backs off
  exponentially across repeated quarantines.
* :class:`RetryPolicy` — bounded retry with exponential backoff for
  side-effecting actions (SendMail / RunExternal / Persist).  Backoff
  delays are *simulated-time aware*: they are charged to the server's
  monitor-cost pool, not slept.
* :class:`DeadLetterJournal` — undeliverable side effects land here with
  enough context to inspect or replay them.
* :class:`FaultInjector` — a seeded, deterministic fault harness.  Each
  injection site can be armed with a failure rate and mode (``exception``,
  ``latency``, ``partial``); the same seed over the same workload produces
  bit-identical fault sequences, which is what the resilience test suite
  and ``bench_r1_fault_overhead`` rely on.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import FaultInjected, RuleError

# rule health states
HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBATION = "probation"

#: core injection sites wired by the rule engine itself; subsystems add
#: their own with :func:`register_fault_sites` (e.g. the stream engine's
#: ``stream.eval`` / ``stream.window``)
FAULT_SITES = (
    "condition",     # rule condition evaluation (incl. LAT lookups)
    "action",        # action execution (any action kind)
    "sink",          # SendMail / RunExternal delivery
    "lat.insert",    # LAT insert-or-update
    "lat.evict",     # LAT eviction event delivery
    "lat.persist",   # Persist writes of LAT rows / objects
    "timer",         # timer alert firing
    "durability.checkpoint",  # crash mid-checkpoint (partial = torn file)
    "durability.append",      # crash mid-journal-append (partial = torn tail)
)

_registered_sites: set[str] = set(FAULT_SITES)

_FAULT_MODES = ("exception", "latency", "partial")


def register_fault_sites(*sites: str) -> None:
    """Declare additional injection sites (idempotent).

    Subsystems call this at init time so the injector can validate their
    site names without the core site list having to know every subsystem.
    Site names are dotted identifiers, e.g. ``stream.eval``.
    """
    for site in sites:
        if not site or not all(
            part and part.replace("_", "").isalnum()
            for part in site.split(".")
        ):
            raise ValueError(f"invalid fault site name {site!r}")
        _registered_sites.add(site)


def known_fault_sites() -> tuple[str, ...]:
    """All currently registered injection sites (core + subsystem)."""
    return tuple(sorted(_registered_sites))


# ---------------------------------------------------------------------------
# quarantine / circuit breaker
# ---------------------------------------------------------------------------


@dataclass
class QuarantinePolicy:
    """Circuit-breaker tuning for rule quarantine.

    ``failure_threshold`` failures within ``window`` virtual seconds
    quarantine the rule for ``cooldown`` seconds; each re-quarantine
    multiplies the cooldown by ``backoff`` up to ``max_cooldown``.
    """

    failure_threshold: int = 3
    window: float = 60.0
    cooldown: float = 120.0
    backoff: float = 2.0
    max_cooldown: float = 3600.0


@dataclass
class RuleHealth:
    """Per-rule failure accounting and quarantine state."""

    name: str
    state: str = HEALTHY
    error_count: int = 0
    condition_errors: int = 0
    action_errors: int = 0
    quarantine_count: int = 0
    quarantined_at: float | None = None
    reactivate_at: float | None = None
    quarantine_reason: str | None = None
    last_error: str | None = None
    last_site: str | None = None
    current_cooldown: float = 0.0
    recent_failures: deque = field(default_factory=deque, repr=False)

    @property
    def quarantined(self) -> bool:
        return self.state == QUARANTINED

    def snapshot(self) -> tuple:
        """Hashable state used by the determinism tests."""
        return (self.name, self.state, self.error_count,
                self.condition_errors, self.action_errors,
                self.quarantine_count, self.quarantined_at,
                self.reactivate_at, self.last_error, self.last_site)


class RuleHealthRegistry:
    """All rules' health records plus the quarantine state machine."""

    # durability hook (set by DurabilityManager.attach): called with the
    # RuleHealth record after every durable state change
    journal_hook = None

    def __init__(self, policy: QuarantinePolicy | None = None):
        self.policy = policy or QuarantinePolicy()
        self._health: dict[str, RuleHealth] = {}

    def _notify(self, health: RuleHealth) -> None:
        if self.journal_hook is not None:
            self.journal_hook(health)

    def health_of(self, name: str) -> RuleHealth:
        key = name.lower()
        health = self._health.get(key)
        if health is None:
            health = RuleHealth(key)
            self._health[key] = health
        return health

    def known(self) -> list[RuleHealth]:
        return list(self._health.values())

    def drop(self, name: str) -> None:
        """Forget a rule's record (called when the rule is removed): a new
        rule reusing the name starts with a clean history."""
        self._health.pop(name.lower(), None)

    def quarantined(self) -> list[RuleHealth]:
        return [h for h in self._health.values() if h.state == QUARANTINED]

    def allow(self, name: str, now: float) -> bool:
        """Should the rule run at virtual time ``now``?

        Quarantined rules whose cooldown has expired move to *probation*:
        they get one probe evaluation — success restores them, another
        failure re-quarantines immediately with an escalated cooldown.
        """
        health = self._health.get(name.lower())
        if health is None or health.state == HEALTHY:
            return True
        if health.state == PROBATION:
            return True
        if health.reactivate_at is not None and now >= health.reactivate_at:
            health.state = PROBATION
            return True
        return False

    def record_failure(self, name: str, site: str, error: BaseException,
                       now: float) -> tuple[RuleHealth, bool]:
        """Account one failure; returns (health, newly_quarantined)."""
        health = self.health_of(name)
        health.error_count += 1
        if site == "condition":
            health.condition_errors += 1
        elif site == "action":
            health.action_errors += 1
        health.last_error = f"{type(error).__name__}: {error}"
        health.last_site = site
        if health.state == PROBATION:
            # the reactivation probe failed: straight back to quarantine
            self._quarantine(health, now, "reactivation probe failed: "
                             + health.last_error)
            self._notify(health)
            return health, True
        failures = health.recent_failures
        failures.append(now)
        horizon = now - self.policy.window
        while failures and failures[0] < horizon:
            failures.popleft()
        if len(failures) >= self.policy.failure_threshold:
            self._quarantine(
                health, now,
                f"{len(failures)} failures within "
                f"{self.policy.window:g}s: {health.last_error}")
            self._notify(health)
            return health, True
        self._notify(health)
        return health, False

    def record_success(self, name: str) -> None:
        health = self._health.get(name.lower())
        if health is not None and health.state == PROBATION:
            health.state = HEALTHY
            health.current_cooldown = 0.0
            health.quarantine_reason = None
            health.reactivate_at = None
            health.recent_failures.clear()
            self._notify(health)

    def quarantine(self, name: str, now: float, reason: str) -> None:
        """Force a rule into quarantine (remediation / DBA override).

        Same state machine as breaker-tripped quarantine: the rule leaves
        the evaluation path, gets a reactivation probe after the cooldown,
        and its cooldown escalates across repeated quarantines.
        """
        health = self.health_of(name)
        self._quarantine(health, now, reason)
        self._notify(health)

    def release(self, name: str) -> None:
        """Manually clear a quarantine (DBA override)."""
        health = self._health.get(name.lower())
        if health is None or health.state == HEALTHY:
            raise RuleError(f"rule {name!r} is not quarantined")
        health.state = HEALTHY
        health.current_cooldown = 0.0
        health.quarantine_reason = None
        health.reactivate_at = None
        health.recent_failures.clear()
        self._notify(health)

    def _quarantine(self, health: RuleHealth, now: float,
                    reason: str) -> None:
        policy = self.policy
        if health.current_cooldown <= 0:
            health.current_cooldown = policy.cooldown
        else:
            health.current_cooldown = min(
                policy.max_cooldown,
                health.current_cooldown * policy.backoff)
        health.state = QUARANTINED
        health.quarantine_count += 1
        health.quarantined_at = now
        health.reactivate_at = now + health.current_cooldown
        health.quarantine_reason = reason
        health.recent_failures.clear()

    def snapshot(self) -> tuple:
        return tuple(sorted(h.snapshot() for h in self._health.values()))


# ---------------------------------------------------------------------------
# side-effect retry + dead letters
# ---------------------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff for side-effect delivery.

    Backoff delays are virtual seconds charged to the monitor-cost pool.
    """

    max_attempts: int = 3
    base_delay: float = 1e-3
    backoff: float = 2.0

    def delay_before(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (2, 3, ...)."""
        return self.base_delay * (self.backoff ** max(0, attempt - 2))


@dataclass
class DeadLetter:
    """One undeliverable side-effect action."""

    time: float
    rule: str
    action: str
    payload: str
    error: str
    attempts: int
    # retained so the journal can replay the delivery later
    action_obj: Any = field(default=None, repr=False)
    context: Any = field(default=None, repr=False)
    lat_rows: Any = field(default=None, repr=False)


@dataclass
class RedeliveryReport:
    """Outcome of one :meth:`DeadLetterJournal.redeliver` sweep."""

    delivered: int = 0
    dropped: int = 0
    remaining: int = 0


class DeadLetterJournal:
    """Bounded ring journal of side effects that exhausted their retries.

    The journal holds at most ``capacity`` entries: under a persistent
    action outage the oldest entries are displaced (counted in
    :attr:`dropped`) rather than letting the journal grow without limit.
    """

    # durability hook (set by DurabilityManager.attach): called with each
    # appended DeadLetter so the entry survives a monitor crash
    journal_hook = None

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("dead-letter capacity must be positive")
        self.capacity = capacity
        self._entries: list[DeadLetter] = []
        #: oldest entries displaced by the ring bound
        self.dropped = 0
        #: entries discarded as poison by :meth:`redeliver`
        self.poison_dropped = 0

    def append(self, entry: DeadLetter) -> None:
        if len(self._entries) >= self.capacity:
            overflow = len(self._entries) - self.capacity + 1
            del self._entries[:overflow]
            self.dropped += overflow
        self._entries.append(entry)
        if self.journal_hook is not None:
            self.journal_hook(entry)

    def entries(self, rule: str | None = None) -> list[DeadLetter]:
        if rule is None:
            return list(self._entries)
        key = rule.lower()
        return [e for e in self._entries if e.rule.lower() == key]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def replay(self, sqlcm) -> int:
        """Re-attempt delivery of every entry; returns how many succeeded.

        Entries that fail again stay in the journal with an incremented
        attempt count.
        """
        remaining: list[DeadLetter] = []
        delivered = 0
        for entry in self._entries:
            if entry.action_obj is None:
                remaining.append(entry)
                continue
            try:
                entry.action_obj.execute(
                    sqlcm, None, entry.context or {}, entry.lat_rows or {})
                delivered += 1
            except Exception as err:  # still undeliverable
                entry.attempts += 1
                entry.error = f"{type(err).__name__}: {err}"
                remaining.append(entry)
        self._entries = remaining
        return delivered

    def redeliver(self, sqlcm, drop_after: int = 9) -> RedeliveryReport:
        """Replay every entry through the engine's :class:`RetryPolicy`.

        Unlike :meth:`replay` (one bare attempt per entry), each entry
        gets a full fresh retry cycle — up to ``retry_policy.max_attempts``
        attempts with exponential backoff charged to the monitor-cost pool,
        exactly like first-time delivery.  Entries whose *cumulative*
        attempt count reaches ``drop_after`` are discarded as poison
        (counted in :attr:`poison_dropped`) so a permanently broken sink
        cannot clog the journal forever.
        """
        policy = sqlcm.retry_policy
        server = sqlcm.server
        remaining: list[DeadLetter] = []
        report = RedeliveryReport()
        for entry in self._entries:
            if entry.action_obj is None:
                remaining.append(entry)
                continue
            delivered = False
            for attempt in range(1, max(1, policy.max_attempts) + 1):
                if attempt > 1:
                    server.add_monitor_cost(policy.delay_before(attempt))
                entry.attempts += 1
                try:
                    entry.action_obj.execute(
                        sqlcm, None, entry.context or {},
                        entry.lat_rows or {})
                    delivered = True
                    break
                except Exception as err:  # still undeliverable
                    entry.error = f"{type(err).__name__}: {err}"
            if delivered:
                report.delivered += 1
            elif entry.attempts >= drop_after:
                report.dropped += 1
                self.poison_dropped += 1
            else:
                remaining.append(entry)
        self._entries = remaining
        report.remaining = len(remaining)
        return report

    def snapshot(self) -> tuple:
        return tuple((e.time, e.rule, e.action, e.payload, e.error,
                      e.attempts) for e in self._entries)


# ---------------------------------------------------------------------------
# deterministic fault injection
# ---------------------------------------------------------------------------


@dataclass
class FaultSpec:
    """Configuration of one injection site.

    ``rate`` is the per-check injection probability; ``mode`` selects the
    failure: ``exception`` raises :class:`FaultInjected`, ``latency``
    charges ``latency`` extra virtual seconds, ``partial`` simulates a torn
    write (only meaningful at ``lat.persist``).
    """

    rate: float = 0.0
    mode: str = "exception"
    latency: float = 1e-3

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.mode not in _FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")


class FaultInjector:
    """Seeded deterministic fault harness for the monitoring path.

    Arm sites with :meth:`arm` (rate-based) or :meth:`fail_next`
    (deterministic burst).  The engine consults :meth:`check` at each site;
    the random stream is drawn *only* for armed sites, so arming one site
    never perturbs the fault sequence of another.
    """

    def __init__(self, seed: int = 0,
                 specs: dict[str, FaultSpec] | None = None):
        self.seed = seed
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}
        self._bursts: dict[str, int] = {}
        self.injected: dict[str, int] = {}
        self.checks: dict[str, int] = {}
        for site, spec in (specs or {}).items():
            self.arm(site, rate=spec.rate, mode=spec.mode,
                     latency=spec.latency)

    def arm(self, site: str, rate: float = 0.1, mode: str = "exception",
            latency: float = 1e-3) -> FaultSpec:
        """Configure an injection site; replaces any previous spec."""
        if site not in _registered_sites:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of "
                f"{known_fault_sites()}")
        spec = FaultSpec(rate=rate, mode=mode, latency=latency)
        self._specs[site] = spec
        # per-site stream: arming/checking one site does not perturb others
        self._rngs.setdefault(
            site, random.Random(f"{self.seed}:{site}"))
        return spec

    def disarm(self, site: str | None = None) -> None:
        if site is None:
            self._specs.clear()
            self._bursts.clear()
        else:
            self._specs.pop(site, None)
            self._bursts.pop(site, None)

    def fail_next(self, site: str, count: int = 1,
                  mode: str = "exception") -> None:
        """Deterministically inject the next ``count`` checks at ``site``."""
        if site not in _registered_sites:
            raise ValueError(f"unknown fault site {site!r}")
        self._bursts[site] = self._bursts.get(site, 0) + count
        self._specs.setdefault(site, FaultSpec(rate=0.0, mode=mode))
        self._specs[site].mode = mode
        self._rngs.setdefault(site, random.Random(f"{self.seed}:{site}"))

    def check(self, site: str) -> float:
        """Consult the site; returns extra latency seconds to charge.

        Raises :class:`FaultInjected` when an exception/partial fault fires.
        """
        burst = self._bursts.get(site, 0)
        spec = self._specs.get(site)
        if spec is None and not burst:
            return 0.0
        self.checks[site] = self.checks.get(site, 0) + 1
        if burst:
            self._bursts[site] = burst - 1
            self.injected[site] = self.injected.get(site, 0) + 1
            raise FaultInjected(site, spec.mode if spec else "exception")
        if spec.rate <= 0.0 or self._rngs[site].random() >= spec.rate:
            return 0.0
        self.injected[site] = self.injected.get(site, 0) + 1
        if spec.mode == "latency":
            return spec.latency
        raise FaultInjected(site, spec.mode)

    def injected_total(self) -> int:
        return sum(self.injected.values())

    def snapshot(self) -> tuple:
        return (tuple(sorted(self.injected.items())),
                tuple(sorted(self.checks.items())))


# ---------------------------------------------------------------------------
# persisted-row checksums
# ---------------------------------------------------------------------------

#: extra column appended to persisted LAT tables for torn-write detection
CHECKSUM_COLUMN = "sqlcm_crc"


def row_checksum(values: list) -> int:
    """Stable CRC32 over one persisted row's (coerced) column values."""
    return zlib.crc32(repr(tuple(values)).encode("utf-8"))
