"""The SQLCM schema: monitored classes, their probes, and their events.

This is the paper's Appendix A.  Five monitored classes are exposed:
``Query``, ``Transaction``, ``Blocker``, ``Blocked``, and ``Timer``.
``Blocker``/``Blocked`` share the Query schema (they *are* queries, viewed
through a lock conflict) plus a ``Wait_Time`` attribute for the current
conflict.  ``User`` and ``Application`` attributes are included because
Section 2.3 groups queries "by the application (or user) that issued them".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.types import SQLType
from repro.errors import SchemaError


@dataclass(frozen=True)
class AttributeDef:
    """One probe exposed as an attribute of a monitored class."""

    name: str
    sql_type: SQLType
    doc: str = ""


@dataclass(frozen=True)
class EventDef:
    """One event of a monitored class, tied to an engine event name."""

    name: str
    engine_event: str
    doc: str = ""


class MonitoredClassDef:
    """A monitored class: attribute and event registries."""

    def __init__(self, name: str, attributes: list[AttributeDef],
                 events: list[EventDef]):
        self.name = name
        self.attributes: dict[str, AttributeDef] = {
            a.name.lower(): a for a in attributes
        }
        self.events: dict[str, EventDef] = {e.name.lower(): e for e in events}

    def attribute(self, name: str) -> AttributeDef:
        try:
            return self.attributes[name.lower()]
        except KeyError:
            raise SchemaError(
                f"class {self.name} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name.lower() in self.attributes

    def event(self, name: str) -> EventDef:
        try:
            return self.events[name.lower()]
        except KeyError:
            raise SchemaError(
                f"class {self.name} has no event {name!r}"
            ) from None


class SQLCMSchema:
    """The complete schema: all monitored classes, indexed by name."""

    def __init__(self, classes: list[MonitoredClassDef]):
        self._classes = {c.name.lower(): c for c in classes}

    def monitored_class(self, name: str) -> MonitoredClassDef:
        try:
            return self._classes[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown monitored class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name.lower() in self._classes

    def classes(self) -> list[MonitoredClassDef]:
        return list(self._classes.values())

    def resolve_event(self, spec: str) -> tuple[MonitoredClassDef, EventDef]:
        """Resolve a ``Class.Event`` rule event spec."""
        if "." not in spec:
            raise SchemaError(
                f"event spec {spec!r} must have the form Class.Event"
            )
        class_name, __, event_name = spec.partition(".")
        cls = self.monitored_class(class_name)
        return cls, cls.event(event_name)

    def register_class(self, cls: MonitoredClassDef) -> None:
        """Extension point: add a new monitored class (paper Section 4.1
        describes a generic interface to integrate new monitored objects)."""
        key = cls.name.lower()
        if key in self._classes:
            raise SchemaError(f"class {cls.name!r} already registered")
        self._classes[key] = cls


def _query_attributes() -> list[AttributeDef]:
    return [
        AttributeDef("ID", SQLType.INTEGER, "query id"),
        AttributeDef("Query_Text", SQLType.STRING, "query text string"),
        AttributeDef("Logical_Signature", SQLType.BLOB,
                     "logical query signature (Section 4.2)"),
        AttributeDef("Physical_Signature", SQLType.BLOB,
                     "physical plan signature (Section 4.2)"),
        AttributeDef("Start_Time", SQLType.DATETIME, "virtual start time"),
        AttributeDef("Duration", SQLType.FLOAT,
                     "total execution time so far (seconds)"),
        AttributeDef("Estimated_Cost", SQLType.FLOAT,
                     "optimizer cost estimate"),
        AttributeDef("Time_Blocked", SQLType.FLOAT,
                     "total time spent waiting on locks"),
        AttributeDef("Times_Blocked", SQLType.INTEGER,
                     "number of lock waits"),
        AttributeDef("Queries_Blocked", SQLType.INTEGER,
                     "number of queries this query blocked"),
        AttributeDef("Time_Blocking_Others", SQLType.FLOAT,
                     "total delay imposed on other queries"),
        AttributeDef("Number_of_instances", SQLType.INTEGER,
                     "executions sharing this logical signature"),
        AttributeDef("Query_Type", SQLType.STRING,
                     "UPDATE | SELECT | INSERT | DELETE"),
        AttributeDef("User", SQLType.STRING, "login that issued the query"),
        AttributeDef("Application", SQLType.STRING,
                     "application that issued the query"),
        AttributeDef("Rows_Affected", SQLType.INTEGER,
                     "rows returned or modified"),
        AttributeDef("Estimated_Rows", SQLType.FLOAT,
                     "optimizer cardinality estimate at the plan root"),
        AttributeDef("Actual_Rows", SQLType.INTEGER,
                     "rows actually produced/modified (drives the "
                     "statistics-drift monitor of Section 2.1)"),
    ]


def _blocked_pair_attributes() -> list[AttributeDef]:
    return _query_attributes() + [
        AttributeDef("Wait_Time", SQLType.FLOAT,
                     "time waited in the current lock conflict"),
        AttributeDef("Resource", SQLType.STRING,
                     "lock resource in conflict"),
    ]


QUERY_CLASS = MonitoredClassDef(
    "Query",
    _query_attributes(),
    [
        EventDef("Start", "query.start"),
        EventDef("Compile", "query.compile"),
        EventDef("Commit", "query.commit"),
        EventDef("Cancel", "query.cancel"),
        EventDef("Rollback", "query.rollback"),
        EventDef("Blocked", "query.blocked"),
        EventDef("Block_Released", "query.block_released"),
    ],
)

TRANSACTION_CLASS = MonitoredClassDef(
    "Transaction",
    [
        AttributeDef("ID", SQLType.INTEGER),
        AttributeDef("Query_Text", SQLType.STRING,
                     "concatenated statement texts"),
        AttributeDef("Logical_Signature", SQLType.BLOB,
                     "logical transaction signature (sequence of ids)"),
        AttributeDef("Physical_Signature", SQLType.BLOB,
                     "physical transaction signature (sequence of ids)"),
        AttributeDef("Start_Time", SQLType.DATETIME),
        AttributeDef("Duration", SQLType.FLOAT),
        AttributeDef("Estimated_Cost", SQLType.FLOAT,
                     "sum over statements"),
        AttributeDef("Time_Blocked", SQLType.FLOAT),
        AttributeDef("Times_Blocked", SQLType.INTEGER),
        AttributeDef("Queries_Blocked", SQLType.INTEGER),
        AttributeDef("Statement_Count", SQLType.INTEGER),
        AttributeDef("User", SQLType.STRING),
        AttributeDef("Application", SQLType.STRING),
    ],
    [
        EventDef("Begin", "txn.begin"),
        EventDef("Commit", "txn.commit"),
        EventDef("Rollback", "txn.rollback"),
    ],
)

BLOCKER_CLASS = MonitoredClassDef("Blocker", _blocked_pair_attributes(), [])
BLOCKED_CLASS = MonitoredClassDef("Blocked", _blocked_pair_attributes(), [])

SESSION_CLASS = MonitoredClassDef(
    "Session",
    [
        AttributeDef("ID", SQLType.INTEGER, "session id (0 on failed login)"),
        AttributeDef("User", SQLType.STRING),
        AttributeDef("Application", SQLType.STRING),
        AttributeDef("Login_Time", SQLType.DATETIME),
    ],
    [
        EventDef("Login", "session.login"),
        EventDef("Login_Failed", "session.login_failed",
                 "a credential check failed (Example 4b auditing)"),
        EventDef("Logout", "session.logout"),
    ],
)

TIMER_CLASS = MonitoredClassDef(
    "Timer",
    [
        AttributeDef("ID", SQLType.INTEGER),
        AttributeDef("Name", SQLType.STRING),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "current virtual time"),
        AttributeDef("Interval", SQLType.FLOAT, "seconds between alerts"),
        AttributeDef("Remaining_Alarms", SQLType.INTEGER,
                     "alarms left (negative = infinite)"),
    ],
    [EventDef("Alert", "timer.alert")],
)

EVICTED_ROW_CLASS = MonitoredClassDef(
    "Evicted",
    [],  # attributes are the evicting LAT's columns, resolved dynamically
    [EventDef("Evict", "lat.evict")],
)

RULE_FAILURE_CLASS = MonitoredClassDef(
    "RuleFailure",
    [
        AttributeDef("Rule_Name", SQLType.STRING, "the rule that failed"),
        AttributeDef("Site", SQLType.STRING,
                     "failure site: condition | action | evaluate"),
        AttributeDef("Error", SQLType.STRING, "error message"),
        AttributeDef("Error_Count", SQLType.INTEGER,
                     "total failures of this rule so far"),
        AttributeDef("Quarantined", SQLType.BOOLEAN,
                     "did this failure trip the circuit breaker?"),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "virtual time of the failure"),
    ],
    [EventDef("Error", "sqlcm.rule_error",
              "a rule failed inside the isolation boundary "
              "(meta-monitoring: rules can watch rule failures)")],
)

STREAM_ALERT_CLASS = MonitoredClassDef(
    "StreamAlert",
    [
        AttributeDef("Stream_Name", SQLType.STRING,
                     "the stream query that emitted the alert"),
        AttributeDef("Kind", SQLType.STRING,
                     "window | having | deviation | topk"),
        AttributeDef("Group_Key", SQLType.STRING,
                     "rendered GROUP BY key of the window row"),
        AttributeDef("Aggregate", SQLType.STRING,
                     "output column that triggered the alert"),
        AttributeDef("Value", SQLType.FLOAT,
                     "value of that column in the alerting window"),
        AttributeDef("Baseline", SQLType.FLOAT,
                     "moving average of past windows (deviation alerts)"),
        AttributeDef("Sigma", SQLType.FLOAT,
                     "standard deviation of past windows (deviation "
                     "alerts)"),
        AttributeDef("Rank", SQLType.INTEGER,
                     "1-based rank within the window (top-k alerts)"),
        AttributeDef("Window_Start", SQLType.DATETIME,
                     "virtual start of the alerting window"),
        AttributeDef("Window_End", SQLType.DATETIME,
                     "virtual end of the alerting window"),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "virtual time of emission"),
    ],
    [EventDef("Alert", "sqlcm.stream_alert",
              "a stream query emitted a window result or anomaly "
              "(ECA rules can close the loop on stream output)")],
)

GOVERNOR_CLASS = MonitoredClassDef(
    "Governor",
    [
        AttributeDef("From_State", SQLType.STRING,
                     "ladder state before the transition"),
        AttributeDef("To_State", SQLType.STRING,
                     "ladder state after the transition"),
        AttributeDef("Reason", SQLType.STRING, "escalate | recover"),
        AttributeDef("Overhead_Ratio", SQLType.FLOAT,
                     "measured rolling overhead ratio at decision time"),
        AttributeDef("Estimated_Ratio", SQLType.FLOAT,
                     "estimated ungoverned ratio (measured + skipped-cost "
                     "estimate)"),
        AttributeDef("Suspended_Count", SQLType.INTEGER,
                     "components suspended after the transition"),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "virtual time of the transition"),
    ],
    [EventDef("Transition", "sqlcm.governor_transition",
              "the overload governor moved along the degradation ladder "
              "(meta-monitoring: rules can watch the governor)")],
)

INCIDENT_CLASS = MonitoredClassDef(
    "Incident",
    [
        AttributeDef("ID", SQLType.INTEGER, "incident id"),
        AttributeDef("Class", SQLType.STRING,
                     "incident class (e.g. blocking, runaway, overload)"),
        AttributeDef("Signature", SQLType.STRING,
                     "dedup key within the class (e.g. the hot resource)"),
        AttributeDef("Phase", SQLType.STRING,
                     "opened | acked | escalated | resolved"),
        AttributeDef("State", SQLType.STRING, "open | acked | resolved"),
        AttributeDef("Severity", SQLType.STRING, "warning | critical"),
        AttributeDef("Occurrences", SQLType.INTEGER,
                     "detections deduplicated into this incident"),
        AttributeDef("Summary", SQLType.STRING, "human-readable summary"),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "virtual time of the transition"),
    ],
    [EventDef("Update", "sqlcm.incident",
              "an incident changed lifecycle state "
              "(meta-monitoring: rules can watch the incident loop)")],
)

REMEDIATION_CLASS = MonitoredClassDef(
    "Remediation",
    [
        AttributeDef("Incident_ID", SQLType.INTEGER),
        AttributeDef("Incident_Class", SQLType.STRING),
        AttributeDef("Signature", SQLType.STRING),
        AttributeDef("Action", SQLType.STRING,
                     "remediation action class name"),
        AttributeDef("Target", SQLType.STRING,
                     "what was acted on (query, rule, LAT)"),
        AttributeDef("Outcome", SQLType.STRING,
                     "ok | failed | suppressed"),
        AttributeDef("Detail", SQLType.STRING),
        AttributeDef("Current_Time", SQLType.DATETIME,
                     "virtual time of the attempt"),
    ],
    [EventDef("Attempt", "sqlcm.remediation",
              "an automated remediation was attempted (or suppressed by "
              "the budget / flap guardrails)")],
)

SCHEMA = SQLCMSchema([
    QUERY_CLASS, TRANSACTION_CLASS, BLOCKER_CLASS, BLOCKED_CLASS,
    SESSION_CLASS, TIMER_CLASS, EVICTED_ROW_CLASS, RULE_FAILURE_CLASS,
    STREAM_ALERT_CLASS, GOVERNOR_CLASS, INCIDENT_CLASS, REMEDIATION_CLASS,
])
