"""Crash-safe monitor durability: checkpoint + journal + recovery.

The monitor's state — rules and their health, LAT contents, stream window
panes, open incidents, the governor ladder, dead letters, pending timers —
lives in memory; this module makes it survive being killed.  Two on-disk
structures per *generation* N:

* ``checkpoint-000N.ckpt`` — an **atomic checkpoint**: the full monitor
  state serialized as one text file (versioned header, one ``section``
  line per subsystem with a CRC32 over its payload, an ``end`` line with
  a CRC over the section table), written to a temp file and published
  with ``os.replace``.  A reader either sees a complete, verified
  checkpoint or rejects the file and falls back to generation N-1.
* ``journal-000N.wal`` — an **append-only logical redo journal** of every
  mutation made after checkpoint N, one CRC-framed line per record.  The
  reader is torn-tail tolerant: it stops at the first record that fails
  its CRC, fails to parse, or lacks its trailing newline, then discards
  any trailing records past the last *committed* one.  Records written
  inside an event dispatch are committed as a group by the per-event
  ``counts`` marker; records written outside dispatch commit alone.

Recovery loads the newest valid checkpoint and replays its journal, so
the restored monitor's :meth:`~repro.core.engine.SQLCM.state_digest`
equals the digest at the last committed journal record before the crash
— the same replay-stable digest that proves sharded == serial in
:mod:`repro.shard`.  Crash-point fault injection rides the existing
:class:`~repro.core.resilience.FaultInjector` at two new sites
(``durability.checkpoint``, ``durability.append``); the
``monitor_crash`` chaos drill and ``tests/test_durability.py`` kill the
monitor at every site and assert digest equality after rebuild.

Deliberately **not** persisted (see DESIGN.md section 14): the pending
event queue and in-flight dispatch (the journal only commits completed
event groups), the outbox/command side-effect logs (already delivered),
the signature registry's numeric ids (rebuilt on demand; instance counts
are keyed by signature bytes which do round-trip), the governor's open
measurement window, and per-stream ``events_seen``/``where_rejected``
tallies between checkpoints.
"""

from __future__ import annotations

import ast
import os
import zlib
from collections import deque
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Callable

from repro.core.actions import (Action, CancelAction, InsertAction,
                                ResetAction, PersistAction,
                                RunExternalAction, SendMailAction,
                                SetTimerAction)
from repro.core.aggregates import AgingSpec, AgingState, FirstAgg, LastAgg
from repro.core.engine import SQLCM
from repro.core.governor import (GovernorPolicy, GovernorTransition,
                                 OverloadGovernor)
from repro.core.incidents import (CancelBlockerAction, Incident,
                                  IncidentPolicy, OpenIncidentAction,
                                  QuarantineRuleAction, RemediationRecord,
                                  ResetLATAction)
from repro.core.lat import (AggSpec, GroupSpec, LAT, LATDefinition,
                            OrderSpec, _Row)
from repro.core.resilience import DeadLetter, RuleHealth
from repro.core.rules import Rule
from repro.errors import DurabilityError, FaultInjected

CHECKPOINT_HEADER = "SQLCM-CHECKPOINT v1"
_NEG_INF = float("-inf")


# ---------------------------------------------------------------------------
# literal codec: everything on disk round-trips through repr/literal_eval
# ---------------------------------------------------------------------------

def _literalize(value: Any) -> Any:
    """Coerce a value into something ``ast.literal_eval`` can read back."""
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        # inf/nan have no literal form; clamp to a parseable stand-in
        return value if value == value and abs(value) != float("inf") else 0.0
    if isinstance(value, tuple):
        return tuple(_literalize(v) for v in value)
    if isinstance(value, (list, deque)):
        return [_literalize(v) for v in value]
    if isinstance(value, dict):
        return {_literalize(k): _literalize(v) for k, v in value.items()}
    return str(value)


# FIRST/LAST carry class-level "no value yet" sentinels that repr cannot
# round-trip; aging aggregates carry block deques.  States are encoded as
# small tagged lists (raw states are never lists, so the tag is unambiguous):
# ["V", value] plain, ["E"] empty sentinel, ["A", [(block_start, enc), ...]].
_EMPTY_SENTINELS = (FirstAgg._EMPTY, LastAgg._EMPTY)


def _enc_plain(state: Any) -> list:
    for sentinel in _EMPTY_SENTINELS:
        if state is sentinel:
            return ["E"]
    return ["V", _literalize(state)]


def _dec_plain(enc: list, func) -> Any:
    if enc[0] == "E":
        return func.new_state()
    value = enc[1]
    return tuple(value) if isinstance(value, list) else value


def _enc_state(state: Any) -> list:
    if isinstance(state, AgingState):
        return ["A", [(start, _enc_plain(block))
                      for start, block in state.blocks]]
    return _enc_plain(state)


def _dec_state(enc: list, func, aging: AgingSpec | None) -> Any:
    if enc[0] == "A":
        state = AgingState(func, aging)
        state.blocks.extend((start, _dec_plain(block, func))
                            for start, block in enc[1])
        return state
    return _dec_plain(enc, func)


def _dec_tuple(value: Any) -> tuple:
    return tuple(value)


# ---------------------------------------------------------------------------
# component specs: LAT definitions, actions, rules
# ---------------------------------------------------------------------------

def lat_definition_spec(definition: LATDefinition) -> dict:
    return {
        "name": definition.name,
        "monitored_class": definition.monitored_class,
        "grouping": [(g.attr, g.alias) for g in definition.grouping],
        "aggregations": [
            (a.func, a.attr, a.alias,
             None if a.aging is None else (a.aging.window, a.aging.delta))
            for a in definition.aggregations],
        "ordering": [(o.column, o.descending) for o in definition.ordering],
        "max_rows": definition.max_rows,
        "max_bytes": definition.max_bytes,
        "criticality": definition.criticality,
    }


def lat_definition_from_spec(spec: dict) -> LATDefinition:
    return LATDefinition(
        name=spec["name"],
        monitored_class=spec["monitored_class"],
        grouping=[GroupSpec(attr, alias) for attr, alias in spec["grouping"]],
        aggregations=[
            AggSpec(func, attr, alias,
                    None if aging is None else AgingSpec(*aging))
            for func, attr, alias, aging in spec["aggregations"]],
        ordering=[OrderSpec(column, descending)
                  for column, descending in spec["ordering"]],
        max_rows=spec["max_rows"],
        max_bytes=spec["max_bytes"],
        criticality=spec["criticality"],
    )


# every declaratively-constructed action round-trips; CallbackAction holds
# a live closure and cannot (its rules are re-created by the recovery
# ``setup`` callback or reported as placeholders)
_ACTION_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (InsertAction, ResetAction, PersistAction, SendMailAction,
                RunExternalAction, CancelAction, SetTimerAction,
                OpenIncidentAction, CancelBlockerAction,
                QuarantineRuleAction, ResetLATAction)
}


def action_spec(action: Action) -> list | None:
    name = type(action).__name__
    cls = _ACTION_TYPES.get(name)
    if cls is None or type(action) is not cls:
        return None
    kwargs = {f.name: _literalize(getattr(action, f.name))
              for f in dataclass_fields(cls)}
    return [name, kwargs]


def action_from_spec(spec: list) -> Action:
    name, kwargs = spec
    cls = _ACTION_TYPES[name]
    decoded = {}
    for f in dataclass_fields(cls):
        if f.name not in kwargs:
            continue
        value = kwargs[f.name]
        decoded[f.name] = value
    return cls(**decoded)


def rule_spec(rule: Rule) -> dict:
    return {
        "name": rule.name,
        "event": rule.event,
        "condition": rule.condition,
        "enabled": rule.enabled,
        "criticality": rule.criticality,
        "actions": [action_spec(a) for a in rule.actions],
        "fire_count": rule.fire_count,
        "evaluation_count": rule.evaluation_count,
    }


# ---------------------------------------------------------------------------
# subsystem images: health, governor, incidents, dead letters
# ---------------------------------------------------------------------------

_HEALTH_FIELDS = ("state", "error_count", "condition_errors",
                  "action_errors", "quarantine_count", "quarantined_at",
                  "reactivate_at", "quarantine_reason", "last_error",
                  "last_site", "current_cooldown")


def health_image(health: RuleHealth) -> dict:
    image = {"name": health.name,
             "recent_failures": list(health.recent_failures)}
    for name in _HEALTH_FIELDS:
        image[name] = _literalize(getattr(health, name))
    return image


def apply_health_image(registry, image: dict) -> None:
    health = registry.health_of(image["name"])
    for name in _HEALTH_FIELDS:
        setattr(health, name, image[name])
    health.recent_failures.clear()
    health.recent_failures.extend(image["recent_failures"])


_GOVERNOR_POLICY_FIELDS = ("target_overhead", "exit_overhead", "window",
                           "cooldown", "decision_interval", "sample_rate",
                           "shed_headroom")
_GOVERNOR_COUNTERS = ("events_seen", "evals_sampled_out", "evals_suspended",
                      "inserts_shed", "stream_events_shed",
                      "requests_denied", "measured_ratio",
                      "estimated_ratio", "sample_digest")


def governor_image(governor: OverloadGovernor) -> dict:
    policy = governor.policy
    image = {
        "policy": {name: getattr(policy, name)
                   for name in _GOVERNOR_POLICY_FIELDS},
        "state": governor.state,
        "last_transition_at": (None
                               if governor.last_transition_at == _NEG_INF
                               else governor.last_transition_at),
        "suspended": sorted(governor.suspended),
        "transitions": [
            (t.time, t.from_state, t.to_state, t.reason,
             t.overhead_ratio, t.estimated_ratio, list(t.suspended))
            for t in governor.transitions],
        "ema": dict(governor._ema),
        "global_ema": governor._global_ema,
        "event_seq": governor._event_seq,
        "event_salt": governor._event_salt,
    }
    for name in _GOVERNOR_COUNTERS:
        image[name] = getattr(governor, name)
    return image


def apply_governor_image(sqlcm: SQLCM, image: dict) -> OverloadGovernor:
    if sqlcm.governor is None:
        sqlcm.enable_governor(GovernorPolicy(**image["policy"]))
    governor = sqlcm.governor
    governor.state = image["state"]
    governor.last_transition_at = (
        _NEG_INF if image["last_transition_at"] is None
        else image["last_transition_at"])
    governor.suspended = {tuple(entry) for entry in image["suspended"]}
    governor.transitions = [
        GovernorTransition(time=t, from_state=f, to_state=to, reason=r,
                           overhead_ratio=o, estimated_ratio=e,
                           suspended=tuple(s))
        for t, f, to, r, o, e, s in image["transitions"]]
    governor._ema = {tuple(k) if isinstance(k, list) else k: v
                     for k, v in image["ema"].items()}
    governor._global_ema = image["global_ema"]
    governor._event_seq = image["event_seq"]
    governor._event_salt = image["event_salt"]
    for name in _GOVERNOR_COUNTERS:
        setattr(governor, name, image[name])
    return governor


_INCIDENT_FIELDS = ("severity", "summary", "state", "acked_at",
                    "resolved_at", "resolution", "last_seen",
                    "occurrences", "escalated")


def incident_image(manager, incident: Incident) -> dict:
    return {
        "incident": {
            "incident_id": incident.incident_id,
            "incident_class": incident.incident_class,
            "signature": incident.signature,
            "opened_at": incident.opened_at,
            "remediations": [
                (r.time, r.action, r.target, r.outcome, r.detail)
                for r in incident.remediations],
            "timeline": [tuple(_literalize(entry))
                         for entry in incident.timeline],
            **{name: _literalize(getattr(incident, name))
               for name in _INCIDENT_FIELDS},
        },
        "counters": incident_counters(manager),
    }


def incident_counters(manager) -> dict:
    return {
        "opened": manager.opened,
        "deduplicated": manager.deduplicated,
        "resolved_count": manager.resolved_count,
        "escalations": manager.escalations,
        "remediation_counts": dict(manager.remediation_counts),
        "next_id": manager._next_id,
        "open_times": [(list(key), list(times))
                       for key, times in manager._open_times.items()],
    }


def apply_incident_image(manager, image: dict) -> Incident:
    data = image["incident"]
    incident = manager._incidents.get(data["incident_id"])
    if incident is None:
        incident = Incident(
            incident_id=data["incident_id"],
            incident_class=data["incident_class"],
            signature=data["signature"],
            severity=data["severity"],
            summary=data["summary"],
            opened_at=data["opened_at"],
        )
        manager._incidents[incident.incident_id] = incident
    for name in _INCIDENT_FIELDS:
        setattr(incident, name, data[name])
    incident.remediations = [
        RemediationRecord(time=t, incident_id=incident.incident_id,
                          action=action, target=target, outcome=outcome,
                          detail=detail)
        for t, action, target, outcome, detail in data["remediations"]]
    incident.timeline = [tuple(entry) for entry in data["timeline"]]
    if incident.active:
        manager._active[incident.key] = incident.incident_id
    else:
        manager._active.pop(incident.key, None)
    apply_incident_counters(manager, image["counters"])
    return incident


def apply_incident_counters(manager, counters: dict) -> None:
    manager.opened = counters["opened"]
    manager.deduplicated = counters["deduplicated"]
    manager.resolved_count = counters["resolved_count"]
    manager.escalations = counters["escalations"]
    manager.remediation_counts = dict(counters["remediation_counts"])
    manager._next_id = max(manager._next_id, counters["next_id"])
    manager._open_times.clear()
    for key, times in counters["open_times"]:
        manager._open_times[tuple(key)] = deque(times)


def dead_letter_image(entry: DeadLetter) -> list:
    return [entry.time, entry.rule, entry.action,
            _literalize(entry.payload), entry.error, entry.attempts]


def dead_letter_from_image(image: list) -> DeadLetter:
    time, rule, action, payload, error, attempts = image
    return DeadLetter(time=time, rule=rule, action=action, payload=payload,
                      error=error, attempts=attempts)


# ---------------------------------------------------------------------------
# the append-only journal
# ---------------------------------------------------------------------------

@dataclass
class JournalRecord:
    seq: int
    kind: str
    commit: bool
    time: float
    data: Any


class Journal:
    """Append-only logical redo journal with group-commit markers.

    One CRC-framed text line per record::

        <crc32 of payload, 8 hex chars> <repr((seq, kind, commit, time, data))>\\n

    ``commit`` semantics: records appended while the owning monitor is
    inside event dispatch default to ``False`` — the per-event ``counts``
    record at the end of ``_process_event`` carries an explicit
    ``commit=True`` and commits the whole group.  Records appended
    outside dispatch commit alone.  Recovery replays records only up to
    and including the last committed one; an uncommitted tail (crash
    mid-event) is discarded, exactly like a torn tail.

    A fault injected at ``durability.append`` marks the journal **dead**
    (the process crashed as far as the disk is concerned): subsequent
    appends are dropped silently, simulating post-crash execution the
    recovery must not see.  ``partial`` mode additionally writes a torn
    half-line first.  A real ``OSError`` also fails open — monitoring
    must never die because its journal disk did — and bumps the
    ``sqlcm.durability.journal_failed`` metric.
    """

    def __init__(self, sqlcm: SQLCM,
                 dispatching: Callable[[], bool] | None = None):
        self._sqlcm = sqlcm
        self._dispatching = (dispatching if dispatching is not None
                             else lambda: sqlcm._dispatching)
        self._file = None
        self.path: str | None = None
        self.seq = 0
        self.dead = False
        self.records_written = 0
        self.on_commit: list[Callable[[], None]] = []

    @property
    def clock(self):
        return self._sqlcm.server.clock

    def rotate(self, path: str) -> None:
        """Close the current segment and start a fresh one (post-checkpoint)."""
        self.close()
        self._file = open(path, "w", encoding="utf-8")
        self.path = path
        self.dead = False

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def append(self, kind: str, data: Any, commit: bool | None = None) -> None:
        if self.dead or self._file is None:
            return
        if commit is None:
            commit = not self._dispatching()
        self.seq += 1
        payload = repr((self.seq, kind, bool(commit), self.clock.now,
                        _literalize(data)))
        line = f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"
        try:
            self._sqlcm.check_fault("durability.append")
        except FaultInjected as err:
            if err.mode == "partial":
                # a torn tail: the first half of the line hit the disk
                self._file.write(line[: max(1, len(line) // 2)])
                self._file.flush()
            self.dead = True
            return
        try:
            self._file.write(line)
            self._file.flush()
        except OSError:
            self.dead = True
            self._sqlcm.server.obs.count("sqlcm.durability.journal_failed")
            return
        self.records_written += 1
        if commit:
            for callback in self.on_commit:
                callback()

    # convenience appenders used by the wired subsystems (keeps the spec
    # codecs out of the hot modules)

    def lat_created(self, definition: LATDefinition) -> None:
        self.append("lat_create", {"definition": lat_definition_spec(definition)})

    def lat_dropped(self, name: str) -> None:
        self.append("lat_drop", {"name": name})

    def rule_added(self, rule: Rule) -> None:
        self.append("rule_add", {"rule": rule_spec(rule)})

    def rule_removed(self, name: str) -> None:
        self.append("rule_remove", {"name": name})

    def rule_enabled(self, name: str, enabled: bool) -> None:
        self.append("rule_enable", {"name": name, "enabled": enabled})

    def stream_registered(self, query) -> None:
        self.append("stream_register", {
            "text": query.spec.text,
            "name": query.name,
            "sink_lat": query.sink_lat,
            "criticality": query.criticality,
            "max_alerts": query.alerts.maxlen,
        })

    def stream_removed(self, name: str) -> None:
        self.append("stream_remove", {"name": name})

    def health_changed(self, namespace: str, health: RuleHealth) -> None:
        self.append("health", {"ns": namespace, "image": health_image(health)})

    def incident_changed(self, manager, incident: Incident) -> None:
        self.append("incident", incident_image(manager, incident))

    def governor_changed(self, governor: OverloadGovernor) -> None:
        self.append("governor", governor_image(governor))

    def dead_lettered(self, entry: DeadLetter) -> None:
        self.append("deadletter", {"entry": dead_letter_image(entry)})

    def attach_stream_health(self, streams) -> None:
        """Wire a (possibly lazily-created) stream engine's health registry."""
        streams.health.journal_hook = (
            lambda health: self.health_changed("stream", health))


def read_journal(path: str) -> tuple[list[JournalRecord], int]:
    """Read a journal segment, tolerating a torn tail.

    Returns ``(committed_records, discarded)`` where ``discarded`` counts
    valid-but-uncommitted trailing records plus any torn line.  Reading
    stops at the first line that fails its CRC, fails to parse, or lacks
    its trailing newline.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "r", encoding="utf-8", newline="") as handle:
        content = handle.read()
    records: list[JournalRecord] = []
    torn = 0
    pieces = content.split("\n")
    # a well-formed file ends with "\n", leaving one empty trailing piece;
    # anything else in the final slot is a torn line
    if pieces and pieces[-1] == "":
        pieces.pop()
    elif pieces:
        torn = 1
        pieces.pop()
    for line in pieces:
        crc_hex, sep, payload = line.partition(" ")
        if not sep or len(crc_hex) != 8:
            torn = 1
            break
        try:
            if int(crc_hex, 16) != zlib.crc32(payload.encode("utf-8")):
                torn = 1
                break
            seq, kind, commit, time, data = ast.literal_eval(payload)
        except (ValueError, SyntaxError):
            torn = 1
            break
        records.append(JournalRecord(seq, kind, commit, time, data))
    last_commit = -1
    for index, record in enumerate(records):
        if record.commit:
            last_commit = index
    committed = records[: last_commit + 1]
    discarded = len(records) - len(committed) + torn
    return committed, discarded


# ---------------------------------------------------------------------------
# checkpoint file format
# ---------------------------------------------------------------------------

def render_checkpoint(sections: dict[str, Any]) -> str:
    lines = [CHECKPOINT_HEADER]
    table_crc = 0
    for name, payload in sections.items():
        text = repr(payload)
        crc = zlib.crc32(text.encode("utf-8"))
        table_crc = zlib.crc32(f"{name}:{crc:08x}".encode("utf-8"), table_crc)
        lines.append(f"section {name} {crc:08x} {text}")
    lines.append(f"end {table_crc:08x}")
    return "\n".join(lines) + "\n"


def parse_checkpoint(path: str) -> dict[str, Any]:
    """Parse and CRC-verify a checkpoint; raises DurabilityError if invalid."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        content = handle.read()
    lines = content.split("\n")
    if not lines or lines[0] != CHECKPOINT_HEADER:
        raise DurabilityError(f"{path}: bad checkpoint header")
    sections: dict[str, Any] = {}
    table_crc = 0
    ended = False
    for line in lines[1:]:
        if not line:
            continue
        if line.startswith("section "):
            if ended:
                raise DurabilityError(f"{path}: section after end marker")
            try:
                __, name, crc_hex, text = line.split(" ", 3)
            except ValueError:
                raise DurabilityError(f"{path}: malformed section line")
            if int(crc_hex, 16) != zlib.crc32(text.encode("utf-8")):
                raise DurabilityError(f"{path}: CRC mismatch in {name!r}")
            try:
                sections[name] = ast.literal_eval(text)
            except (ValueError, SyntaxError) as err:
                raise DurabilityError(
                    f"{path}: unreadable section {name!r}") from err
            table_crc = zlib.crc32(f"{name}:{crc_hex}".encode("utf-8"),
                                   table_crc)
        elif line.startswith("end "):
            if int(line.split(" ", 1)[1], 16) != table_crc:
                raise DurabilityError(f"{path}: section table CRC mismatch")
            ended = True
        else:
            raise DurabilityError(f"{path}: unrecognized line")
    if not ended:
        raise DurabilityError(f"{path}: missing end marker (torn write)")
    return sections


# ---------------------------------------------------------------------------
# checkpoint section builders
# ---------------------------------------------------------------------------

def _lat_section(lat: LAT) -> dict:
    return {
        "definition": lat_definition_spec(lat.definition),
        "seq": lat._seq,
        "rows": [(row.key, [_enc_state(s) for s in row.states], row.seq)
                 for row in lat._rows.values()],
        "counters": (lat.insert_count, lat.eviction_count,
                     lat.latch_acquisitions, lat.peak_rows, lat.seed_count),
    }


def _load_lat_section(lat: LAT, data: dict) -> None:
    lat._rows.clear()
    aggs = lat.definition.aggregations
    for key, states, seq in data["rows"]:
        key = tuple(key)
        decoded = [_dec_state(enc, func, spec.aging)
                   for enc, spec, func in zip(states, aggs, lat._functions)]
        row = _Row(key, decoded, seq)
        lat._rows[key] = row
    lat._seq = data["seq"]
    (lat.insert_count, lat.eviction_count, lat.latch_acquisitions,
     lat.peak_rows, lat.seed_count) = data["counters"]


def _stream_query_section(query) -> dict:
    deviation = None
    if query.deviation is not None:
        deviation = {
            "history": [(key, list(values))
                        for key, values in query.deviation._history.items()],
            "observations": query.deviation.observations,
            "flagged": query.deviation.flagged,
        }
    topk = None
    if query.topk is not None:
        topk = {"windows_ranked": query.topk.windows_ranked}
    return {
        "text": query.spec.text,
        "name": query.name,
        "sink_lat": query.sink_lat,
        "criticality": query.criticality,
        "max_alerts": query.alerts.maxlen,
        "enabled": query.enabled,
        "next_boundary": query.next_boundary,
        "counters": (query.events_seen, query.events_ingested,
                     query.where_rejected, query.windows_emitted,
                     query.alert_count, query.errors),
        "last_error": query.last_error,
        "alerts": [_literalize(alert) for alert in query.alerts],
        "window": [(key, [(pane, [_enc_plain(s) for s in states])
                          for pane, states in panes])
                   for key, panes in query.window.groups.items()],
        "window_ops": (query.window.update_ops, query.window.combine_ops),
    } | {"deviation": deviation, "topk": topk}


def _load_stream_query_section(streams, data: dict):
    query = streams.register(
        data["text"], name=data["name"], sink_lat=data["sink_lat"],
        max_alerts=data["max_alerts"], criticality=data["criticality"])
    query.enabled = data["enabled"]
    query.next_boundary = data["next_boundary"]
    (query.events_seen, query.events_ingested, query.where_rejected,
     query.windows_emitted, query.alert_count,
     query.errors) = data["counters"]
    query.last_error = data["last_error"]
    for alert in data["alerts"]:
        alert = dict(alert)
        if isinstance(alert.get("key"), list):
            alert["key"] = tuple(alert["key"])
        query.alerts.append(alert)
    funcs = query.window.funcs
    query.window.groups = {
        tuple(key): deque((pane, [_dec_plain(enc, func)
                                  for enc, func in zip(states, funcs)])
                          for pane, states in panes)
        for key, panes in data["window"]}
    query.window.update_ops, query.window.combine_ops = data["window_ops"]
    if query.deviation is not None and data["deviation"] is not None:
        operator = query.deviation
        operator._history = {
            tuple(key): deque(values, maxlen=operator.spec.history)
            for key, values in data["deviation"]["history"]}
        operator.observations = data["deviation"]["observations"]
        operator.flagged = data["deviation"]["flagged"]
    if query.topk is not None and data["topk"] is not None:
        query.topk.windows_ranked = data["topk"]["windows_ranked"]
    return query


_INCIDENT_POLICY_FIELDS = ("escalation_timeout", "clear_after",
                           "sweep_interval", "max_remediations",
                           "remediation_window", "flap_threshold",
                           "flap_window", "history", "alert_to_incident")


def build_sections(sqlcm: SQLCM) -> dict[str, Any]:
    """The full monitor state of one serial SQLCM, as checkpoint sections."""
    clock = sqlcm.server.clock
    sections: dict[str, Any] = {
        "meta": {
            "version": 1,
            "time": clock.now,
            "events_handled": sqlcm.events_handled,
            "rule_firings": sqlcm.rule_firings,
            "rule_errors": sqlcm.rule_errors,
        },
    }
    incidents = sqlcm._incidents
    if incidents is not None:
        policy = incidents.policy
        sections["incidents"] = {
            "policy": ({name: getattr(policy, name)
                        for name in _INCIDENT_POLICY_FIELDS}
                       | {"alert_kinds": list(policy.alert_kinds)}),
            "incidents": [incident_image(incidents, incident)["incident"]
                          for incident in incidents._incidents.values()],
            "counters": incident_counters(incidents),
        }
    sections["lats"] = [_lat_section(lat) for lat in sqlcm.lats()]
    sections["rules"] = [rule_spec(rule) for rule in sqlcm._rule_order]
    streams = sqlcm._streams
    if streams is not None:
        sections["streams"] = {
            "queries": [_stream_query_section(query)
                        for query in streams._queries.values()],
            "counters": (streams.events_seen, streams.alerts_published,
                         streams.errors),
        }
    health = {"engine": [health_image(h)
                         for h in sqlcm.health._health.values()]}
    if streams is not None:
        health["stream"] = [health_image(h)
                            for h in streams.health._health.values()]
    sections["health"] = health
    sections["instances"] = sorted(
        (sig.hex(), count) for sig, count in sqlcm._instance_counts.items())
    governor = sqlcm.governor
    sections["governor"] = (None if governor is None
                            else governor_image(governor))
    letters = sqlcm.dead_letters
    sections["deadletters"] = {
        "entries": [dead_letter_image(entry) for entry in letters.entries()],
        "capacity": letters.capacity,
        "dropped": letters.dropped,
        "poison_dropped": letters.poison_dropped,
    }
    sections["timers"] = [
        (timer.name, timer.interval, timer.remaining)
        for timer in sqlcm.timer_service.timers()]
    if incidents is not None and incidents.policy.history:
        tables = {}
        for table_name in incidents.history_tables():
            if sqlcm.server.catalog.has_table(table_name):
                table = sqlcm.server.table(table_name)
                tables[table_name] = [
                    _literalize(list(row)) for __, row in table.scan()]
        sections["history"] = tables
    return sections


def build_sections_sharded(sharded) -> dict[str, Any]:
    """Checkpoint sections for a ShardedSQLCM, built from merged state.

    Covers the digest-bearing state (merged LATs, summed rule counters,
    summed instance counts, summed totals) plus registrations and merged
    stream panes.  Supervisory state (health, incidents, governor ladder,
    dead letters, timers) is per-shard and is carried by the journal
    between checkpoints rather than merged here; recovery of a sharded
    journal always targets a *serial* monitor.
    """
    clock = sharded.server.clock
    control = sharded.shards[0].sqlcm
    sections: dict[str, Any] = {
        "meta": {
            "version": 1,
            "time": clock.now,
            "events_handled": sum(s.sqlcm.events_handled
                                  for s in sharded.shards),
            "rule_firings": sum(s.sqlcm.rule_firings
                                for s in sharded.shards),
            "rule_errors": sum(s.sqlcm.rule_errors for s in sharded.shards),
        },
    }
    lats = []
    for name in sorted(sharded._lat_definitions):
        merged = sharded.merged_lat(name)
        lats.append(_lat_section(merged))
    sections["lats"] = lats
    rules = []
    for rule in control._rule_order:
        spec = rule_spec(rule)
        fires, evals = sharded.rule_stats(rule.name)
        spec["fire_count"] = fires
        spec["evaluation_count"] = evals
        rules.append(spec)
    sections["rules"] = rules
    streams = control._streams
    if streams is not None:
        queries = []
        for query in streams._queries.values():
            data = _stream_query_section(query)
            merged = sharded.merged_window(query.name)
            data["window"] = [
                (key, [(pane, [_enc_plain(s) for s in states])
                       for pane, states in panes])
                for key, panes in merged.groups.items()]
            counters = [0] * 6
            for shard in sharded.shards:
                q = shard.sqlcm._streams.query(query.name)
                for i, value in enumerate((q.events_seen, q.events_ingested,
                                           q.where_rejected,
                                           q.windows_emitted, q.alert_count,
                                           q.errors)):
                    counters[i] += value
            data["counters"] = tuple(counters)
            data["alerts"] = []  # per-shard rings have no merge order
            queries.append(data)
        sections["streams"] = {
            "queries": queries,
            "counters": (
                sum(s.sqlcm._streams.events_seen for s in sharded.shards
                    if s.sqlcm._streams is not None),
                sum(s.sqlcm._streams.alerts_published for s in sharded.shards
                    if s.sqlcm._streams is not None),
                sum(s.sqlcm._streams.errors for s in sharded.shards
                    if s.sqlcm._streams is not None)),
        }
    instances: dict[bytes, int] = {}
    for shard in sharded.shards:
        for sig, count in shard.sqlcm._instance_counts.items():
            instances[sig] = instances.get(sig, 0) + count
    sections["instances"] = sorted(
        (sig.hex(), count) for sig, count in instances.items())
    return sections


# ---------------------------------------------------------------------------
# checkpoint restore + journal replay
# ---------------------------------------------------------------------------

@dataclass
class RecoveryReport:
    """What a recovery did; ``sqlcm`` is the rebuilt serial monitor."""

    sqlcm: SQLCM
    generation: int
    checkpoint_path: str
    journal_path: str
    records_replayed: int = 0
    records_discarded: int = 0
    placeholder_rules: list[str] = field(default_factory=list)


class _Restorer:
    """Applies checkpoint sections and journal records to a fresh monitor."""

    def __init__(self, sqlcm: SQLCM, report: RecoveryReport):
        self.sqlcm = sqlcm
        self.report = report
        self.pending_timers: dict[str, tuple[float, int]] = {}
        # history rows replay only into a server that did not already
        # hold the history tables (a live supervised restart keeps them)
        self.apply_history = True

    # -- checkpoint ------------------------------------------------------

    def load_checkpoint(self, sections: dict[str, Any]) -> None:
        sqlcm = self.sqlcm
        meta = sections["meta"]
        sqlcm.server.clock.advance_to(meta["time"])
        sqlcm.events_handled = meta["events_handled"]
        sqlcm.rule_firings = meta["rule_firings"]
        sqlcm.rule_errors = meta["rule_errors"]
        incidents = sections.get("incidents")
        if incidents is not None:
            policy_spec = dict(incidents["policy"])
            policy_spec["alert_kinds"] = tuple(policy_spec["alert_kinds"])
            self.apply_history = not sqlcm.server.catalog.has_table(
                "sqlcm_incidents")
            manager = sqlcm.incident_manager(IncidentPolicy(**policy_spec))
            for image in incidents["incidents"]:
                apply_incident_image(
                    manager, {"incident": image,
                              "counters": incidents["counters"]})
            apply_incident_counters(manager, incidents["counters"])
        for lat_data in sections.get("lats", ()):
            definition = lat_definition_from_spec(lat_data["definition"])
            if not sqlcm.has_lat(definition.name):
                sqlcm.create_lat(definition)
        for spec in sections.get("rules", ()):
            self._restore_rule(spec)
        streams_data = sections.get("streams")
        if streams_data is not None:
            streams = sqlcm.stream_engine()
            for query_data in streams_data["queries"]:
                if query_data["name"].lower() not in streams._queries:
                    _load_stream_query_section(streams, query_data)
                else:
                    # re-registered by an earlier restore step; refresh state
                    streams.remove(query_data["name"])
                    _load_stream_query_section(streams, query_data)
            (streams.events_seen, streams.alerts_published,
             streams.errors) = streams_data["counters"]
        for lat_data in sections.get("lats", ()):
            lat = sqlcm.lat(lat_data["definition"]["name"])
            _load_lat_section(lat, lat_data)
        health = sections.get("health", {})
        for image in health.get("engine", ()):
            apply_health_image(sqlcm.health, image)
        stream_health = health.get("stream")
        if stream_health:
            registry = sqlcm.stream_engine().health
            for image in stream_health:
                apply_health_image(registry, image)
        self._apply_instances(sections.get("instances", ()), absolute=True)
        governor = sections.get("governor")
        if governor is not None:
            apply_governor_image(sqlcm, governor)
        letters = sections.get("deadletters")
        if letters is not None:
            sqlcm.dead_letters.capacity = letters["capacity"]
            sqlcm.dead_letters.dropped = letters["dropped"]
            sqlcm.dead_letters.poison_dropped = letters["poison_dropped"]
            for image in letters["entries"]:
                sqlcm.dead_letters._entries.append(
                    dead_letter_from_image(image))
        for name, interval, remaining in sections.get("timers", ()):
            self.pending_timers[name.lower()] = (name, interval, remaining)
        history = sections.get("history")
        if history and self.apply_history:
            self._restore_history(history)

    def _restore_rule(self, spec: dict) -> None:
        sqlcm = self.sqlcm
        key = spec["name"].lower()
        rule = sqlcm.rules.get(key)
        if rule is None:
            actions = []
            placeholder = False
            for action in spec["actions"]:
                if action is None:
                    placeholder = True
                else:
                    actions.append(action_from_spec(action))
            if placeholder and not actions:
                # a pure-callback rule (e.g. an app component's) cannot be
                # rebuilt from disk; the recovery setup() callback is the
                # supported path — report it so the operator knows
                self.report.placeholder_rules.append(spec["name"])
                return
            if placeholder:
                self.report.placeholder_rules.append(spec["name"])
            rule = sqlcm.add_rule(Rule(
                name=spec["name"], event=spec["event"],
                condition=spec["condition"], actions=actions,
                enabled=spec["enabled"], criticality=spec["criticality"]))
        rule.enabled = spec["enabled"]
        rule.fire_count = spec["fire_count"]
        rule.evaluation_count = spec["evaluation_count"]

    def _restore_history(self, tables: dict[str, list]) -> None:
        sqlcm = self.sqlcm
        manager = sqlcm._incidents
        if manager is None:
            return
        manager._ensure_history()
        for table_name, rows in tables.items():
            if not sqlcm.server.catalog.has_table(table_name):
                continue
            table = sqlcm.server.table(table_name)
            for row in rows:
                table.insert(list(row))

    def _apply_instances(self, entries, absolute: bool) -> None:
        counts = self.sqlcm._instance_counts
        if absolute:
            counts.clear()
            for sig_hex, count in entries:
                counts[bytes.fromhex(sig_hex)] = count

    # -- journal ---------------------------------------------------------

    def replay(self, records: list[JournalRecord]) -> None:
        for record in records:
            self.sqlcm.server.clock.advance_to(record.time)
            handler = getattr(self, f"_replay_{record.kind}", None)
            if handler is None:
                raise DurabilityError(
                    f"unknown journal record kind {record.kind!r}")
            handler(record.data, record.time)
            self.report.records_replayed += 1

    def finish(self) -> None:
        """Re-arm pending timers (last: their processes need final clock)."""
        for name, interval, remaining in self.pending_timers.values():
            self.sqlcm.set_timer(name, interval, remaining)

    def _replay_lat_insert(self, data: dict, t: float) -> None:
        if self.sqlcm.has_lat(data["lat"]):
            self.sqlcm.lat(data["lat"]).insert(
                data["values"], data["weight"], now=data["time"])

    def _replay_lat_seed(self, data: dict, t: float) -> None:
        if self.sqlcm.has_lat(data["lat"]):
            self.sqlcm.lat(data["lat"]).seed_row(
                data["values"], now=data["time"])

    def _replay_lat_reset(self, data: dict, t: float) -> None:
        if self.sqlcm.has_lat(data["lat"]):
            self.sqlcm.lat(data["lat"]).reset()

    def _replay_lat_del(self, data: dict, t: float) -> None:
        if self.sqlcm.has_lat(data["lat"]):
            self.sqlcm.lat(data["lat"]).delete_row(tuple(data["key"]))

    def _replay_lat_create(self, data: dict, t: float) -> None:
        definition = lat_definition_from_spec(data["definition"])
        if not self.sqlcm.has_lat(definition.name):
            self.sqlcm.create_lat(definition)

    def _replay_lat_drop(self, data: dict, t: float) -> None:
        if self.sqlcm.has_lat(data["name"]):
            self.sqlcm.drop_lat(data["name"])

    def _replay_rule_add(self, data: dict, t: float) -> None:
        spec = dict(data["rule"])
        if spec["name"].lower() not in self.sqlcm.rules:
            spec = spec | {"fire_count": 0, "evaluation_count": 0}
        self._restore_rule(spec)

    def _replay_rule_remove(self, data: dict, t: float) -> None:
        if data["name"].lower() in self.sqlcm.rules:
            self.sqlcm.remove_rule(data["name"])

    def _replay_rule_enable(self, data: dict, t: float) -> None:
        rule = self.sqlcm.rules.get(data["name"].lower())
        if rule is not None:
            rule.enabled = data["enabled"]

    def _replay_stream_register(self, data: dict, t: float) -> None:
        streams = self.sqlcm.stream_engine()
        if data["name"].lower() not in streams._queries:
            streams.register(data["text"], name=data["name"],
                             sink_lat=data["sink_lat"],
                             max_alerts=data["max_alerts"],
                             criticality=data["criticality"])

    def _replay_stream_remove(self, data: dict, t: float) -> None:
        streams = self.sqlcm._streams
        if streams is not None and data["name"].lower() in streams._queries:
            streams.remove(data["name"])

    def _replay_stream_obs(self, data: dict, t: float) -> None:
        streams = self.sqlcm._streams
        if streams is None:
            return
        query = streams._queries.get(data["stream"].lower())
        if query is None:
            return
        key = tuple(data["key"])
        query.window.observe(key, list(data["values"]), data["time"])
        if query.next_boundary is None:
            query.next_boundary = (
                query.spec.window.pane_index(data["time"]) + 1)
        query.events_ingested += 1

    def _replay_stream_flush(self, data: dict, t: float) -> None:
        streams = self.sqlcm._streams
        if streams is None:
            return
        streams.replaying = True
        try:
            streams.flush(data["time"])
        finally:
            streams.replaying = False

    def _replay_counts(self, data: dict, t: float) -> None:
        sqlcm = self.sqlcm
        sqlcm.events_handled += 1
        sqlcm.rule_firings += data["firings"]
        sqlcm.rule_errors += data["errors"]
        for name, evals, fires in data["rules"]:
            rule = sqlcm.rules.get(name.lower())
            if rule is not None:
                rule.evaluation_count += evals
                rule.fire_count += fires

    def _replay_instance(self, data: dict, t: float) -> None:
        counts = self.sqlcm._instance_counts
        sig = bytes.fromhex(data["sig"])
        counts[sig] = counts.get(sig, 0) + data["delta"]

    def _replay_health(self, data: dict, t: float) -> None:
        if data["ns"] == "stream":
            registry = self.sqlcm.stream_engine().health
        else:
            registry = self.sqlcm.health
        apply_health_image(registry, data["image"])

    def _replay_incident(self, data: dict, t: float) -> None:
        manager = self.sqlcm.incident_manager()
        apply_incident_image(manager, data)

    def _replay_governor(self, data: dict, t: float) -> None:
        apply_governor_image(self.sqlcm, data)

    def _replay_deadletter(self, data: dict, t: float) -> None:
        self.sqlcm.dead_letters._entries.append(
            dead_letter_from_image(data["entry"]))

    def _replay_timer(self, data: dict, t: float) -> None:
        self.pending_timers[data["name"].lower()] = (
            data["name"], data["interval"], data["repeats"])

    def _replay_history(self, data: dict, t: float) -> None:
        if not self.apply_history:
            return
        sqlcm = self.sqlcm
        manager = sqlcm._incidents
        if manager is not None:
            manager._ensure_history()
        if sqlcm.server.catalog.has_table(data["table"]):
            sqlcm.server.table(data["table"]).insert(
                list(data["values"]) + [data["time"]])


# ---------------------------------------------------------------------------
# the durability manager
# ---------------------------------------------------------------------------

def _checkpoint_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"checkpoint-{generation:04d}.ckpt")


def _journal_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"journal-{generation:04d}.wal")


def _list_generations(directory: str) -> list[int]:
    generations = []
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            if name.startswith("checkpoint-") and name.endswith(".ckpt"):
                try:
                    generations.append(int(name[len("checkpoint-"):-5]))
                except ValueError:
                    continue
    return sorted(generations)


class DurabilityManager:
    """Owns one monitor's on-disk durability state.

    ``attach()`` wires the journal hooks into every subsystem and takes
    the initial checkpoint; ``checkpoint()`` publishes a new generation
    atomically and rotates the journal; :func:`recover` (also exposed as
    a static method) rebuilds a monitor from the newest valid generation.

    ``target`` may be a serial :class:`SQLCM` or a
    :class:`~repro.shard.sharded.ShardedSQLCM` — sharded journals merge
    into the shared segment and recovery always rebuilds a serial
    monitor (the digest proof in :mod:`repro.shard` guarantees equality).
    """

    def __init__(self, target, directory: str,
                 checkpoint_interval: float | None = None):
        self.target = target
        self.directory = directory
        self.checkpoint_interval = checkpoint_interval
        self.sharded = hasattr(target, "shards")
        self.control = target.shards[0].sqlcm if self.sharded else target
        if self.sharded:
            shards = target.shards
            self.journal = Journal(
                self.control,
                dispatching=lambda: any(s.sqlcm._dispatching
                                        for s in shards))
        else:
            self.journal = Journal(target)
        existing = _list_generations(directory)
        self.generation = existing[-1] if existing else 0
        self.last_checkpoint_at: float | None = None
        self.checkpoints_taken = 0
        self.attached = False

    @property
    def clock(self):
        return self.control.server.clock

    # -- wiring ----------------------------------------------------------

    def attach(self) -> "DurabilityManager":
        """Install journal hooks on every subsystem, then checkpoint."""
        os.makedirs(self.directory, exist_ok=True)
        journal = self.journal
        monitors = ([shard.sqlcm for shard in self.target.shards]
                    if self.sharded else [self.target])
        for sqlcm in monitors:
            sqlcm.journal = journal
            for lat in sqlcm.lats():
                lat.journal = journal
        if not self.sharded:
            sqlcm = self.target
            sqlcm.health.journal_hook = (
                lambda health: journal.health_changed("engine", health))
            if sqlcm._streams is not None:
                journal.attach_stream_health(sqlcm._streams)
            sqlcm.dead_letters.journal_hook = journal.dead_lettered
        self.attached = True
        self.checkpoint()
        return self

    def detach(self) -> None:
        """Remove every journal hook and close the journal file."""
        monitors = ([shard.sqlcm for shard in self.target.shards]
                    if self.sharded else [self.target])
        for sqlcm in monitors:
            sqlcm.journal = None
            for lat in sqlcm.lats():
                lat.journal = None
            sqlcm.health.journal_hook = None
            if sqlcm._streams is not None:
                sqlcm._streams.health.journal_hook = None
            sqlcm.dead_letters.journal_hook = None
        self.journal.close()
        self.attached = False

    close = detach

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self) -> str:
        """Write a new checkpoint generation atomically; rotate the journal.

        Protocol: render the full state, consult the
        ``durability.checkpoint`` fault site (an *exception* fault models
        a crash before the rename — the temp file never becomes visible;
        a *partial* fault models a torn write that does become visible —
        recovery CRC-rejects it and falls back a generation), publish via
        ``os.replace``, and only then start the new journal segment and
        prune generations older than the previous one.
        """
        if self.control._dispatching:
            raise DurabilityError("cannot checkpoint mid-dispatch")
        generation = self.generation + 1
        sections = (build_sections_sharded(self.target) if self.sharded
                    else build_sections(self.target))
        content = render_checkpoint(sections)
        partial: FaultInjected | None = None
        try:
            self.control.check_fault("durability.checkpoint")
        except FaultInjected as err:
            if err.mode != "partial":
                raise  # crash mid-checkpoint: nothing became visible
            partial = err
            content = content[: max(1, int(len(content) * 0.6))]
        path = _checkpoint_path(self.directory, generation)
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(content)
        os.replace(temp, path)
        if partial is not None:
            # the torn checkpoint landed, but the journal of the previous
            # generation was never rotated away — recovery falls back to it
            raise partial
        self.generation = generation
        self.journal.rotate(_journal_path(self.directory, generation))
        self._prune()
        self.last_checkpoint_at = self.clock.now
        self.checkpoints_taken += 1
        return path

    def maybe_checkpoint(self, now: float | None = None) -> str | None:
        """Checkpoint when the configured interval has elapsed."""
        if self.checkpoint_interval is None or not self.attached:
            return None
        if self.control._dispatching:
            return None
        now = self.clock.now if now is None else now
        last = self.last_checkpoint_at
        if last is not None and now - last < self.checkpoint_interval:
            return None
        return self.checkpoint()

    def _prune(self) -> None:
        """Keep the current and previous generations; drop older files."""
        for generation in _list_generations(self.directory):
            if generation <= self.generation - 2:
                for path in (_checkpoint_path(self.directory, generation),
                             _journal_path(self.directory, generation)):
                    if os.path.exists(path):
                        os.remove(path)

    def describe(self) -> dict:
        return {
            "directory": self.directory,
            "generation": self.generation,
            "checkpoints_taken": self.checkpoints_taken,
            "last_checkpoint_at": self.last_checkpoint_at,
            "checkpoint_interval": self.checkpoint_interval,
            "journal_records": self.journal.records_written,
            "journal_dead": self.journal.dead,
            "sharded": self.sharded,
        }

    # -- recovery --------------------------------------------------------

    @staticmethod
    def recover(directory: str, *, server=None, driver=None,
                setup: Callable[[SQLCM], None] | None = None,
                sqlcm: SQLCM | None = None) -> RecoveryReport:
        """Rebuild a serial monitor from the newest valid generation.

        Tries checkpoint generations newest-first; a generation whose
        checkpoint fails CRC verification (torn write) is skipped in
        favor of the previous one, whose journal kept growing because
        rotation only happens after a successful checkpoint publish.

        ``setup`` runs against the fresh monitor before any state is
        applied — it is the hook for re-registering components whose
        rules carry live callbacks (AutoRemediator, app rule packs);
        rules that cannot be rebuilt and were not pre-registered are
        listed in ``RecoveryReport.placeholder_rules``.
        """
        generations = _list_generations(directory)
        if not generations:
            raise DurabilityError(f"no checkpoint found in {directory!r}")
        chosen = None
        sections = None
        for generation in reversed(generations):
            path = _checkpoint_path(directory, generation)
            try:
                sections = parse_checkpoint(path)
            except (DurabilityError, OSError):
                continue
            chosen = generation
            break
        if chosen is None or sections is None:
            raise DurabilityError(
                f"no valid checkpoint generation in {directory!r}")
        if sqlcm is None:
            sqlcm = SQLCM(server, driver=driver)
        if setup is not None:
            setup(sqlcm)
        journal_path = _journal_path(directory, chosen)
        report = RecoveryReport(
            sqlcm=sqlcm, generation=chosen,
            checkpoint_path=_checkpoint_path(directory, chosen),
            journal_path=journal_path)
        restorer = _Restorer(sqlcm, report)
        restorer.load_checkpoint(sections)
        records, discarded = read_journal(journal_path)
        report.records_discarded = discarded
        restorer.replay(records)
        restorer.finish()
        return report


# ---------------------------------------------------------------------------
# kill-and-rebuild harness
# ---------------------------------------------------------------------------

class DigestTap:
    """Records ``(virtual time, digest)`` at every committed journal append.

    The last point is the state a correct recovery must reproduce: a
    crash can only lose the uncommitted tail, so the recovered monitor's
    digest must equal the digest at the last commit marker the disk saw.
    """

    def __init__(self, manager: DurabilityManager,
                 digest_fn: Callable[[], int] | None = None):
        self._fn = digest_fn or manager.target.state_digest
        self._clock = manager.clock
        self.points: list[tuple[float, int]] = []
        self._capture()  # the post-attach checkpoint state is point zero
        manager.journal.on_commit.append(self._capture)

    def _capture(self) -> None:
        self.points.append((self._clock.now, self._fn()))

    @property
    def last(self) -> tuple[float, int]:
        return self.points[-1]


def verify_recovery(directory: str, tap: DigestTap, *, server=None,
                    setup: Callable[[SQLCM], None] | None = None
                    ) -> RecoveryReport:
    """Recover from ``directory`` and assert digest equality with ``tap``.

    Raises :class:`DurabilityError` on mismatch; returns the report on
    success.  The recovered monitor's clock is advanced to the capture
    time first (aging aggregates and integrity signatures read the
    clock).
    """
    report = DurabilityManager.recover(directory, server=server, setup=setup)
    target_time, expected = tap.last
    report.sqlcm.server.clock.advance_to(target_time)
    actual = report.sqlcm.state_digest()
    if actual != expected:
        raise DurabilityError(
            f"recovered digest 0x{actual:08x} != pre-crash digest "
            f"0x{expected:08x} (generation {report.generation}, "
            f"{report.records_replayed} records replayed, "
            f"{report.records_discarded} discarded)")
    return report
