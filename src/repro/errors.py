"""Exception hierarchy for the repro package.

Every error raised by the engine or by SQLCM derives from :class:`ReproError`
so applications can catch the whole family with one handler while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EngineError(ReproError):
    """Base class for errors raised by the database engine substrate."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(EngineError):
    """Name resolution failed (unknown table, column, or parameter)."""


class PlanError(EngineError):
    """The optimizer could not produce a physical plan."""


class ExecutionError(EngineError):
    """A runtime failure during query execution."""


class TypeMismatchError(ExecutionError):
    """An operation was applied to values of incompatible SQL types."""


class ConstraintError(ExecutionError):
    """A uniqueness or not-null constraint was violated."""


class CatalogError(EngineError):
    """Invalid catalog operation (duplicate table, unknown index, ...)."""


class TransactionError(EngineError):
    """Illegal transaction state transition (commit without begin, ...)."""


class DeadlockError(TransactionError):
    """The transaction was chosen as a deadlock victim and rolled back."""


class QueryCancelledError(ExecutionError):
    """The query was cancelled (by a DBA or by an SQLCM ``Cancel`` action)."""


class LockTimeoutError(TransactionError):
    """A lock request exceeded the configured wait timeout."""


class SQLCMError(ReproError):
    """Base class for errors raised by the SQLCM monitoring framework."""


class SchemaError(SQLCMError):
    """A rule, LAT, or probe referenced an unknown class or attribute."""


class RuleError(SQLCMError):
    """A rule definition is malformed."""


class ConditionSyntaxError(RuleError):
    """The condition expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ActionError(SQLCMError):
    """An action is malformed or was applied to an unsupported object."""


class LATError(SQLCMError):
    """Invalid LAT definition or operation."""
