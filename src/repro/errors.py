"""Exception hierarchy for the repro package.

Every error raised by the engine or by SQLCM derives from :class:`ReproError`
so applications can catch the whole family with one handler while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class EngineError(ReproError):
    """Base class for errors raised by the database engine substrate."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(EngineError):
    """Name resolution failed (unknown table, column, or parameter)."""


class PlanError(EngineError):
    """The optimizer could not produce a physical plan."""


class ExecutionError(EngineError):
    """A runtime failure during query execution."""


class TypeMismatchError(ExecutionError):
    """An operation was applied to values of incompatible SQL types."""


class ConstraintError(ExecutionError):
    """A uniqueness or not-null constraint was violated."""


class CatalogError(EngineError):
    """Invalid catalog operation (duplicate table, unknown index, ...)."""


class TransactionError(EngineError):
    """Illegal transaction state transition (commit without begin, ...)."""


class DeadlockError(TransactionError):
    """The transaction was chosen as a deadlock victim and rolled back."""


class QueryCancelledError(ExecutionError):
    """The query was cancelled (by a DBA or by an SQLCM ``Cancel`` action)."""


class LockTimeoutError(TransactionError):
    """A lock request exceeded the configured wait timeout."""


class SQLCMError(ReproError):
    """Base class for errors raised by the SQLCM monitoring framework."""


class SchemaError(SQLCMError):
    """A rule, LAT, or probe referenced an unknown class or attribute."""


class RuleError(SQLCMError):
    """A rule definition is malformed."""


class ConditionSyntaxError(RuleError):
    """The condition expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ActionError(SQLCMError):
    """An action is malformed or was applied to an unsupported object."""


class LATError(SQLCMError):
    """Invalid LAT definition or operation."""


class StreamError(SQLCMError):
    """Invalid stream-query definition or operation."""


class StreamSyntaxError(StreamError):
    """The stream-query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class RuleQuarantinedError(RuleError):
    """The rule is quarantined by the fault-isolation layer.

    Raised when an operation (e.g. re-enabling) targets a rule that the
    circuit breaker has taken out of the evaluation path; call
    ``SQLCM.release_quarantine`` first to clear the quarantine explicitly.
    """


class ActionDeliveryError(ActionError):
    """A side-effecting action could not be delivered within its retry
    budget; the action has been recorded in the dead-letter journal.

    ``attempts`` is the number of delivery attempts made; the original
    failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class FaultInjected(SQLCMError):
    """A deterministic fault raised by the :class:`FaultInjector` harness.

    ``site`` names the injection point (``condition``, ``action``, ``sink``,
    ``lat.insert``, ``lat.evict``, ``lat.persist``, ``timer``,
    ``durability.checkpoint``, ``durability.append``); ``mode`` is the
    configured failure mode (``exception`` or ``partial``).
    """

    def __init__(self, site: str, mode: str = "exception"):
        super().__init__(f"injected fault at {site!r} (mode={mode})")
        self.site = site
        self.mode = mode


class IncidentError(SQLCMError):
    """Invalid incident lifecycle operation (unknown incident, bad
    transition like acking a resolved incident, malformed policy)."""


class ChaosError(SQLCMError):
    """Invalid chaos-drill configuration (unknown scenario name)."""


class PersistCorruptionError(SQLCMError):
    """A persisted LAT table failed checksum validation during restore.

    The restore is atomic: rows are decoded into a scratch LAT and swapped
    in only on success, so the in-memory LAT is left exactly as it was
    before the failed restore (no half-filled state).
    """


class DurabilityError(SQLCMError):
    """Invalid durability-layer operation or unrecoverable on-disk state
    (no valid checkpoint generation, checkpoint taken mid-dispatch,
    recovered digest mismatch in the crash harness)."""


class DriverError(ReproError):
    """Invalid probe-driver operation (unknown scheme, unsupported
    capability, unknown snapshot, backend connection failure)."""


class ServiceError(ReproError):
    """Base class for errors raised by the network service tier.

    Client-side instances carry the wire error ``code`` (see
    :mod:`repro.service.protocol`) and, for backpressure replies, the
    server's ``retry_after`` hint in virtual seconds.
    """

    def __init__(self, message: str, code: str = "internal_error",
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ProtocolError(ServiceError):
    """A malformed, oversized, or out-of-order wire frame."""

    def __init__(self, message: str):
        super().__init__(message, code="protocol_error")
