"""Stored procedures for the signature and outlier experiments.

Section 4.2 motivates transaction signatures with a procedure of the form
``IF Condition THEN A ELSE B``: different invocations take different code
paths with different performance.  ``register_order_procedures`` installs:

* ``get_order(@okey)`` — a simple parameterized point lookup (one template,
  one logical signature for all invocations).
* ``order_report(@okey, @detail)`` — the IF/ELSE procedure: ``@detail = 1``
  runs the expensive lineitem join path, else a cheap summary path; the two
  paths produce distinct transaction signatures.
* ``customer_orders(@ckey)`` — secondary-index lookup, used by auditing
  examples.
* ``slow_scan(@minprice)`` — a deliberately expensive scan; invoking it
  with a low price bound produces the outlier invocations Example 1 hunts.
"""

from __future__ import annotations

from repro.engine.catalog import IfStep, ProcedureDef


def register_order_procedures(server) -> list[str]:
    """Install the demo procedures; returns their names."""
    procs = [
        ProcedureDef(
            name="get_order",
            params=("okey",),
            body=[
                "SELECT o_totalprice, o_orderstatus FROM orders "
                "WHERE o_orderkey = @okey",
            ],
        ),
        ProcedureDef(
            name="order_report",
            params=("okey", "detail"),
            body=[
                "SELECT o_totalprice FROM orders WHERE o_orderkey = @okey",
                IfStep(
                    predicate=lambda params: params.get("detail", 0) == 1,
                    then_branch=[
                        "SELECT l.l_linenumber, l.l_extendedprice, "
                        "p.p_retailprice FROM lineitem l "
                        "JOIN part p ON l.l_partkey = p.p_partkey "
                        "WHERE l.l_orderkey = @okey",
                    ],
                    else_branch=[
                        "SELECT COUNT(*), SUM(l_extendedprice) "
                        "FROM lineitem WHERE l_orderkey = @okey",
                    ],
                ),
            ],
        ),
        ProcedureDef(
            name="customer_orders",
            params=("ckey",),
            body=[
                "SELECT o_orderkey, o_totalprice FROM orders "
                "WHERE o_custkey = @ckey",
            ],
        ),
        ProcedureDef(
            name="slow_scan",
            params=("minprice",),
            body=[
                "SELECT COUNT(*), AVG(l_extendedprice) FROM lineitem "
                "WHERE l_extendedprice > @minprice",
            ],
        ),
    ]
    for proc in procs:
        server.create_procedure(proc)
    return [p.name for p in procs]
