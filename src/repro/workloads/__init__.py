"""Workload generation: TPC-H-style schema/data plus the paper's query mixes.

The paper evaluates on the TPC-H schema with a 6M-row lineitem table; this
package generates a deterministic, scaled-down equivalent and reproduces
the workload *shapes* the experiments depend on: thousands of short
single-row selections interleaved with multi-row three-table joins
(Section 6.2), plus parameterized stored procedures with IF/ELSE code paths
and injected outliers for the signature experiments.
"""

from repro.workloads.generator import (WorkloadMix, mixed_paper_workload,
                                       short_select_workload)
from repro.workloads.procedures import register_order_procedures
from repro.workloads.tpch import TPCHConfig, create_tpch_schema, load_tpch
from repro.workloads.trace import TraceRecorder, replay, replay_script

__all__ = [
    "TPCHConfig",
    "create_tpch_schema",
    "load_tpch",
    "WorkloadMix",
    "mixed_paper_workload",
    "short_select_workload",
    "register_order_procedures",
    "TraceRecorder",
    "replay",
    "replay_script",
]
