"""Scaled-down TPC-H-like schema and deterministic data generation.

The paper's experiments run on the TPC-H schema with 6 million lineitem
rows; a laptop-scale reproduction keeps the same shape (lineitem ≫ orders ≫
part/customer, clustered keys, skewless uniform values) at a configurable
scale.  All randomness flows from one seeded numpy generator, so two loads
with the same config are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.catalog import ColumnDef, IndexDef, TableSchema
from repro.engine.types import SQLType

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
_STATUSES = ("F", "O", "P")


@dataclass(frozen=True)
class TPCHConfig:
    """Scale knobs. Defaults are 1/100 of the paper's data (6M → 60k)."""

    lineitem_rows: int = 60_000
    orders_rows: int = 15_000
    part_rows: int = 2_000
    customer_rows: int = 1_500
    lines_per_order_max: int = 7
    seed: int = 42

    def scaled(self, factor: float) -> "TPCHConfig":
        """A proportionally smaller/larger config (keeps the seed)."""
        return TPCHConfig(
            lineitem_rows=max(10, int(self.lineitem_rows * factor)),
            orders_rows=max(5, int(self.orders_rows * factor)),
            part_rows=max(5, int(self.part_rows * factor)),
            customer_rows=max(5, int(self.customer_rows * factor)),
            lines_per_order_max=self.lines_per_order_max,
            seed=self.seed,
        )


def create_tpch_schema(server) -> None:
    """Create the four tables and their indexes."""
    server.create_table(TableSchema("customer", [
        ColumnDef("c_custkey", SQLType.INTEGER, nullable=False),
        ColumnDef("c_name", SQLType.STRING),
        ColumnDef("c_mktsegment", SQLType.STRING),
        ColumnDef("c_acctbal", SQLType.FLOAT),
    ], primary_key=["c_custkey"]))

    server.create_table(TableSchema("orders", [
        ColumnDef("o_orderkey", SQLType.INTEGER, nullable=False),
        ColumnDef("o_custkey", SQLType.INTEGER),
        ColumnDef("o_orderstatus", SQLType.STRING),
        ColumnDef("o_totalprice", SQLType.FLOAT),
        ColumnDef("o_orderdate", SQLType.DATETIME),
    ], primary_key=["o_orderkey"]))
    server.create_index(IndexDef("ix_orders_custkey", "orders",
                                 ("o_custkey",)))

    server.create_table(TableSchema("part", [
        ColumnDef("p_partkey", SQLType.INTEGER, nullable=False),
        ColumnDef("p_name", SQLType.STRING),
        ColumnDef("p_retailprice", SQLType.FLOAT),
    ], primary_key=["p_partkey"]))

    server.create_table(TableSchema("lineitem", [
        ColumnDef("l_orderkey", SQLType.INTEGER, nullable=False),
        ColumnDef("l_linenumber", SQLType.INTEGER, nullable=False),
        ColumnDef("l_partkey", SQLType.INTEGER),
        ColumnDef("l_quantity", SQLType.FLOAT),
        ColumnDef("l_extendedprice", SQLType.FLOAT),
        ColumnDef("l_discount", SQLType.FLOAT),
        ColumnDef("l_shipdate", SQLType.DATETIME),
    ], primary_key=["l_orderkey", "l_linenumber"]))
    server.create_index(IndexDef("ix_lineitem_partkey", "lineitem",
                                 ("l_partkey",)))


def load_tpch(server, config: TPCHConfig | None = None) -> dict[str, int]:
    """Generate and bulk-load data; returns per-table row counts."""
    config = config or TPCHConfig()
    rng = np.random.default_rng(config.seed)

    customers = []
    for key in range(1, config.customer_rows + 1):
        customers.append([
            key,
            f"Customer#{key:09d}",
            _SEGMENTS[int(rng.integers(len(_SEGMENTS)))],
            float(np.round(rng.uniform(-999.99, 9999.99), 2)),
        ])
    server.bulk_load("customer", customers)

    orders = []
    for key in range(1, config.orders_rows + 1):
        orders.append([
            key,
            int(rng.integers(1, config.customer_rows + 1)),
            _STATUSES[int(rng.integers(len(_STATUSES)))],
            float(np.round(rng.uniform(850.0, 500_000.0), 2)),
            float(rng.uniform(0.0, 2.4e6)),  # order date as virtual seconds
        ])
    server.bulk_load("orders", orders)

    parts = []
    for key in range(1, config.part_rows + 1):
        parts.append([
            key,
            f"part {key} burnished steel",
            float(np.round(900.0 + (key % 1000) + key / 10.0, 2)),
        ])
    server.bulk_load("part", parts)

    lineitems = []
    order_key = 1
    line_number = 1
    for __ in range(config.lineitem_rows):
        lineitems.append([
            order_key,
            line_number,
            int(rng.integers(1, config.part_rows + 1)),
            float(rng.integers(1, 51)),
            float(np.round(rng.uniform(900.0, 105_000.0), 2)),
            float(np.round(rng.uniform(0.0, 0.10), 2)),
            float(rng.uniform(0.0, 2.4e6)),
        ])
        line_number += 1
        if line_number > config.lines_per_order_max or \
                rng.random() < 0.25:
            order_key = order_key % config.orders_rows + 1 \
                if order_key >= config.orders_rows else order_key + 1
            line_number = 1
    # ensure PK uniqueness even after the key wraps: deduplicate
    seen: set[tuple[int, int]] = set()
    unique_rows = []
    for row in lineitems:
        key = (row[0], row[1])
        while key in seen:
            row[1] += config.lines_per_order_max
            key = (row[0], row[1])
        seen.add(key)
        unique_rows.append(row)
    server.bulk_load("lineitem", unique_rows)

    return {
        "customer": len(customers),
        "orders": len(orders),
        "part": len(parts),
        "lineitem": len(unique_rows),
    }


def setup_tpch(server, config: TPCHConfig | None = None) -> dict[str, int]:
    """Create schema and load data in one call."""
    create_tpch_schema(server)
    return load_tpch(server, config)
