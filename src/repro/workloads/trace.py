"""Workload traces: record what ran, replay it later.

A DBA workflow the paper's monitoring enables: capture the statements a
production server executed (with their virtual timing), persist the trace,
and replay it — against a changed configuration, with different monitoring,
or after an engine fix — to compare behaviour on identical input.

The recorder subscribes to ``query.commit``/``query.rollback``/
``query.cancel``; the replayer regenerates a session script whose think
times reproduce the original statement start times.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.engine.session import Statement


@dataclass(frozen=True)
class TraceEntry:
    """One recorded statement."""

    start_time: float
    text: str
    params: dict = field(default_factory=dict)
    user: str = ""
    application: str = ""
    duration: float = 0.0
    outcome: str = "committed"  # committed | rolled_back | cancelled


class TraceRecorder:
    """Records completed statements from a live server."""

    _EVENTS = ("query.commit", "query.rollback", "query.cancel")

    def __init__(self, server, *, applications: set[str] | None = None):
        self.server = server
        self.applications = applications
        self.entries: list[TraceEntry] = []
        self._attached = False
        self.attach()

    def attach(self) -> None:
        if self._attached:
            return
        for event in self._EVENTS:
            self.server.events.subscribe(event, self._on_query_end)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        for event in self._EVENTS:
            self.server.events.unsubscribe(event, self._on_query_end)
        self._attached = False

    def _on_query_end(self, event: str, payload: dict) -> None:
        qctx = payload["query"]
        if qctx is None:
            return
        if self.applications is not None and \
                qctx.application not in self.applications:
            return
        outcome = {
            "query.commit": "committed",
            "query.rollback": "rolled_back",
            "query.cancel": "cancelled",
        }[event]
        self.entries.append(TraceEntry(
            start_time=qctx.start_time,
            text=qctx.text,
            params=dict(qctx.params),
            user=qctx.user,
            application=qctx.application,
            duration=qctx.duration_at(self.server.clock.now),
            outcome=outcome,
        ))

    # -- persistence ---------------------------------------------------------

    def dump(self) -> str:
        """Serialize the trace to JSON (parameters must be JSON-able)."""
        return json.dumps([asdict(e) for e in self.entries], indent=1)

    @staticmethod
    def load(text: str) -> list[TraceEntry]:
        return [TraceEntry(**record) for record in json.loads(text)]


def replay_script(entries: list[TraceEntry],
                  *, time_scale: float = 1.0) -> list[Statement]:
    """Build a session script reproducing the trace's statement starts.

    ``time_scale`` compresses (<1) or stretches (>1) the original pacing.
    Statements replay in original start order; each statement's think time
    is the gap to the previous statement's start (the replayed durations
    then emerge from the engine, which is the point of a replay).
    """
    ordered = sorted(entries, key=lambda e: e.start_time)
    script: list[Statement] = []
    previous_start = ordered[0].start_time if ordered else 0.0
    for entry in ordered:
        gap = max(0.0, (entry.start_time - previous_start) * time_scale)
        script.append(Statement(entry.text, dict(entry.params),
                                think_time=gap))
        previous_start = entry.start_time
    return script


def replay(server, entries: list[TraceEntry], *, user: str = "replay",
           application: str = "replay", time_scale: float = 1.0):
    """Submit the replay script on a fresh session; returns the session.

    Call ``server.run()`` (or ``scheduler.run_until_done``) afterwards.
    """
    session = server.create_session(user=user, application=application)
    session.submit_script(replay_script(entries, time_scale=time_scale))
    return session
