"""Workload mixes reproducing the paper's evaluation queries (Section 6.2).

The central mix: "20,000 short single-row selections from the lineitem and
orders table interleaved with 100 selections of 1000-2000 rows from a join
between lineitem, orders and parts", executed with identical constants in
identical order on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.session import Statement


@dataclass(frozen=True)
class WorkloadMix:
    """Parameters of the paper's mixed workload, scaled."""

    short_queries: int = 20_000
    join_queries: int = 100
    join_rows_low: int = 1_000
    join_rows_high: int = 2_000
    distinct_short_templates: int = 200
    think_time: float = 0.0
    seed: int = 7

    def scaled(self, factor: float) -> "WorkloadMix":
        return WorkloadMix(
            short_queries=max(1, int(self.short_queries * factor)),
            join_queries=max(1, int(self.join_queries * factor)),
            join_rows_low=self.join_rows_low,
            join_rows_high=self.join_rows_high,
            distinct_short_templates=self.distinct_short_templates,
            think_time=self.think_time,
            seed=self.seed,
        )


def short_select_workload(n: int, *, orders_rows: int, lineitem_keys,
                          distinct_templates: int = 200,
                          seed: int = 7,
                          think_time: float = 0.0) -> list[Statement]:
    """``n`` single-row clustered-index selects on lineitem and orders.

    Constants cycle through a fixed pool so the plan cache behaves as it
    would for a repeating application (the paper re-executes identical
    queries), while still touching many rows.
    """
    rng = np.random.default_rng(seed)
    lineitem_keys = list(lineitem_keys)
    pool: list[str] = []
    for i in range(distinct_templates):
        if i % 2 == 0 and lineitem_keys:
            okey, lineno = lineitem_keys[
                int(rng.integers(len(lineitem_keys)))]
            pool.append(
                "SELECT l_extendedprice, l_quantity FROM lineitem "
                f"WHERE l_orderkey = {okey} AND l_linenumber = {lineno}"
            )
        else:
            okey = int(rng.integers(1, orders_rows + 1))
            pool.append(
                "SELECT o_totalprice, o_orderstatus FROM orders "
                f"WHERE o_orderkey = {okey}"
            )
    statements = []
    for i in range(n):
        statements.append(Statement(pool[i % len(pool)],
                                    think_time=think_time))
    return statements


def join_query(order_low: int, order_high: int) -> str:
    """A 3-table join selecting all lineitems of an order-key range."""
    return (
        "SELECT l.l_orderkey, l.l_extendedprice, o.o_totalprice, "
        "p.p_retailprice "
        "FROM lineitem l "
        "JOIN orders o ON l.l_orderkey = o.o_orderkey "
        "JOIN part p ON l.l_partkey = p.p_partkey "
        f"WHERE l.l_orderkey BETWEEN {order_low} AND {order_high}"
    )


def mixed_paper_workload(mix: WorkloadMix, *, orders_rows: int,
                         lineitem_rows: int, lineitem_keys
                         ) -> list[Statement]:
    """The Section 6.2.2 mix: short selects interleaved with range joins.

    Join ranges are sized so each join returns roughly ``join_rows_low`` to
    ``join_rows_high`` lineitem rows (the paper's 1000-2000).
    """
    rng = np.random.default_rng(mix.seed)
    statements = short_select_workload(
        mix.short_queries,
        orders_rows=orders_rows,
        lineitem_keys=lineitem_keys,
        distinct_templates=mix.distinct_short_templates,
        seed=mix.seed,
        think_time=mix.think_time,
    )
    if mix.join_queries <= 0:
        return statements
    lines_per_order = max(1.0, lineitem_rows / max(1, orders_rows))
    interval = max(1, len(statements) // mix.join_queries)
    position = interval - 1
    for __ in range(mix.join_queries):
        target_rows = int(rng.integers(mix.join_rows_low,
                                       mix.join_rows_high + 1))
        span = max(1, int(target_rows / lines_per_order))
        low = int(rng.integers(1, max(2, orders_rows - span)))
        stmt = Statement(join_query(low, low + span - 1),
                         think_time=mix.think_time)
        statements.insert(min(position, len(statements)), stmt)
        position += interval + 1
    return statements


def lineitem_key_sample(server, sample_size: int = 500,
                        seed: int = 11) -> list[tuple[int, int]]:
    """A deterministic sample of (l_orderkey, l_linenumber) PK values."""
    table = server.table("lineitem")
    rowids = table.rowids()
    if not rowids:
        return []
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(rowids), size=min(sample_size, len(rowids)),
                        replace=False)
    keys = []
    for index in sorted(int(i) for i in chosen):
        row = table.get(rowids[index])
        keys.append((row[0], row[1]))
    return keys
