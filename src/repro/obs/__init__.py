"""Self-observability: attributed cost accounting, trace spans, metrics.

The monitoring framework instruments the *server*; this package instruments
the *monitor*.  Three pieces, composed by :class:`Observability`:

* :mod:`repro.obs.attribution` — a cost-context stack so every charge to
  the monitor-cost pool is tallied per rule / LAT / stream query / engine
  site, with a conservation invariant (component sums == pool total).
* :mod:`repro.obs.tracing` — begin/end spans on the virtual clock in a
  bounded ring buffer, exportable as Chrome-trace JSON.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  (p50/p95/max) behind a snapshot API.

Enable per server::

    obs = server.enable_observability()
    ... run workload ...
    obs.attribution.top()         # TOP OFFENDERS
    obs.metrics.snapshot()        # counters / gauges / histograms
    obs.trace.export_json(fp)     # chrome://tracing / Perfetto
"""

from repro.obs.attribution import KINDS, UNATTRIBUTED, CostAttribution
from repro.obs.metrics import (Counter, Gauge, Histogram, LATENCY_BOUNDS,
                               MetricsRegistry)
from repro.obs.observability import NULL_OBS, Observability
from repro.obs.tracing import Span, TraceRecorder

__all__ = [
    "Observability",
    "NULL_OBS",
    "CostAttribution",
    "KINDS",
    "UNATTRIBUTED",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "TraceRecorder",
    "Span",
]
