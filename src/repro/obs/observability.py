"""The observability facade: attribution + tracing + metrics behind one flag.

One :class:`Observability` instance per server, installed with
:meth:`~repro.engine.server.DatabaseServer.enable_observability`.  Hot-path
call sites never branch on whether observability is on: they always go
through ``server.obs`` and get either the live instance or the shared
:data:`NULL_OBS` null object, whose context managers are no-ops and which
never charges the monitor-cost pool — disabled observability is free both
in Python terms (a couple of attribute loads) and in virtual time (zero
pool cost, asserted in tests).

When enabled, the layer *charges for itself* — pushing an attribution
context, recording a span, and updating a metric each cost a calibrated
sliver of virtual time (``obs_attrib`` / ``obs_span`` / ``obs_metric`` in
the cost model) so the overhead benchmarks measure the instrumented
instrument honestly.  Those self-charges flow through the normal
``add_monitor_cost`` path and are themselves attributed to the innermost
open context, so the conservation invariant covers them too.
"""

from __future__ import annotations

from typing import Any

from repro.obs.attribution import KINDS, CostAttribution
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span, TraceRecorder


class _AttribContext:
    """Context manager pushing one attribution frame."""

    __slots__ = ("_attribution",)

    def __init__(self, attribution: CostAttribution, kind: str, name: str):
        self._attribution = attribution
        attribution.push(kind, name)

    def __enter__(self) -> "_AttribContext":
        return self

    def __exit__(self, *exc) -> None:
        self._attribution.pop()


class _SpanContext:
    """Context manager recording one trace span.

    The virtual clock does not advance inside monitoring code (its cost is
    pooled and drained by sessions later), so wall-duration alone would
    read as zero for most spans; each span therefore also captures the
    monitor-cost delta accrued while it was open as a ``cost_us`` arg.
    """

    __slots__ = ("_trace", "_span", "_server", "_cost0")

    def __init__(self, trace: TraceRecorder, span: Span, server):
        self._trace = trace
        self._span = span
        self._server = server
        self._cost0 = server.monitor_cost_total

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        delta = self._server.monitor_cost_total - self._cost0
        span = self._span
        if span.args is None:
            span.args = {}
        span.args["cost_us"] = round(delta * 1e6, 6)
        self._trace.end(span)


class _NullContext:
    """Shared no-op context manager for disabled observability."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Observability:
    """Attribution, tracing, and metrics for one server."""

    enabled = True

    def __init__(self, server, trace_capacity: int = 4096):
        self._server = server
        self._costs = server.costs
        self.attribution = CostAttribution()
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(server.clock, trace_capacity)
        self.tracing_enabled = True

    # -- accounting (called from DatabaseServer.add_monitor_cost) ----------

    def account(self, seconds: float) -> None:
        self.attribution.account(seconds)

    # -- attribution contexts ----------------------------------------------

    def attrib(self, kind: str, name: str) -> _AttribContext:
        """Open one attribution frame; charges cost to the *enclosing*
        frame (the push itself is the parent's overhead, not the child's)."""
        if kind not in KINDS:
            raise ValueError(
                f"unknown attribution kind {kind!r}; expected one of {KINDS}")
        self._server.add_monitor_cost(self._costs.obs_attrib)
        return _AttribContext(self.attribution, kind, name)

    # -- spans --------------------------------------------------------------

    def span(self, name: str, category: str = "sqlcm",
             **args: Any) -> "_SpanContext | _NullContext":
        if not self.tracing_enabled:
            return _NULL_CONTEXT
        self._server.add_monitor_cost(self._costs.obs_span)
        return _SpanContext(self.trace,
                            self.trace.begin(name, category, args or None),
                            self._server)

    # -- metric helpers (each charges one obs_metric) -----------------------

    def count(self, name: str, n: int = 1) -> None:
        self._server.add_monitor_cost(self._costs.obs_metric)
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        self._server.add_monitor_cost(self._costs.obs_metric)
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self._server.add_monitor_cost(self._costs.obs_metric)
        self.metrics.histogram(name).observe(value)

    def histogram(self, name: str, bounds=None) -> Histogram:
        return self.metrics.histogram(name, bounds)

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Everything at once: metrics, attribution, trace statistics."""
        return {
            "metrics": self.metrics.snapshot(),
            "attribution": self.attribution.snapshot(),
            "trace": {
                "retained": len(self.trace),
                "completed": self.trace.completed,
                "dropped": self.trace.dropped,
                "capacity": self.trace.capacity,
            },
        }


class _NullObservability:
    """Null object returned by ``server.obs`` when observability is off.

    Every context manager is the shared no-op, every metric helper returns
    immediately, and nothing ever touches the monitor-cost pool.
    """

    enabled = False
    tracing_enabled = False

    __slots__ = ()

    def account(self, seconds: float) -> None:
        return None

    def attrib(self, kind: str, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str, category: str = "sqlcm",
             **args: Any) -> _NullContext:
        return _NULL_CONTEXT

    def count(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


#: the shared disabled instance — identity-comparable, never charges
NULL_OBS = _NullObservability()
