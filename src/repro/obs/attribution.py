"""Attributed cost accounting: who is spending the monitor-cost pool.

The paper's evaluation (Section 6.2) measures *total* monitoring overhead;
this module splits that total by component so a DBA (or a benchmark) can
see which rule, LAT, or stream query is responsible.  The engine pushes an
attribution context — ``("rule", name)``, ``("lat", name)``,
``("stream", name)``, or ``("engine", site)`` — around each unit of
monitoring work; every charge to the server's monitor-cost pool is then
tallied against the innermost open context in addition to the pool itself.

Conservation invariant: the per-component sums always add up to the pool
total accumulated while attribution was active (charges with no open
context land in the ``("engine", "unattributed")`` bucket rather than
disappearing).  The invariant is exact up to float associativity — the
per-component accumulators and the pool accumulator add the same charges
in different groupings — and the test suite asserts it to 1e-9 relative
tolerance over a full TPC-H-style workload.
"""

from __future__ import annotations

from typing import Iterable

#: valid attribution kinds, in report order
KINDS = ("rule", "lat", "stream", "governor", "engine")

#: bucket for charges arriving with no open attribution context
UNATTRIBUTED = ("engine", "unattributed")


class CostAttribution:
    """Per-component tallies over a stack of attribution contexts."""

    __slots__ = ("_stack", "totals", "charges", "total", "pushes")

    def __init__(self):
        self._stack: list[tuple[str, str]] = []
        #: (kind, lowercase name) -> accumulated virtual seconds
        self.totals: dict[tuple[str, str], float] = {}
        #: (kind, lowercase name) -> number of individual charges
        self.charges: dict[tuple[str, str], int] = {}
        #: running pool total while attribution was active
        self.total = 0.0
        self.pushes = 0

    # -- context stack --------------------------------------------------------

    def push(self, kind: str, name: str) -> None:
        self._stack.append((kind, name.lower()))
        self.pushes += 1

    def pop(self) -> None:
        self._stack.pop()

    @property
    def current(self) -> tuple[str, str] | None:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- accounting -----------------------------------------------------------

    def account(self, seconds: float) -> None:
        """Tally one pool charge against the innermost open context."""
        key = self._stack[-1] if self._stack else UNATTRIBUTED
        self.totals[key] = self.totals.get(key, 0.0) + seconds
        self.charges[key] = self.charges.get(key, 0) + 1
        self.total += seconds

    def merge_from(self, other: "CostAttribution") -> None:
        """Fold another attribution's tallies into this one.

        The shard merge boundary (see repro.shard): per-shard attributions
        each satisfy the conservation invariant locally, and summation
        preserves it — the merged per-component sums equal the merged pool
        total up to float associativity."""
        for key, cost in other.totals.items():
            self.totals[key] = self.totals.get(key, 0.0) + cost
        for key, count in other.charges.items():
            self.charges[key] = self.charges.get(key, 0) + count
        self.total += other.total
        self.pushes += other.pushes

    # -- read side ------------------------------------------------------------

    def attributed_total(self) -> float:
        """Sum of all per-component tallies (== :attr:`total` up to float
        associativity; the conservation invariant)."""
        import math
        return math.fsum(self.totals.values())

    def by_kind(self) -> dict[str, float]:
        """Cost per attribution kind (rule / lat / stream / engine)."""
        out: dict[str, float] = {}
        for (kind, __), cost in self.totals.items():
            out[kind] = out.get(kind, 0.0) + cost
        return out

    def components(self, kind: str | None = None
                   ) -> list[tuple[str, str, float, int]]:
        """``(kind, name, cost, charges)`` rows, most expensive first."""
        rows = [
            (k, name, cost, self.charges.get((k, name), 0))
            for (k, name), cost in self.totals.items()
            if kind is None or k == kind
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows

    def top(self, limit: int = 10,
            kinds: Iterable[str] = ("rule", "lat", "stream")
            ) -> list[tuple[str, str, float, int]]:
        """The most expensive monitored components (the TOP OFFENDERS)."""
        wanted = set(kinds)
        return [row for row in self.components() if row[0] in wanted][:limit]

    def snapshot(self) -> dict:
        return {
            "total": self.total,
            "attributed": self.attributed_total(),
            "by_kind": self.by_kind(),
            "components": {
                f"{kind}:{name}": cost
                for kind, name, cost, __ in self.components()
            },
        }
