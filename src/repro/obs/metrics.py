"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is the snapshot surface behind the CLI's ``.metrics`` command
and the observability section of the DBA report.  Histograms use fixed
bucket boundaries (Prometheus-style ``le`` semantics: an observation lands
in the first bucket whose upper bound is >= the value) so that p50/p95 are
O(#buckets) to compute and the memory footprint is constant regardless of
how many observations arrive.  ``max``/``min``/``sum``/``count`` are exact.
"""

from __future__ import annotations

from typing import Any, Iterable


def _latency_bounds() -> tuple[float, ...]:
    """Default log-spaced bounds, 1ns .. 1s (virtual): 1/2.5/5 per decade."""
    bounds: list[float] = []
    for exponent in range(-9, 1):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0 ** exponent)
    return tuple(bounds)


#: default bucket boundaries for virtual-latency histograms
LATENCY_BOUNDS = _latency_bounds()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with ``le`` (less-or-equal) bucket semantics.

    ``bounds`` must be strictly increasing; an implicit overflow bucket
    catches observations above the last bound.  Quantiles interpolate
    linearly inside the winning bucket and are clamped to the exact
    observed ``min``/``max``, so ``quantile(1.0) == max`` always holds.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Iterable[float] | None = None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else LATENCY_BOUNDS
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    def observe(self, value: float) -> None:
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def _bucket_index(self, value: float) -> int:
        # bisect_left over upper bounds gives the first bound >= value
        import bisect
        return bisect.bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) estimated from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.bounds):
                    upper = self.bounds[index]
                    lower = self.bounds[index - 1] if index else 0.0
                else:  # overflow bucket: clamp to the observed max
                    return self.vmax
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, fraction)
                # never report outside the observed range
                return min(max(estimate, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - cumulative covers count

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.vmax if self.vmax is not None else 0.0,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  bounds: Iterable[float] | None = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> dict[str, Any]:
        """Flat, JSON-friendly view of every registered metric."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }
