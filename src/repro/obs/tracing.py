"""Trace spans on the virtual clock, exportable as Chrome-trace JSON.

Spans are begin/end intervals around monitoring hot-path units — event
dispatch, rule evaluation, LAT inserts, persist/restore, stream window
flushes.  Timestamps come from the simulation clock (the quantity the
paper measures), completed spans land in a bounded ring buffer (old spans
fall off; tracing never grows without bound), and the whole layer is a
no-op when observability is disabled.

Export format is the Chrome trace-event JSON (``chrome://tracing`` /
Perfetto): complete events (``"ph": "X"``) with microsecond timestamps.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any


class Span:
    """One completed (or still-open) trace span."""

    __slots__ = ("name", "category", "start", "end", "args")

    def __init__(self, name: str, category: str, start: float,
                 args: dict[str, Any] | None = None):
        self.name = name
        self.category = category
        self.start = start
        self.end: float | None = None
        self.args = args

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def chrome_event(self) -> dict[str, Any]:
        event = {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start * 1e6,      # virtual seconds -> microseconds
            "dur": self.duration * 1e6,
            "pid": 1,
            "tid": 1,
        }
        if self.args:
            event["args"] = dict(self.args)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, cat={self.category!r}, "
                f"start={self.start:.6f}, dur={self.duration:.2e})")


class TraceRecorder:
    """Bounded ring buffer of completed spans on the virtual clock."""

    def __init__(self, clock, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        self._clock = clock
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.started = 0
        self.completed = 0

    def begin(self, name: str, category: str,
              args: dict[str, Any] | None = None) -> Span:
        self.started += 1
        return Span(name, category, self._clock.now, args)

    def end(self, span: Span) -> Span:
        span.end = self._clock.now
        self._ring.append(span)
        self.completed += 1
        return span

    @property
    def dropped(self) -> int:
        """Completed spans that fell off the ring."""
        return self.completed - len(self._ring)

    def spans(self, limit: int | None = None) -> list[Span]:
        """Most recent completed spans, oldest first."""
        spans = list(self._ring)
        return spans if limit is None else spans[-limit:]

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # -- export ---------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The retained spans as a Chrome trace-event document."""
        return {
            "traceEvents": [span.chrome_event() for span in self._ring],
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "sqlcm-virtual",
                "spans_completed": self.completed,
                "spans_dropped": self.dropped,
            },
        }

    def export_json(self, fp: IO[str] | None = None) -> str:
        """Serialize to Chrome-trace JSON; writes to ``fp`` when given."""
        text = json.dumps(self.chrome_trace(), indent=1)
        if fp is not None:
            fp.write(text)
        return text
