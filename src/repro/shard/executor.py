"""Shard executors: run per-shard work serially or on a thread pool.

An executor receives one zero-argument callable per shard and runs them
all, returning results in shard order.  Correctness never depends on the
executor: each callable touches only its own shard's state (LAT
partitions, window panes, attribution, clock view), so any interleaving
produces the same merged result — the determinism tests run the same
trace through both executors and compare digests.

The thread executor exists for wall-clock overlap where the workload
allows it (the GIL serializes pure-Python bytecode, so wall speedup is
modest); the *virtual-time* scaling reported by ``bench_p1_shards`` is
makespan-based — max over shards of accumulated monitoring cost — and is
executor-independent by construction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence


class SerialShardExecutor:
    """Run shard tasks one after another, in shard order."""

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list:
        return [task() for task in tasks]


class ThreadShardExecutor:
    """Run shard tasks on a bounded thread pool.

    Results come back in shard order regardless of completion order.
    A fresh pool per ``run`` keeps the executor stateless and safe to
    share between runs.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list:
        if not tasks:
            return []
        workers = self.max_workers or len(tasks)
        with ThreadPoolExecutor(max_workers=min(workers,
                                                len(tasks))) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]
