"""The sharded dispatch tier: N shard-local monitors behind one facade.

:class:`ShardedSQLCM` partitions the event stream across ``n_shards``
worker shards (see :mod:`repro.shard.partition`).  Each shard owns a full
shard-local :class:`~repro.core.engine.SQLCM` — its own LAT partitions,
stream panes, rule clones, timers, and fault-isolation state — built
against a :class:`ShardServer` proxy so the per-event dispatch path is a
pure function of (shard-local state, event): no shard ever writes another
shard's state, which is what makes the executor choice irrelevant to the
result.  Shard state merges at the report boundary exactly the way window
panes merge — via the aggregate functions' mergeable ``combine`` states
(``LAT.merge_from`` / ``WindowState.merge_from``).

Two modes:

* **live** (``subscribe=True``): the facade subscribes to the server's
  bus once and routes each event synchronously to its shard.  Monitoring
  costs forward to the real server pool (sessions drain them into
  virtual time as usual) with per-shard totals tallied alongside; one
  overload-governor ladder observes the pooled cost and its admission
  decisions apply inside every shard.
* **replay** (``subscribe=False``): a harness over a recorded
  :class:`~repro.shard.partition.EventTrace`.  Each shard processes its
  partition of the trace with a shard-local clock view pinned to each
  event's recorded time, accumulating costs and attribution entirely
  shard-locally — so partitions can run on a thread pool
  (:class:`~repro.shard.executor.ThreadShardExecutor`) without touching
  shared state.  The virtual makespan (max per-shard cost) is the
  sharded tier's cost model: events/makespan is the throughput the
  P1 bench reports.

Determinism proof: :meth:`state_digest` builds the same canonical tuple
as :meth:`SQLCM._digest_parts` from *merged* shard state, so a sharded
run on any shard count — under any executor — must digest-equal the
serial run on the same trace whenever the monitored group keys align
with the partition key.  See DESIGN.md section 12.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

from repro.core.engine import SQLCM
from repro.core.governor import GovernorPolicy, OverloadGovernor
from repro.core.lat import LAT, LATDefinition
from repro.core.rules import Rule
from repro.core.schema import SCHEMA, SQLCMSchema
from repro.engine.events import EventBus
from repro.errors import LATError, RuleError, StreamError
from repro.obs.attribution import CostAttribution
from repro.shard.executor import SerialShardExecutor
from repro.shard.partition import EventTrace, Partitioner
from repro.stream.windows import WindowState


class ShardClock:
    """A shard's view of the virtual clock.

    Live mode reads through to the real clock; replay pins ``now`` to the
    recorded time of the event being processed, so per-shard progress is
    independent of every other shard's position in its own partition.
    """

    __slots__ = ("_base", "_override")

    def __init__(self, base):
        self._base = base
        self._override: float | None = None

    @property
    def now(self) -> float:
        override = self._override
        return self._base.now if override is None else override

    def pin(self, t: float) -> None:
        self._override = t

    def unpin(self) -> None:
        self._override = None


class ShardObs:
    """Replay-mode observability facade: shard-local attribution only.

    ``enabled`` stays False so the dispatch hot path skips span/metric
    branches, but attribution frames still open — every charge the shard
    makes is tallied against the innermost frame of the *shard's own*
    :class:`CostAttribution`, which therefore satisfies the conservation
    invariant locally (and after merging, globally).
    """

    enabled = False
    tracing_enabled = False

    __slots__ = ("attribution",)

    class _Frame:
        __slots__ = ("_attribution",)

        def __init__(self, attribution, kind, name):
            self._attribution = attribution
            attribution.push(kind, name)

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            self._attribution.pop()

    class _Null:
        __slots__ = ()

        def __enter__(self):
            return None

        def __exit__(self, *exc):
            return None

    _NULL = _Null()

    def __init__(self):
        self.attribution = CostAttribution()

    def account(self, seconds: float) -> None:
        self.attribution.account(seconds)

    def attrib(self, kind: str, name: str) -> "_Frame":
        return self._Frame(self.attribution, kind, name)

    def span(self, name: str, category: str = "sqlcm", **args: Any):
        return self._NULL

    def count(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


class ShardServer:
    """Per-shard server proxy: shard-local clock, costs, obs, and bus.

    Reads of engine state (tables, catalog, locks, sessions) forward to
    the real server; everything a shard *writes* during dispatch is
    shard-local or — in live mode — an explicitly forwarded cost charge.
    The shard-local event bus keeps monitor-raised events (stream alerts)
    inside the raising shard, preserving the in-shard cascade ordering
    that makes per-shard work executor-independent.
    """

    def __init__(self, server, shard_id: int, live: bool):
        self._real = server
        self.shard_id = shard_id
        self.live = live
        self.clock = ShardClock(server.clock)
        self.costs = server.costs
        self.events = EventBus()
        self.cost_total = 0.0
        self._pending = 0.0
        self._shard_obs = ShardObs()

    @property
    def obs(self):
        # live shards share the real facade (global attribution, spans,
        # metrics all behave exactly as in a serial deployment); replay
        # shards tally attribution locally so threads never share state
        return self._real.obs if self.live else self._shard_obs

    @property
    def shard_attribution(self) -> CostAttribution:
        return self._shard_obs.attribution

    def add_monitor_cost(self, seconds: float) -> None:
        self.cost_total += seconds
        if self.live:
            self._real.add_monitor_cost(seconds)
        else:
            self._pending += seconds
            self._shard_obs.account(seconds)

    @property
    def monitor_cost_total(self) -> float:
        return self._real.monitor_cost_total if self.live else self.cost_total

    def take_monitor_cost(self) -> float:
        if self.live:
            return self._real.take_monitor_cost()
        cost = self._pending
        self._pending = 0.0
        return cost

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class ShardState:
    """One worker shard: proxy + shard-local SQLCM + its trace partition."""

    def __init__(self, shard_id: int, server, schema: SQLCMSchema,
                 live: bool):
        self.shard_id = shard_id
        self.proxy = ShardServer(server, shard_id, live)
        self.sqlcm = SQLCM(self.proxy, schema=schema, subscribe=False)
        # monitor-raised meta-events stay in-shard: the stream engine
        # publishes alerts on the shard-local bus, and the shard's own
        # rule engine consumes them there
        self.proxy.events.subscribe("sqlcm.stream_alert", self.deliver)
        self.events_routed = 0

    def deliver(self, event: str, payload: dict) -> None:
        """Process one event entirely within this shard."""
        self.events_routed += 1
        if event == "query.compile":
            self.sqlcm._on_compile(event, payload)
        else:
            self.sqlcm._on_engine_event(event, payload)
        streams = self.sqlcm._streams
        if streams is not None:
            streams.deliver(event, payload)

    def replay(self, partition: list, end_time: float) -> float:
        """Replay this shard's trace partition; returns the cost total."""
        clock = self.proxy.clock
        for event, payload, t in partition:
            clock.pin(t)
            self.deliver(event, payload)
        clock.pin(end_time)
        # the replay ends at the report boundary: emit every window
        # boundary due by then, exactly as the serial engine's lazy
        # flush would have on its next event
        streams = self.sqlcm._streams
        if streams is not None:
            streams.flush(end_time)
        return self.proxy.cost_total


class ShardedSQLCM:
    """Facade over N shard-local monitors with merge-at-report semantics.

    Control-plane operations (``create_lat`` / ``add_rule`` /
    ``register_stream`` / ``remove_rule``) fan out to every shard; the
    data plane routes each event to exactly one shard.  Reporting reads
    merge shard state on demand — nothing is merged on the hot path.
    """

    def __init__(self, server, n_shards: int = 4,
                 schema: SQLCMSchema | None = None,
                 partitioner: Partitioner | None = None,
                 query_key: str = "query",
                 subscribe: bool = True,
                 governor: GovernorPolicy | None = None):
        if partitioner is not None and partitioner.n_shards != n_shards:
            raise ValueError(
                f"partitioner covers {partitioner.n_shards} shards, "
                f"facade was asked for {n_shards}")
        self.server = server
        self.schema = schema or SCHEMA
        self.n_shards = n_shards
        self.partitioner = partitioner or Partitioner(n_shards, query_key)
        self.live = subscribe
        self.shards = [
            ShardState(i, server, self.schema, live=subscribe)
            for i in range(n_shards)
        ]
        self.rules: dict[str, Rule] = {}  # templates, unbound
        self._lat_definitions: dict[str, LATDefinition] = {}
        self.governor: OverloadGovernor | None = None
        self.events_routed = 0
        if subscribe:
            for event in SQLCM.SUBSCRIBED_EVENTS:
                server.events.subscribe(event, self._on_engine_event)
            server.events.subscribe("query.compile", self._on_compile)
        if governor is not None:
            self.enable_governor(governor)

    # ------------------------------------------------------------------
    # control plane: fan registrations out to every shard
    # ------------------------------------------------------------------

    def create_lat(self, definition: LATDefinition,
                   structure: type[LAT] = LAT) -> list[LAT]:
        """Create one LAT partition per shard; returns the partitions."""
        created = [shard.sqlcm.create_lat(definition, structure)
                   for shard in self.shards]
        self._lat_definitions[definition.name.lower()] = definition
        return created

    def drop_lat(self, name: str) -> None:
        for shard in self.shards:
            shard.sqlcm.drop_lat(name)
        self._lat_definitions.pop(name.lower(), None)

    def add_rule(self, rule: Rule) -> Rule:
        """Register a rule on every shard (each shard binds its own clone).

        The passed rule stays unbound as the template; per-shard clones
        carry the statistics, merged by :meth:`rule_stats`."""
        key = rule.name.lower()
        if key in self.rules:
            raise RuleError(f"rule {rule.name!r} already exists")
        for shard in self.shards:
            shard.sqlcm.add_rule(rule.clone())
        self.rules[key] = rule
        return rule

    def remove_rule(self, name: str) -> None:
        for shard in self.shards:
            shard.sqlcm.remove_rule(name)
        self.rules.pop(name.lower(), None)

    def enable_rule(self, name: str, enabled: bool = True) -> None:
        for shard in self.shards:
            shard.sqlcm.enable_rule(name, enabled)

    def register_stream(self, text: str, **kwargs):
        """Register a continuous stream query on every shard."""
        return [shard.sqlcm.stream_engine().register(text, **kwargs)
                for shard in self.shards]

    def remove_stream(self, name: str) -> None:
        for shard in self.shards:
            if shard.sqlcm._streams is not None:
                shard.sqlcm._streams.remove(name)

    # governor delegation surface: one ladder reads control-shard
    # component registries but the *real* server's pooled cost signal
    @property
    def _rule_order(self):
        return self.shards[0].sqlcm._rule_order

    @property
    def _streams(self):
        return self.shards[0].sqlcm._streams

    def has_lat(self, name: str) -> bool:
        return self.shards[0].sqlcm.has_lat(name)

    def lat(self, name: str) -> LAT:
        return self.shards[0].sqlcm.lat(name)

    def lats(self) -> list[LAT]:
        return self.shards[0].sqlcm.lats()

    @property
    def signatures_needed(self) -> bool:
        return self.shards[0].sqlcm.signatures_needed

    def enable_governor(self, policy: GovernorPolicy | None = None
                        ) -> OverloadGovernor:
        """One ladder for all shards, fed by per-shard cost observation.

        Every shard's charges forward into the real server's pool (live
        mode), the governor observes that pooled signal on each drain,
        and its admission decisions apply inside every shard's dispatch —
        per-shard load feeds one closed loop, not N independent ones.
        """
        if self.governor is None:
            self.server.enable_observability()
            self.governor = OverloadGovernor(self, policy)
            self.server.attach_governor(self.governor)
            for shard in self.shards:
                shard.sqlcm.governor = self.governor
        return self.governor

    def disable_governor(self) -> None:
        governor = self.governor
        if governor is not None:
            governor.reset()
            self.server.detach_governor()
            self.governor = None
            for shard in self.shards:
                shard.sqlcm.governor = None
                shard.sqlcm.sample_weight = 1

    # ------------------------------------------------------------------
    # data plane: route each event to its shard
    # ------------------------------------------------------------------

    def _on_engine_event(self, event: str, payload: dict) -> None:
        self._route(event, payload)

    def _on_compile(self, event: str, payload: dict) -> None:
        # signature fill happens exactly once, on the control shard,
        # before routing: the plan-cache entry is shared server state
        self.shards[0].sqlcm._fill_signatures(payload)
        self._route(event, payload)

    def _route(self, event: str, payload: dict) -> None:
        self.events_routed += 1
        shard = self.shards[self.partitioner.shard_of(event, payload)]
        shard.deliver(event, payload)

    # ------------------------------------------------------------------
    # replay: partition a recorded trace, run shards independently
    # ------------------------------------------------------------------

    def run_trace(self, trace: "EventTrace | Iterable",
                  executor=None) -> dict:
        """Replay a recorded trace through the shards.

        Returns ``{"events", "makespan", "shard_costs", "end_time"}``
        where ``makespan`` is the max per-shard accumulated virtual
        monitoring cost — the sharded tier's virtual completion time.
        """
        if self.live:
            raise RuntimeError(
                "run_trace needs a replay harness; construct "
                "ShardedSQLCM with subscribe=False")
        events = list(trace.events if isinstance(trace, EventTrace)
                      else trace)
        end_time = events[-1][2] if events else 0.0
        # signature prefill (control plane, serial): plan-cache entries
        # are shared across shards and must not be filled concurrently
        if self.signatures_needed:
            for event, payload, __ in events:
                if event == "query.compile":
                    self.shards[0].sqlcm._fill_signatures(payload)
        partitions: list[list] = [[] for __ in self.shards]
        for record in events:
            partitions[self.partitioner.shard_of(record[0],
                                                 record[1])].append(record)
        runner = executor or SerialShardExecutor()
        costs = runner.run([
            (lambda s=shard, p=partition: s.replay(p, end_time))
            for shard, partition in zip(self.shards, partitions)
        ])
        self.events_routed += len(events)
        return {
            "events": len(events),
            "makespan": max(costs) if costs else 0.0,
            "shard_costs": list(costs),
            "shard_events": [len(p) for p in partitions],
            "end_time": end_time,
        }

    def flush_streams(self, now: float | None = None) -> None:
        """Emit every due window boundary on every shard (report prep)."""
        for shard in self.shards:
            streams = shard.sqlcm._streams
            if streams is not None:
                if now is not None and not self.live:
                    shard.proxy.clock.pin(now)
                streams.flush(now)

    # ------------------------------------------------------------------
    # merge boundary: report-time reads over merged shard state
    # ------------------------------------------------------------------

    def merged_lat(self, name: str) -> LAT:
        """A fresh LAT holding the merge of every shard's partition.

        Size limits are enforced during the merge (the merge boundary is
        where a partitioned LAT's global limit is meaningful); the merged
        LAT reads the real server clock for aging results.
        """
        definition = self._lat_definitions.get(name.lower())
        if definition is None:
            raise LATError(f"unknown LAT {name!r}")
        merged = LAT(definition, self.server.clock)
        for shard in self.shards:
            merged.merge_from(shard.sqlcm.lat(name))
        return merged

    def merged_lat_rows(self, name: str) -> list[dict]:
        return self.merged_lat(name).rows()

    def merged_window(self, stream_name: str) -> WindowState:
        """The merge of every shard's pane state for one stream query."""
        first = None
        merged: WindowState | None = None
        for shard in self.shards:
            streams = shard.sqlcm._streams
            if streams is None:
                raise StreamError(f"unknown stream query {stream_name!r}")
            query = streams.query(stream_name)
            if merged is None:
                first = query
                merged = WindowState(query.spec.window, query.window.funcs)
            merged.merge_from(query.window)
        assert merged is not None and first is not None
        return merged

    def merged_attribution(self) -> CostAttribution:
        """Per-shard attributions folded together (replay mode).

        Each shard's attribution satisfies the conservation invariant
        locally; the fold preserves it, so the merged per-component sums
        equal the merged pool total up to float associativity."""
        merged = CostAttribution()
        for shard in self.shards:
            merged.merge_from(shard.proxy.shard_attribution)
        return merged

    def shard_costs(self) -> list[float]:
        return [shard.proxy.cost_total for shard in self.shards]

    def rule_stats(self, name: str) -> tuple[int, int]:
        """Merged ``(fire_count, evaluation_count)`` across shards."""
        fires = evals = 0
        for shard in self.shards:
            rule = shard.sqlcm.rules.get(name.lower())
            if rule is None:
                raise RuleError(f"unknown rule {name!r}")
            fires += rule.fire_count
            evals += rule.evaluation_count
        return fires, evals

    # ------------------------------------------------------------------
    # determinism proof surface
    # ------------------------------------------------------------------

    def state_digest(self) -> int:
        """Digest of merged shard state, comparable to SQLCM.state_digest.

        Builds the identical canonical tuple from merged state: merged
        LAT integrity signatures, summed rule counters, summed instance
        counts, summed handled/fired totals.  Equality with the serial
        digest on the same trace is the sharding determinism proof.
        """
        lat_parts = tuple(
            (name, self.merged_lat(name).integrity_signature())
            for name in sorted(self._lat_definitions))
        counters: dict[str, list[int]] = {}
        for shard in self.shards:
            for rule in shard.sqlcm._rule_order:
                entry = counters.setdefault(rule.name, [0, 0])
                entry[0] += rule.fire_count
                entry[1] += rule.evaluation_count
        rule_parts = tuple((name, fires, evals)
                           for name, (fires, evals)
                           in sorted(counters.items()))
        instances: dict[bytes, int] = {}
        for shard in self.shards:
            for sig, count in shard.sqlcm._instance_counts.items():
                instances[sig] = instances.get(sig, 0) + count
        instance_parts = tuple(sorted(
            (sig.hex(), count) for sig, count in instances.items()))
        events_handled = sum(s.sqlcm.events_handled for s in self.shards)
        rule_firings = sum(s.sqlcm.rule_firings for s in self.shards)
        parts = (lat_parts, rule_parts, instance_parts,
                 events_handled, rule_firings)
        return zlib.crc32(repr(parts).encode())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "mode": "live" if self.live else "replay",
            "query_key": self.partitioner.query_key,
            "events_routed": self.events_routed,
            "shard_events": [s.events_routed for s in self.shards],
            "shard_costs": self.shard_costs(),
            "rules": sorted(self.rules),
            "lats": sorted(self._lat_definitions),
            "governor": (None if self.governor is None
                         else self.governor.state),
        }
