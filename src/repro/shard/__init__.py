"""Sharded parallel dispatch: partitioned monitors behind one facade.

The tier splits SQLCM's per-event work across N shard-local monitors —
each owning its own LAT partitions, stream panes, and rule clones — with
events routed by a replay-stable partition key and shard state merged at
the report boundary the way window panes merge.  See DESIGN.md section 12
for the partitioning contract and the determinism proof.
"""

from repro.shard.executor import SerialShardExecutor, ThreadShardExecutor
from repro.shard.partition import QUERY_KEY_MODES, EventTrace, Partitioner
from repro.shard.sharded import (ShardedSQLCM, ShardObs, ShardServer,
                                 ShardState)

__all__ = [
    "ShardedSQLCM",
    "Partitioner",
    "EventTrace",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ShardServer",
    "ShardState",
    "ShardObs",
    "QUERY_KEY_MODES",
]
